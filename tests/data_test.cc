#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/catalog.h"
#include "data/ctr_simulator.h"
#include "data/retailer_data.h"
#include "data/types.h"
#include "data/world_generator.h"

namespace sigmund::data {
namespace {

// --- types ------------------------------------------------------------

TEST(TypesTest, ActionStrengthOrdering) {
  EXPECT_LT(ActionStrength(ActionType::kView),
            ActionStrength(ActionType::kSearch));
  EXPECT_LT(ActionStrength(ActionType::kSearch),
            ActionStrength(ActionType::kCart));
  EXPECT_LT(ActionStrength(ActionType::kCart),
            ActionStrength(ActionType::kConversion));
}

TEST(TypesTest, ActionTypeNames) {
  EXPECT_STREQ(ActionTypeName(ActionType::kView), "view");
  EXPECT_STREQ(ActionTypeName(ActionType::kConversion), "conversion");
}

TEST(TypesTest, GlobalItemIdOrderingAndFormat) {
  GlobalItemId a{1, 5}, b{1, 6}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (GlobalItemId{1, 5}));
  EXPECT_EQ(ToString(a), "r1/i5");
}

// --- catalog ----------------------------------------------------------

TEST(PriceBucketTest, MissingPriceIsNegative) {
  EXPECT_EQ(PriceBucket(0.0, 16), -1);
  EXPECT_EQ(PriceBucket(-5.0, 16), -1);
}

TEST(PriceBucketTest, MonotoneInPrice) {
  int prev = -1;
  for (double p : {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    int b = PriceBucket(p, 16);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 16);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(PriceBucketTest, HugePriceClampedToLastBucket) {
  EXPECT_EQ(PriceBucket(1e12, 8), 7);
}

Catalog SmallCatalog() {
  Taxonomy t;
  CategoryId a = t.AddCategory("a", t.root());
  CategoryId b = t.AddCategory("b", t.root());
  Catalog catalog(std::move(t));
  catalog.AddItem(Item{a, 0, 10.0, 0});
  catalog.AddItem(Item{a, kUnknownBrand, 0.0, 0});
  catalog.AddItem(Item{b, 1, 99.0, 1});
  catalog.Finalize();
  return catalog;
}

TEST(CatalogTest, CoverageFractions) {
  Catalog c = SmallCatalog();
  EXPECT_NEAR(c.BrandCoverage(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(c.PriceCoverage(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(c.num_brands(), 2);
}

TEST(CatalogTest, ItemsInCategoryIndex) {
  Catalog c = SmallCatalog();
  EXPECT_EQ(c.ItemsInCategory(1), (std::vector<ItemIndex>{0, 1}));
  EXPECT_EQ(c.ItemsInCategory(2), (std::vector<ItemIndex>{2}));
  EXPECT_TRUE(c.ItemsInCategory(0).empty());
}

TEST(CatalogTest, AddAfterFinalizeKeepsIndexConsistent) {
  Catalog c = SmallCatalog();
  ItemIndex added = c.AddItem(Item{2, kUnknownBrand, 5.0, 0});
  EXPECT_EQ(c.ItemsInCategory(2), (std::vector<ItemIndex>{2, added}));
}

TEST(CatalogTest, LcaDistanceBetweenItems) {
  Catalog c = SmallCatalog();
  EXPECT_EQ(c.LcaDistance(0, 1), 1);  // same category
  EXPECT_EQ(c.LcaDistance(0, 2), 2);  // siblings under root
}

// --- retailer data & splitting ----------------------------------------

RetailerData TinyRetailer() {
  Taxonomy t;
  CategoryId a = t.AddCategory("a", t.root());
  Catalog catalog(std::move(t));
  for (int i = 0; i < 4; ++i) catalog.AddItem(Item{a, kUnknownBrand, 0, 0});
  catalog.Finalize();

  RetailerData data;
  data.id = 7;
  data.catalog = std::move(catalog);
  data.histories = {
      // user 0: 4 interactions -> eligible for holdout
      {{0, 0, ActionType::kView, 10},
       {0, 1, ActionType::kSearch, 20},
       {0, 2, ActionType::kView, 30},
       {0, 3, ActionType::kConversion, 40}},
      // user 1: exactly 2 interactions -> NOT eligible (needs > 2)
      {{1, 1, ActionType::kView, 5}, {1, 2, ActionType::kView, 6}},
      // user 2: empty history
      {},
  };
  return data;
}

TEST(RetailerDataTest, TotalsAndPopularity) {
  RetailerData data = TinyRetailer();
  EXPECT_EQ(data.num_users(), 3);
  EXPECT_EQ(data.num_items(), 4);
  EXPECT_EQ(data.TotalInteractions(), 6);
  auto pop = data.ItemPopularity();
  EXPECT_EQ(pop, (std::vector<int64_t>{1, 2, 2, 1}));
  auto views = data.ItemActionCounts(ActionType::kView);
  EXPECT_EQ(views, (std::vector<int64_t>{1, 1, 2, 0}));
  auto conv = data.ItemActionCounts(ActionType::kConversion);
  EXPECT_EQ(conv, (std::vector<int64_t>{0, 0, 0, 1}));
}

TEST(SplitLeaveLastOutTest, HoldsOutLastItemOfEligibleUsers) {
  RetailerData data = TinyRetailer();
  TrainTestSplit split = SplitLeaveLastOut(data);
  ASSERT_EQ(split.holdout.size(), 1u);
  EXPECT_EQ(split.holdout[0].user, 0);
  EXPECT_EQ(split.holdout[0].held_out, 3);
  EXPECT_EQ(split.train[0].size(), 3u);
  EXPECT_EQ(split.train[0].back().item, 2);
  // Ineligible users keep everything.
  EXPECT_EQ(split.train[1].size(), 2u);
  EXPECT_TRUE(split.train[2].empty());
}

TEST(SplitLeaveLastOutTest, ThresholdRespected) {
  RetailerData data = TinyRetailer();
  TrainTestSplit split = SplitLeaveLastOut(data, /*min_interactions=*/1);
  EXPECT_EQ(split.holdout.size(), 2u);  // users 0 and 1
}

// --- world generator ----------------------------------------------------

TEST(WorldGeneratorTest, DeterministicForSeed) {
  WorldConfig config;
  config.seed = 77;
  WorldGenerator generator(config);
  RetailerWorld a = generator.GenerateRetailer(3, 100);
  RetailerWorld b = generator.GenerateRetailer(3, 100);
  EXPECT_EQ(a.data.num_items(), b.data.num_items());
  EXPECT_EQ(a.data.num_users(), b.data.num_users());
  EXPECT_EQ(a.data.TotalInteractions(), b.data.TotalInteractions());
}

TEST(WorldGeneratorTest, DifferentRetailersDiffer) {
  WorldConfig config;
  WorldGenerator generator(config);
  RetailerWorld a = generator.GenerateRetailer(0, 120);
  RetailerWorld b = generator.GenerateRetailer(1, 120);
  EXPECT_NE(a.data.TotalInteractions(), b.data.TotalInteractions());
}

TEST(WorldGeneratorTest, StructuralInvariants) {
  WorldConfig config;
  config.seed = 5;
  WorldGenerator generator(config);
  RetailerWorld world = generator.GenerateRetailer(0, 150);
  const RetailerData& data = world.data;

  EXPECT_EQ(data.num_items(), 150);
  EXPECT_GE(data.num_users(), config.min_users);
  EXPECT_GT(data.TotalInteractions(), 0);

  // Truth model aligned with the data.
  EXPECT_EQ(world.truth.item_vecs.size(), 150u);
  EXPECT_EQ(world.truth.item_bias.size(), 150u);
  EXPECT_EQ(world.truth.user_vecs.size(),
            static_cast<size_t>(data.num_users()));
  EXPECT_EQ(world.truth.category_vecs.size(),
            static_cast<size_t>(data.catalog.taxonomy().num_categories()));

  // Histories are time-sorted with valid item/user indices & actions.
  for (UserIndex u = 0; u < data.num_users(); ++u) {
    int64_t prev = -1;
    for (const Interaction& event : data.histories[u]) {
      EXPECT_EQ(event.user, u);
      EXPECT_GE(event.item, 0);
      EXPECT_LT(event.item, data.num_items());
      EXPECT_GE(event.timestamp, prev);
      prev = event.timestamp;
    }
  }
}

TEST(WorldGeneratorTest, FunnelShapeViewsDominater) {
  WorldConfig config;
  config.seed = 11;
  WorldGenerator generator(config);
  RetailerWorld world = generator.GenerateRetailer(0, 200);
  int64_t counts[kNumActionTypes] = {0, 0, 0, 0};
  for (const auto& history : world.data.histories) {
    for (const Interaction& event : history) {
      ++counts[static_cast<int>(event.action)];
    }
  }
  // views > searches > carts; conversions rarest among funnel steps
  // (modulo synthesized re-purchases, which are conversions).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[0], counts[3]);
}

TEST(WorldGeneratorTest, CatalogSizesFollowBoundedPareto) {
  WorldConfig config;
  config.min_items = 50;
  config.max_items = 5000;
  WorldGenerator generator(config);
  Rng rng(3);
  int below_200 = 0;
  for (int i = 0; i < 200; ++i) {
    int size = generator.SampleCatalogSize(&rng);
    EXPECT_GE(size, 50);
    EXPECT_LE(size, 5000);
    if (size < 200) ++below_200;
  }
  // Heavy-tailed: most retailers are small.
  EXPECT_GT(below_200, 100);
}

TEST(WorldGeneratorTest, AffinityDrivesChoices) {
  // Items a user interacted with should have higher true affinity on
  // average than random items — otherwise the generator produced noise.
  WorldConfig config;
  config.seed = 13;
  WorldGenerator generator(config);
  RetailerWorld world = generator.GenerateRetailer(0, 150);
  Rng rng(1);
  double interacted_sum = 0, random_sum = 0;
  int64_t n = 0;
  for (UserIndex u = 0; u < world.data.num_users(); ++u) {
    for (const Interaction& event : world.data.histories[u]) {
      interacted_sum += world.truth.Affinity(u, event.item);
      random_sum += world.truth.Affinity(
          u, static_cast<ItemIndex>(rng.Uniform(world.data.num_items())));
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(interacted_sum / n, random_sum / n + 0.1);
}

TEST(AdvanceOneDayTest, AddsItemsAndEvents) {
  WorldConfig config;
  config.seed = 17;
  WorldGenerator generator(config);
  RetailerWorld world = generator.GenerateRetailer(0, 100);
  int64_t before_events = world.data.TotalInteractions();
  AdvanceOneDay(generator, &world, /*new_items=*/10, /*seed=*/99);
  EXPECT_EQ(world.data.num_items(), 110);
  EXPECT_EQ(world.truth.item_vecs.size(), 110u);
  EXPECT_GE(world.data.TotalInteractions(), before_events);
  // New events only reference valid items; histories stay sorted.
  for (const auto& history : world.data.histories) {
    int64_t prev = -1;
    for (const Interaction& event : history) {
      EXPECT_LT(event.item, 110);
      EXPECT_GE(event.timestamp, prev);
      prev = event.timestamp;
    }
  }
}

// --- CTR simulator -----------------------------------------------------

TEST(CtrSimulatorTest, HigherAffinityClicksMore) {
  WorldConfig config;
  config.seed = 23;
  WorldGenerator generator(config);
  RetailerWorld world = generator.GenerateRetailer(0, 100);
  CtrSimulator sim(&world.truth, CtrSimulator::Config{});

  // Find this user's best and worst item by true affinity.
  UserIndex u = 0;
  ItemIndex best = 0, worst = 0;
  for (ItemIndex i = 1; i < world.data.num_items(); ++i) {
    if (world.truth.Affinity(u, i) > world.truth.Affinity(u, best)) best = i;
    if (world.truth.Affinity(u, i) < world.truth.Affinity(u, worst)) worst = i;
  }
  EXPECT_GT(sim.ClickProbability(u, best, 0),
            sim.ClickProbability(u, worst, 0));
}

TEST(CtrSimulatorTest, PositionDiscountMonotone) {
  WorldConfig config;
  WorldGenerator generator(config);
  RetailerWorld world = generator.GenerateRetailer(0, 50);
  CtrSimulator sim(&world.truth, CtrSimulator::Config{});
  double prev = sim.ClickProbability(0, 0, 0);
  for (int pos = 1; pos < 5; ++pos) {
    double p = sim.ClickProbability(0, 0, pos);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(CtrSimulatorTest, ImpressionReturnsValidPositionOrNoClick) {
  WorldConfig config;
  WorldGenerator generator(config);
  RetailerWorld world = generator.GenerateRetailer(0, 50);
  CtrSimulator sim(&world.truth, CtrSimulator::Config{});
  Rng rng(7);
  std::vector<ItemIndex> list = {0, 1, 2, 3, 4};
  for (int i = 0; i < 200; ++i) {
    int pos = sim.SimulateImpression(0, list, &rng);
    EXPECT_GE(pos, -1);
    EXPECT_LT(pos, 5);
  }
}

}  // namespace
}  // namespace sigmund::data
