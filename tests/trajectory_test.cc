// Perf-trajectory gate (DESIGN.md §10): the JSON reader, dotted-path
// resolution, baseline parsing, tolerance-band checking — including the
// committed bench/baselines files staying well-formed — and the RunProfile
// golden schema (a parseable document with every required section).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench/trajectory.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace sigmund {
namespace {

using bench::Baseline;
using bench::CheckTrajectory;
using bench::FindPath;
using bench::JsonValue;
using bench::ModeMatches;
using bench::ParseBaseline;
using bench::ParseJson;
using bench::TrajectoryResult;

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << error;
  return value;
}

// --- JSON parsing ------------------------------------------------------------

TEST(TrajectoryJsonTest, ParsesScalarsObjectsAndArrays) {
  const JsonValue doc = MustParse(
      "{\"a\": 1.5, \"b\": \"text\", \"c\": [1, 2, 3], "
      "\"d\": {\"nested\": true}, \"e\": null, \"f\": -2e3}");
  EXPECT_DOUBLE_EQ(doc.Find("a")->number, 1.5);
  EXPECT_EQ(doc.Find("b")->string_value, "text");
  ASSERT_EQ(doc.Find("c")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.Find("c")->array[1].number, 2.0);
  EXPECT_TRUE(doc.Find("d")->Find("nested")->bool_value);
  EXPECT_EQ(doc.Find("e")->type, JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(doc.Find("f")->number, -2000.0);
}

TEST(TrajectoryJsonTest, ParsesEscapesInStrings) {
  const JsonValue doc =
      MustParse("{\"k\": \"a\\\"b\\\\c\\nd\\tе\\u0041\"}");
  const std::string& value = doc.Find("k")->string_value;
  EXPECT_NE(value.find("a\"b\\c\nd\t"), std::string::npos);
  EXPECT_NE(value.find('A'), std::string::npos);  // A
}

TEST(TrajectoryJsonTest, RejectsMalformedInput) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": }", &value, &error));
  EXPECT_NE(error.find("byte"), std::string::npos);
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", &value, &error));
  EXPECT_FALSE(ParseJson("[1, 2", &value, &error));
  EXPECT_FALSE(ParseJson("\"unterminated", &value, &error));
}

TEST(TrajectoryJsonTest, FindPathResolvesDotsAndArrayIndexes) {
  const JsonValue doc = MustParse(
      "{\"acceptance\": {\"ratio\": 0.95}, "
      "\"curve\": [{\"mult\": 0.5}, {\"mult\": 1.0}]}");
  ASSERT_NE(FindPath(doc, "acceptance.ratio"), nullptr);
  EXPECT_DOUBLE_EQ(FindPath(doc, "acceptance.ratio")->number, 0.95);
  ASSERT_NE(FindPath(doc, "curve.1.mult"), nullptr);
  EXPECT_DOUBLE_EQ(FindPath(doc, "curve.1.mult")->number, 1.0);
  EXPECT_EQ(FindPath(doc, "acceptance.missing"), nullptr);
  EXPECT_EQ(FindPath(doc, "curve.7.mult"), nullptr);
  EXPECT_EQ(FindPath(doc, "nope"), nullptr);
}

// --- Baselines and band checking ---------------------------------------------

constexpr char kBaseline[] = R"({
  "bench": "demo",
  "mode": "quick",
  "results_file": "BENCH_demo.json",
  "metrics": {
    "acceptance.goodput": {"expect": 100.0,
                           "min_ratio": 0.9, "max_ratio": 1.2},
    "acceptance.p99": {"expect": 50.0, "max_ratio": 1.1}
  }
})";

TEST(TrajectoryBaselineTest, ParsesBandsAndDefaults) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(ParseBaseline(kBaseline, &baseline, &error)) << error;
  EXPECT_EQ(baseline.bench, "demo");
  EXPECT_EQ(baseline.mode, "quick");
  EXPECT_EQ(baseline.results_file, "BENCH_demo.json");
  ASSERT_EQ(baseline.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(baseline.metrics[0].expect, 100.0);
  EXPECT_DOUBLE_EQ(baseline.metrics[0].min_ratio, 0.9);
  EXPECT_DOUBLE_EQ(baseline.metrics[1].min_ratio, 0.0);  // default: no floor
}

TEST(TrajectoryBaselineTest, RejectsIncompleteBaselines) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(ParseBaseline("{\"bench\": \"x\"}", &baseline, &error));
  EXPECT_FALSE(ParseBaseline(
      "{\"bench\": \"x\", \"results_file\": \"y\", \"metrics\": {}}",
      &baseline, &error));
  EXPECT_FALSE(ParseBaseline(
      "{\"bench\": \"x\", \"results_file\": \"y\", "
      "\"metrics\": {\"p\": {\"min_ratio\": 1}}}",
      &baseline, &error));  // no expect
}

TEST(TrajectoryCheckTest, InBandPassesOutOfBandFails) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(ParseBaseline(kBaseline, &baseline, &error));

  // In band on both metrics.
  TrajectoryResult good;
  CheckTrajectory(baseline,
                  MustParse("{\"acceptance\": {\"goodput\": 95, "
                            "\"p99\": 54}}"),
                  &good);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.metrics_checked, 2);

  // A 20% throughput regression must fail the gate.
  TrajectoryResult regressed;
  CheckTrajectory(baseline,
                  MustParse("{\"acceptance\": {\"goodput\": 80, "
                            "\"p99\": 50}}"),
                  &regressed);
  ASSERT_EQ(regressed.violations.size(), 1u);
  EXPECT_EQ(regressed.violations[0].path, "acceptance.goodput");
  EXPECT_FALSE(regressed.ok());

  // A latency blow-up past max_ratio fails too.
  TrajectoryResult slow;
  CheckTrajectory(baseline,
                  MustParse("{\"acceptance\": {\"goodput\": 100, "
                            "\"p99\": 60}}"),
                  &slow);
  ASSERT_EQ(slow.violations.size(), 1u);
  EXPECT_EQ(slow.violations[0].path, "acceptance.p99");
}

TEST(TrajectoryCheckTest, MissingPathIsItsOwnFailureClass) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(ParseBaseline(kBaseline, &baseline, &error));
  TrajectoryResult result;
  CheckTrajectory(baseline,
                  MustParse("{\"acceptance\": {\"goodput\": 100, "
                            "\"p99\": \"fast\"}}"),
                  &result);
  // goodput in band; p99 present but not a number; nothing silently
  // passes.
  EXPECT_TRUE(result.violations.empty());
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0].path, "acceptance.p99");
  EXPECT_FALSE(result.ok());
}

TEST(TrajectoryCheckTest, ModeMatching) {
  EXPECT_TRUE(ModeMatches("any", "quick"));
  EXPECT_TRUE(ModeMatches("quick", "quick"));
  EXPECT_TRUE(ModeMatches("quick", "any"));
  EXPECT_FALSE(ModeMatches("full", "quick"));
}

// The baselines committed under bench/baselines must stay parseable —
// a broken baseline would make CI's gate step fail confusingly.
TEST(TrajectoryCheckTest, CommittedBaselinesParse) {
  const char* files[] = {"bench/baselines/overload_quick.json",
                         "bench/baselines/obs_quick.json"};
  for (const char* relative : files) {
    // Tests run from the build tree; the sources sit one level up.
    std::ifstream in(std::string("../") + relative);
    if (!in.is_open()) in.open(std::string("../../") + relative);
    if (!in.is_open()) GTEST_SKIP() << "source tree not reachable";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Baseline baseline;
    std::string error;
    EXPECT_TRUE(ParseBaseline(buffer.str(), &baseline, &error))
        << relative << ": " << error;
    EXPECT_FALSE(baseline.metrics.empty()) << relative;
  }
}

// --- RunProfile golden schema ------------------------------------------------

TEST(RunProfileSchemaTest, ProfileJsonCarriesEveryRequiredSection) {
  SimClock clock;
  obs::Tracer tracer(&clock);
  obs::MetricRegistry metrics;
  metrics.GetCounter("serving_shed_total")->Add(3);
  metrics.GetHistogram("stage_micros")->Observe(123.0);
  int64_t root_id = 0;
  {
    obs::Span day = tracer.StartSpan("day1");
    root_id = day.id();
    {
      obs::Span train = tracer.StartSpan("training");
      train.Annotate("models", "7");
      clock.AdvanceMicros(1000);
    }
    clock.AdvanceMicros(500);
  }
  obs::RunProfile profile =
      obs::BuildRunProfile("day1", tracer, root_id, metrics.Snapshot());
  profile.stages = {{"training", 1000}, {"serve", 500}};
  profile.slo_json = "{\"fired_total\": 0}";
  const std::string json = profile.ToJson();

  // The profile must parse as JSON — annotations with quotes and all.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error << "\n" << json;

  // Golden schema: every consumer-visible section is present.
  for (const char* key : {"name", "total_micros", "spans", "stages",
                          "overload", "slo", "metrics"}) {
    EXPECT_NE(doc.Find(key), nullptr) << "missing section: " << key;
  }
  EXPECT_EQ(doc.Find("name")->string_value, "day1");
  EXPECT_DOUBLE_EQ(doc.Find("total_micros")->number, 1500.0);
  ASSERT_GE(doc.Find("spans")->array.size(), 2u);
  const JsonValue& train = doc.Find("spans")->array[1];
  EXPECT_EQ(train.Find("name")->string_value, "training");
  ASSERT_NE(train.Find("annotations"), nullptr);
  EXPECT_EQ(train.Find("annotations")->Find("models")->string_value, "7");
  EXPECT_DOUBLE_EQ(FindPath(doc, "stages.training")->number, 1000.0);
  EXPECT_DOUBLE_EQ(FindPath(doc, "overload.shed_total")->number, 3.0);
  EXPECT_DOUBLE_EQ(FindPath(doc, "slo.fired_total")->number, 0.0);
  ASSERT_NE(doc.Find("metrics"), nullptr);
}

}  // namespace
}  // namespace sigmund
