#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/clock.h"
#include "common/crc32.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sigmund {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  std::set<StatusCode> codes = {
      InvalidArgumentError("").code(), NotFoundError("").code(),
      AlreadyExistsError("").code(),   FailedPreconditionError("").code(),
      OutOfRangeError("").code(),      UnavailableError("").code(),
      DataLossError("").code(),        InternalError("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

Status FailingHelper() { return InternalError("boom"); }
Status PropagatingHelper() {
  SIGMUND_RETURN_IF_ERROR(FailingHelper());
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kInternal);
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen, (std::set<int64_t>{-2, -1, 0, 1, 2}));
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedIndexHonorsWeights) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexAllZeroReturnsSize) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), weights.size());
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += (rng.WeightedIndex(weights) == 1);
  EXPECT_NEAR(ones / static_cast<double>(n), 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng b(a.Fork());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownNonTrivialValues) {
  EXPECT_NE(SplitMix64(0), 0u);
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Schedule([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Schedule([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int64_t) { FAIL(); });
}

// --- Clock ----------------------------------------------------------------

TEST(ClockTest, RealClockMonotonic) {
  RealClock* clock = RealClock::Get();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SimClockAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 500);
  clock.AdvanceSeconds(1.0);
  EXPECT_EQ(clock.NowMicros(), 1000500);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1.0005);
}

// --- string_util ----------------------------------------------------------

TEST(StringUtilTest, StrSplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, StrJoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, "--"), "x--y--z");
  EXPECT_EQ(StrSplit(StrJoin(pieces, ","), ','), pieces);
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "ab", 1.5), "3-ab-1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-123", &v));
  EXPECT_EQ(v, -123);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5e-1", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_FALSE(ParseDouble("abc", &v));
}

// --- CRC32 ------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Reference values for CRC-32/IEEE (the zlib crc32).
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "The quick brown fox jumps over the lazy dog";
  uint32_t crc = kCrc32Init;
  crc = Crc32Update(crc, data.substr(0, 10));
  crc = Crc32Update(crc, data.substr(10));
  EXPECT_EQ(Crc32Finalize(crc), Crc32(data));
}

// --- Checksummed frames -----------------------------------------------------

TEST(ChecksummedFrameTest, RoundTrip) {
  std::string payload("binary\0payload", 14);
  std::string frame = WriteChecksummedFrame(payload);
  EXPECT_TRUE(LooksLikeChecksummedFrame(frame));
  StatusOr<std::string> back = ReadChecksummedFrame(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  // Empty payloads frame too.
  EXPECT_EQ(*ReadChecksummedFrame(WriteChecksummedFrame("")), "");
}

TEST(ChecksummedFrameTest, DetectsEveryCorruptionClass) {
  const std::string frame = WriteChecksummedFrame("important payload");
  // Truncation at every possible point.
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_EQ(ReadChecksummedFrame(frame.substr(0, len)).status().code(),
              StatusCode::kDataLoss)
        << "truncated to " << len;
  }
  // Single-bit flips anywhere in the frame.
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string flipped = frame;
    flipped[i] ^= 0x01;
    EXPECT_EQ(ReadChecksummedFrame(flipped).status().code(),
              StatusCode::kDataLoss)
        << "bit flip at " << i;
  }
  // Garbage tail appended after a valid frame.
  EXPECT_EQ(ReadChecksummedFrame(frame + "junk").status().code(),
            StatusCode::kDataLoss);
  // Not a frame at all.
  EXPECT_EQ(ReadChecksummedFrame("random bytes").status().code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(LooksLikeChecksummedFrame("random bytes"));
}

// --- BinaryReader bounds ----------------------------------------------------

TEST(BinaryReaderTest, RoundTrip) {
  BinaryWriter writer;
  writer.Write<int32_t>(-7);
  writer.WriteString("hello");
  writer.WriteVector<double>({1.5, 2.5});
  BinaryReader reader(writer.buffer());
  int32_t i = 0;
  std::string s;
  std::vector<double> v;
  ASSERT_TRUE(reader.Read(&i));
  ASSERT_TRUE(reader.ReadString(&s));
  ASSERT_TRUE(reader.ReadVector(&v));
  EXPECT_EQ(i, -7);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<double>{1.5, 2.5}));
  EXPECT_TRUE(reader.Done());
}

TEST(BinaryReaderTest, HostileLengthPrefixesDontOverflow) {
  // A length prefix near UINT64_MAX must fail cleanly: offset + size
  // would wrap and pass a naive bounds check, then read out of bounds.
  for (uint64_t hostile :
       {UINT64_MAX, UINT64_MAX - 7, uint64_t{1} << 63, uint64_t{1} << 32}) {
    BinaryWriter writer;
    writer.Write<uint64_t>(hostile);
    writer.Write<uint32_t>(0xDEADBEEF);  // a few real bytes after the prefix
    std::string s;
    std::vector<double> v;
    EXPECT_FALSE(BinaryReader(writer.buffer()).ReadString(&s)) << hostile;
    EXPECT_FALSE(BinaryReader(writer.buffer()).ReadVector(&v)) << hostile;
  }
}

TEST(BinaryReaderTest, FuzzTruncationsAndBitFlipsNeverCrash) {
  // Fuzz-style: decode mutated buffers every way the pipeline does and
  // require clean false returns, never a crash or out-of-bounds read.
  BinaryWriter writer;
  writer.WriteString("some payload");
  writer.WriteVector<int64_t>({1, 2, 3, 4});
  writer.Write<double>(3.14);
  const std::string good = writer.Take();

  Rng rng(1234);
  auto decode_all = [](std::string_view buffer) {
    BinaryReader reader(buffer);
    std::string s;
    std::vector<int64_t> v;
    double d = 0;
    // Results intentionally ignored; only clean failure matters.
    if (!reader.ReadString(&s)) return;
    if (!reader.ReadVector(&v)) return;
    (void)reader.Read(&d);
  };
  for (size_t len = 0; len <= good.size(); ++len) {
    decode_all(std::string_view(good).substr(0, len));
  }
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = good;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    if (rng.Bernoulli(0.3)) mutated.resize(rng.Uniform(mutated.size() + 1));
    decode_all(mutated);
  }
}

// --- RetryPolicy ------------------------------------------------------------

TEST(RetryTest, RetryableErrorsOnly) {
  EXPECT_TRUE(IsRetryableError(UnavailableError("blip")));
  EXPECT_FALSE(IsRetryableError(OkStatus()));
  EXPECT_FALSE(IsRetryableError(NotFoundError("x")));
  EXPECT_FALSE(IsRetryableError(DataLossError("x")));
  EXPECT_FALSE(IsRetryableError(InvalidArgumentError("x")));
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  int calls = 0;
  Status status = RetryWithPolicy(policy, &stats, [&] {
    return ++calls < 3 ? UnavailableError("blip") : OkStatus();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts.load(), 3);
  EXPECT_EQ(stats.retries.load(), 2);
  EXPECT_EQ(stats.exhaustions.load(), 0);
  EXPECT_GT(stats.backoff_micros.load(), 0);
}

TEST(RetryTest, ExhaustsAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryStats stats;
  int calls = 0;
  Status status = RetryWithPolicy(policy, &stats, [&] {
    ++calls;
    return UnavailableError("always down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(stats.exhaustions.load(), 1);
}

TEST(RetryTest, NonRetryableErrorReturnsImmediately) {
  RetryPolicy policy;
  RetryStats stats;
  int calls = 0;
  Status status = RetryWithPolicy(policy, &stats, [&] {
    ++calls;
    return NotFoundError("gone");
  });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries.load(), 0);
}

TEST(RetryTest, BackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.5;
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 0), 0.1);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 1), 0.2);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 2), 0.4);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 3), 0.5);  // capped
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 9), 0.5);
}

TEST(RetryTest, StatusOrFlavorReturnsValue) {
  RetryPolicy policy;
  RetryStats stats;
  int calls = 0;
  StatusOr<int> result = RetryWithPolicy<int>(policy, &stats, [&]() -> StatusOr<int> {
    if (++calls < 2) return UnavailableError("blip");
    return 41 + 1;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(stats.retries.load(), 1);
}


// --- Shared hashing (common/hash.h) ---------------------------------------

TEST(HashTest, Fnv1a64MatchesReferenceVectors) {
  // Canonical FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64(""), kFnv64OffsetBasis);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Fnv1a64ChainsAcrossCalls) {
  // Hashing in two chained pieces equals hashing the concatenation —
  // the property the loadgen decision hash and fault schedules rely on.
  EXPECT_EQ(Fnv1a64("bar", Fnv1a64("foo")), Fnv1a64("foobar"));
  // Word-at-a-time mixing is order-sensitive and chainable too.
  EXPECT_NE(Fnv1a64Mix(Fnv1a64Mix(kFnv64OffsetBasis, 1), 2),
            Fnv1a64Mix(Fnv1a64Mix(kFnv64OffsetBasis, 2), 1));
}

TEST(HashTest, Mix64MatchesSplitMix64) {
  // common/hash.h duplicates the SplitMix64 step as a constexpr; the two
  // must never drift (trace sampling and A/B splits assume it).
  for (uint64_t x : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                     0xffffffffffffffffULL}) {
    EXPECT_EQ(Mix64(x), SplitMix64(x)) << x;
  }
}

TEST(HashTest, HashSplitEdgesAndStickiness) {
  // Degenerate fractions short-circuit.
  EXPECT_FALSE(HashSplit(1, 99, 0.0));
  EXPECT_FALSE(HashSplit(1, 99, -0.5));
  EXPECT_TRUE(HashSplit(1, 99, 1.0));
  EXPECT_TRUE(HashSplit(1, 99, 1.5));
  // Pure function of (seed, key): trivially sticky, seed reshuffles.
  int moved = 0;
  for (uint64_t key = 0; key < 256; ++key) {
    EXPECT_EQ(HashSplit(7, key, 0.3), HashSplit(7, key, 0.3));
    if (HashSplit(7, key, 0.3) != HashSplit(8, key, 0.3)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(HashTest, HashSplitIsMonotoneAndRoughlyProportional) {
  int in_03 = 0, in_06 = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    const bool at_03 = HashSplit(42, key, 0.3);
    const bool at_06 = HashSplit(42, key, 0.6);
    in_03 += at_03;
    in_06 += at_06;
    // Monotone ramp-up: raising the fraction only moves keys INTO the
    // treatment arm, never out of it.
    if (at_03) EXPECT_TRUE(at_06) << key;
  }
  EXPECT_NEAR(in_03 / 2000.0, 0.3, 0.05);
  EXPECT_NEAR(in_06 / 2000.0, 0.6, 0.05);
}

}  // namespace
}  // namespace sigmund
