#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace sigmund {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  std::set<StatusCode> codes = {
      InvalidArgumentError("").code(), NotFoundError("").code(),
      AlreadyExistsError("").code(),   FailedPreconditionError("").code(),
      OutOfRangeError("").code(),      UnavailableError("").code(),
      DataLossError("").code(),        InternalError("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

Status FailingHelper() { return InternalError("boom"); }
Status PropagatingHelper() {
  SIGMUND_RETURN_IF_ERROR(FailingHelper());
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kInternal);
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen, (std::set<int64_t>{-2, -1, 0, 1, 2}));
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedIndexHonorsWeights) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexAllZeroReturnsSize) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), weights.size());
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += (rng.WeightedIndex(weights) == 1);
  EXPECT_NEAR(ones / static_cast<double>(n), 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng b(a.Fork());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownNonTrivialValues) {
  EXPECT_NE(SplitMix64(0), 0u);
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Schedule([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Schedule([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int64_t) { FAIL(); });
}

// --- Clock ----------------------------------------------------------------

TEST(ClockTest, RealClockMonotonic) {
  RealClock* clock = RealClock::Get();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SimClockAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 500);
  clock.AdvanceSeconds(1.0);
  EXPECT_EQ(clock.NowMicros(), 1000500);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1.0005);
}

// --- string_util ----------------------------------------------------------

TEST(StringUtilTest, StrSplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, StrJoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, "--"), "x--y--z");
  EXPECT_EQ(StrSplit(StrJoin(pieces, ","), ','), pieces);
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "ab", 1.5), "3-ab-1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-123", &v));
  EXPECT_EQ(v, -123);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5e-1", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_FALSE(ParseDouble("abc", &v));
}

}  // namespace
}  // namespace sigmund
