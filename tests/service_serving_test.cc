#include <thread>

#include <gtest/gtest.h>

#include "data/world_generator.h"
#include "data/serialization.h"
#include "pipeline/data_placement.h"
#include "pipeline/service.h"
#include "sfs/mem_filesystem.h"
#include "sfs/reliable_io.h"

namespace sigmund::pipeline {
namespace {

SigmundService::Options FastServiceOptions() {
  SigmundService::Options options;
  options.sweep.grid.factors = {4, 8};
  options.sweep.grid.lambdas_v = {0.1, 0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 3;
  options.sweep.incremental_top_k = 2;
  options.training.num_map_tasks = 4;
  options.training.max_parallel_tasks = 2;
  options.training.checkpoint_interval_seconds = 0.0;
  options.inference.inference.top_k = 5;
  return options;
}

struct ServiceFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 29;
    return config;
  }()};
  data::RetailerWorld r0 = generator.GenerateRetailer(0, 50);
  data::RetailerWorld r1 = generator.GenerateRetailer(1, 90);
  sfs::MemFileSystem fs;
  SigmundService service{&fs, FastServiceOptions()};

  ServiceFixture() {
    service.UpsertRetailer(&r0.data);
    service.UpsertRetailer(&r1.data);
  }
};

TEST(SigmundServiceTest, NoRetailersIsPrecondFailure) {
  sfs::MemFileSystem fs;
  SigmundService service(&fs, FastServiceOptions());
  EXPECT_EQ(service.RunDaily().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SigmundServiceTest, FirstRunIsFullSweepAndServes) {
  ServiceFixture f;
  StatusOr<DailyReport> report = f.service.RunDaily();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->full_sweep);
  EXPECT_EQ(report->retailers, 2);
  EXPECT_EQ(report->models_trained, 8);  // 2 retailers x 4 configs
  EXPECT_GT(report->mean_best_map, 0.0);
  EXPECT_EQ(f.service.store().num_retailers(), 2);
  EXPECT_EQ(f.service.store().num_items(), 140);

  // Serving works for an arbitrary context.
  auto recs = f.service.store().ServeContext(
      0, {{3, data::ActionType::kView}});
  ASSERT_TRUE(recs.ok());
  EXPECT_FALSE(recs->empty());
}

TEST(SigmundServiceTest, SecondRunIsIncrementalTopK) {
  ServiceFixture f;
  ASSERT_TRUE(f.service.RunDaily().ok());
  StatusOr<DailyReport> day2 = f.service.RunDaily();
  ASSERT_TRUE(day2.ok());
  EXPECT_FALSE(day2->full_sweep);
  EXPECT_EQ(day2->models_trained, 4);  // 2 retailers x top-2
  EXPECT_GT(day2->mean_best_map, 0.0);
  // Store re-loaded: version bumped.
  EXPECT_EQ(f.service.store().RetailerVersion(0), 2);
}

TEST(SigmundServiceTest, NewRetailerGetsFullGridInIncrementalRun) {
  ServiceFixture f;
  ASSERT_TRUE(f.service.RunDaily().ok());
  data::RetailerWorld r2 = f.generator.GenerateRetailer(2, 40);
  f.service.UpsertRetailer(&r2.data);
  StatusOr<DailyReport> day2 = f.service.RunDaily();
  ASSERT_TRUE(day2.ok());
  EXPECT_FALSE(day2->full_sweep);
  EXPECT_EQ(day2->new_retailers, 1);
  // 2 old retailers x 2 + new retailer x 4.
  EXPECT_EQ(day2->models_trained, 8);
  EXPECT_EQ(f.service.store().num_retailers(), 3);
}

TEST(SigmundServiceTest, ForceFullSweepRestarts) {
  ServiceFixture f;
  ASSERT_TRUE(f.service.RunDaily().ok());
  f.service.ForceFullSweep();
  StatusOr<DailyReport> report = f.service.RunDaily();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->full_sweep);
}

TEST(SigmundServiceTest, PeriodicFullSweepEveryNDays) {
  ServiceFixture f;
  SigmundService::Options options = FastServiceOptions();
  options.full_sweep_every_days = 2;
  sfs::MemFileSystem fs;
  SigmundService service(&fs, options);
  service.UpsertRetailer(&f.r0.data);
  auto day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok());
  EXPECT_TRUE(day1->full_sweep);  // first run
  auto day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok());
  EXPECT_FALSE(day2->full_sweep);
  auto day3 = service.RunDaily();
  ASSERT_TRUE(day3.ok());
  EXPECT_TRUE(day3->full_sweep);  // periodic restart
}

TEST(SigmundServiceTest, DailyDataArrivalImprovesOrKeepsQuality) {
  ServiceFixture f;
  auto day1 = f.service.RunDaily();
  ASSERT_TRUE(day1.ok());
  // New day of data + new items.
  data::AdvanceOneDay(f.generator, &f.r0, 5, 1001);
  data::AdvanceOneDay(f.generator, &f.r1, 5, 1002);
  f.service.UpsertRetailer(&f.r0.data);
  f.service.UpsertRetailer(&f.r1.data);
  auto day2 = f.service.RunDaily();
  ASSERT_TRUE(day2.ok());
  // New items are materialized too.
  EXPECT_EQ(f.service.store().num_items(), 140 + 10);
  auto recs = f.service.store().Lookup(
      0, 54, serving::RecommendationKind::kViewBased);  // a brand-new item
  ASSERT_TRUE(recs.ok());
}

TEST(SigmundServiceTest, SurvivesPreemptionsAndTaskFailures) {
  ServiceFixture f;
  SigmundService::Options options = FastServiceOptions();
  options.training.preemption_prob_per_epoch = 0.2;
  options.training.checkpoint_interval_seconds = 1.0;
  options.training.simulated_seconds_per_step = 1.0;
  options.training.map_task_failure_prob = 0.3;
  options.training.max_attempts_per_task = 30;
  sfs::MemFileSystem fs;
  SigmundService service(&fs, options);
  service.UpsertRetailer(&f.r0.data);
  service.UpsertRetailer(&f.r1.data);
  StatusOr<DailyReport> report = service.RunDaily();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->models_trained, 8);
  EXPECT_GT(report->preemptions + report->map_failures, 0);
  EXPECT_GT(report->mean_best_map, 0.0);
  EXPECT_EQ(service.store().num_retailers(), 2);
}

TEST(SigmundServiceTest, SweepResultsPersistedPerRetailer) {
  ServiceFixture f;
  ASSERT_TRUE(f.service.RunDaily().ok());
  for (data::RetailerId id : {0, 1}) {
    StatusOr<std::string> blob = f.fs.Read(SweepResultPath(id));
    ASSERT_TRUE(blob.ok());
    EXPECT_NE(blob->find("map="), std::string::npos);
  }
}


TEST(SigmundServiceTest, DataPlacementMigratesShardsOnce) {
  ServiceFixture f;
  SigmundService::Options options = FastServiceOptions();
  options.placement.cells = {"cell-a", "cell-b"};
  sfs::MemFileSystem fs;
  SigmundService service(&fs, options);
  service.UpsertRetailer(&f.r0.data);
  service.UpsertRetailer(&f.r1.data);

  auto day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok());
  // Initial ingest uploads both shards.
  EXPECT_GT(day1->shard_bytes_moved, 0);
  // Shards exist and parse back.
  int found = 0;
  for (const std::string& cell : {std::string("cell-a"), std::string("cell-b")}) {
    for (data::RetailerId id : {0, 1}) {
      std::string path = DataPlacementPlanner::ShardPath(cell, id);
      if (fs.Exists(path)) {
        ++found;
        // Shards are checksummed frames now; unwrap before parsing.
        StatusOr<std::string> shard = sfs::ReadChecksummedFile(&fs, path);
        ASSERT_TRUE(shard.ok());
        EXPECT_TRUE(data::DeserializeRetailerData(*shard).ok());
      }
    }
  }
  EXPECT_EQ(found, 2);

  // Day 2 with unchanged data and stable placement: nothing moves.
  auto day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok());
  EXPECT_EQ(day2->shard_bytes_moved, 0);
}

TEST(SigmundServiceTest, PlacementDisabledByDefault) {
  ServiceFixture f;
  auto day1 = f.service.RunDaily();
  ASSERT_TRUE(day1.ok());
  EXPECT_EQ(day1->shard_bytes_moved, 0);
  EXPECT_TRUE(f.fs.List("cells/")->empty());
}

// --- RecommendationStore ---------------------------------------------------

core::ItemRecommendations MakeRecs(data::ItemIndex query) {
  core::ItemRecommendations recs;
  recs.query = query;
  recs.view_based = {{query + 1, 0.9}, {query + 2, 0.5}};
  recs.purchase_based = {{query + 3, 0.7}};
  return recs;
}

TEST(RecommendationStoreTest, LookupByKind) {
  serving::RecommendationStore store;
  store.LoadRetailer(1, {MakeRecs(0), MakeRecs(1)});
  auto view = store.Lookup(1, 0, serving::RecommendationKind::kViewBased);
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), 2u);
  EXPECT_EQ((*view)[0].item, 1);
  auto purchase =
      store.Lookup(1, 1, serving::RecommendationKind::kPurchaseBased);
  ASSERT_TRUE(purchase.ok());
  ASSERT_EQ(purchase->size(), 1u);
  EXPECT_EQ((*purchase)[0].item, 4);
}

TEST(RecommendationStoreTest, MissingRetailerOrItem) {
  serving::RecommendationStore store;
  EXPECT_EQ(store.Lookup(9, 0, serving::RecommendationKind::kViewBased)
                .status()
                .code(),
            StatusCode::kNotFound);
  store.LoadRetailer(1, {MakeRecs(0)});
  EXPECT_EQ(store.Lookup(1, 50, serving::RecommendationKind::kViewBased)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(RecommendationStoreTest, ServeContextPicksListByFunnelStage) {
  serving::RecommendationStore store;
  store.LoadRetailer(1, {MakeRecs(0)});
  auto pre = store.ServeContext(1, {{0, data::ActionType::kView}});
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ((*pre)[0].item, 1);  // substitutes
  auto post = store.ServeContext(1, {{0, data::ActionType::kConversion}});
  ASSERT_TRUE(post.ok());
  EXPECT_EQ((*post)[0].item, 3);  // accessories
  // Uses the most recent context entry.
  auto mixed = store.ServeContext(
      1, {{5, data::ActionType::kView}, {0, data::ActionType::kCart}});
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ((*mixed)[0].item, 3);
  EXPECT_EQ(store.ServeContext(1, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RecommendationStoreTest, BatchLoadBumpsVersionAndSwapsAtomically) {
  serving::RecommendationStore store;
  EXPECT_EQ(store.RetailerVersion(1), 0);
  store.LoadRetailer(1, {MakeRecs(0)});
  EXPECT_EQ(store.RetailerVersion(1), 1);
  store.LoadRetailer(1, {MakeRecs(0), MakeRecs(1)});
  EXPECT_EQ(store.RetailerVersion(1), 2);
  EXPECT_EQ(store.num_items(), 2);
}

TEST(RecommendationStoreTest, LoadFromFileRoundTrip) {
  serving::RecommendationStore store;
  sfs::MemFileSystem fs;
  std::string blob = MakeRecs(0).Serialize() + "\n" +
                     MakeRecs(1).Serialize() + "\n";
  ASSERT_TRUE(fs.Write("recommendations/r1", blob).ok());
  ASSERT_TRUE(store.LoadRetailerFromFile(1, fs, "recommendations/r1").ok());
  auto recs = store.Lookup(1, 1, serving::RecommendationKind::kViewBased);
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ((*recs)[0].item, 2);
  // Missing file and corrupt file both fail.
  EXPECT_FALSE(store.LoadRetailerFromFile(2, fs, "nope").ok());
  ASSERT_TRUE(fs.Write("bad", "garbage\n").ok());
  EXPECT_FALSE(store.LoadRetailerFromFile(2, fs, "bad").ok());
}

TEST(RecommendationStoreTest, ConcurrentReadersDuringBatchLoads) {
  serving::RecommendationStore store;
  store.LoadRetailer(1, {MakeRecs(0)});
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto recs =
          store.Lookup(1, 0, serving::RecommendationKind::kViewBased);
      if (recs.ok()) {
        ASSERT_EQ(recs->size(), 2u);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    store.LoadRetailer(1, {MakeRecs(0)});
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(store.RetailerVersion(1), 201);
}

}  // namespace
}  // namespace sigmund::pipeline
