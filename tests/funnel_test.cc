#include <gtest/gtest.h>

#include "core/funnel.h"
#include "core/inference.h"
#include "data/world_generator.h"
#include "serving/store.h"

namespace sigmund::core {
namespace {

using data::ActionType;

Context Views(std::initializer_list<data::ItemIndex> items) {
  Context context;
  for (data::ItemIndex item : items) {
    context.push_back({item, ActionType::kView});
  }
  return context;
}

TEST(FunnelTest, EmptyAndShortContextsAreEarly) {
  EXPECT_EQ(ClassifyFunnelStage({}, nullptr, {}), FunnelStage::kEarly);
  EXPECT_EQ(ClassifyFunnelStage(Views({1}), nullptr, {}),
            FunnelStage::kEarly);
  EXPECT_EQ(ClassifyFunnelStage(Views({1, 2, 3, 4}), nullptr, {}),
            FunnelStage::kEarly);
}

TEST(FunnelTest, RepeatViewsOfSameItemAreLate) {
  EXPECT_EQ(ClassifyFunnelStage(Views({7, 3, 7}), nullptr, {}),
            FunnelStage::kLate);
}

TEST(FunnelTest, CartOrConversionIsLate) {
  Context cart = {{1, ActionType::kView}, {2, ActionType::kCart}};
  EXPECT_EQ(ClassifyFunnelStage(cart, nullptr, {}), FunnelStage::kLate);
  Context bought = {{2, ActionType::kConversion}};
  EXPECT_EQ(ClassifyFunnelStage(bought, nullptr, {}), FunnelStage::kLate);
}

TEST(FunnelTest, WindowForgetsOldSignals) {
  // The repeat views are outside the window of 3.
  Context context = Views({9, 9, 1, 2, 3});
  FunnelOptions options;
  options.window = 3;
  EXPECT_EQ(ClassifyFunnelStage(context, nullptr, options),
            FunnelStage::kEarly);
  options.window = 5;
  EXPECT_EQ(ClassifyFunnelStage(context, nullptr, options),
            FunnelStage::kLate);
}

TEST(FunnelTest, CategoryFocusRequiresCatalog) {
  data::Taxonomy taxonomy;
  data::CategoryId couches = taxonomy.AddCategory("couches", taxonomy.root());
  data::Catalog catalog(std::move(taxonomy));
  for (int i = 0; i < 6; ++i) {
    catalog.AddItem(data::Item{couches, data::kUnknownBrand, 0, 0});
  }
  catalog.Finalize();
  // Six distinct items, all couches: focused shopper.
  Context context = Views({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(ClassifyFunnelStage(context, nullptr, {}), FunnelStage::kEarly);
  EXPECT_EQ(ClassifyFunnelStage(context, &catalog, {}), FunnelStage::kLate);
}

TEST(FunnelTest, StageNames) {
  EXPECT_STREQ(FunnelStageName(FunnelStage::kEarly), "early");
  EXPECT_STREQ(FunnelStageName(FunnelStage::kLate), "late");
}

// --- late-funnel materialization + serving ---------------------------------

TEST(LateFunnelServingTest, SerializationCarriesLateList) {
  ItemRecommendations recs;
  recs.query = 5;
  recs.view_based = {{1, 0.9}};
  recs.purchase_based = {{2, 0.8}};
  recs.view_based_late = {{3, 0.7}};
  StatusOr<ItemRecommendations> parsed =
      ItemRecommendations::Deserialize(recs.Serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->view_based_late.size(), 1u);
  EXPECT_EQ(parsed->view_based_late[0].item, 3);
  // Legacy 3-part records still parse (empty late list).
  StatusOr<ItemRecommendations> legacy =
      ItemRecommendations::Deserialize("5|1:0.9|2:0.8");
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(legacy->view_based_late.empty());
}

TEST(LateFunnelServingTest, MaterializedLateListsRespectFacets) {
  data::WorldConfig config;
  config.seed = 3;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 150);
  CooccurrenceModel cooccurrence = CooccurrenceModel::Build(
      world.data.histories, world.data.num_items(), {});
  RepurchaseEstimator repurchase = RepurchaseEstimator::Build(
      world.data.histories, world.data.catalog, {});
  CandidateSelector selector(&world.data.catalog, &cooccurrence,
                             &repurchase);
  HyperParams params;
  params.num_factors = 8;
  BprModel model(&world.data.catalog, params);
  Rng rng(7);
  model.InitRandom(&rng);
  InferenceEngine engine(&model, &selector);

  InferenceEngine::Options options;
  options.top_k = 5;
  options.materialize_late_funnel = true;
  for (data::ItemIndex i = 0; i < 20; ++i) {
    ItemRecommendations recs = engine.RecommendForItem(i, options);
    int32_t facet = world.data.catalog.item(i).facet;
    for (const ScoredItem& item : recs.view_based_late) {
      EXPECT_EQ(world.data.catalog.item(item.item).facet, facet);
    }
  }
}

TEST(LateFunnelServingTest, StorePicksVariantByFunnelStage) {
  serving::RecommendationStore store;
  ItemRecommendations recs;
  recs.query = 0;
  recs.view_based = {{1, 0.9}, {2, 0.8}};
  recs.view_based_late = {{3, 0.7}};
  recs.purchase_based = {{4, 0.6}};
  store.LoadRetailer(1, {recs});

  // Early funnel (single view) -> broad substitutes.
  auto early = store.ServeContext(1, Views({0}));
  ASSERT_TRUE(early.ok());
  EXPECT_EQ((*early)[0].item, 1);
  // Late funnel (repeat views) -> facet-constrained list.
  auto late = store.ServeContext(1, Views({0, 5, 0}));
  ASSERT_TRUE(late.ok());
  EXPECT_EQ((*late)[0].item, 3);
  // Post-purchase still wins over funnel logic.
  Context bought = {{0, ActionType::kConversion}};
  auto post = store.ServeContext(1, bought);
  ASSERT_TRUE(post.ok());
  EXPECT_EQ((*post)[0].item, 4);
}

TEST(LateFunnelServingTest, FallsBackWhenNoLateVariant) {
  serving::RecommendationStore store;
  ItemRecommendations recs;
  recs.query = 0;
  recs.view_based = {{1, 0.9}};
  store.LoadRetailer(1, {recs});
  auto late = store.ServeContext(1, Views({0, 0}));
  ASSERT_TRUE(late.ok());
  EXPECT_EQ((*late)[0].item, 1);  // regular view-based fallback
}

}  // namespace
}  // namespace sigmund::core
