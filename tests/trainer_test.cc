#include <cmath>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/negative_sampler.h"
#include "core/trainer.h"
#include "core/training_data.h"
#include "data/world_generator.h"

namespace sigmund::core {
namespace {

// A small but learnable world.
data::RetailerWorld MakeWorld(uint64_t seed = 3, int items = 120) {
  data::WorldConfig config;
  config.seed = seed;
  config.mean_sessions_per_user = 4.0;
  data::WorldGenerator generator(config);
  return generator.GenerateRetailer(0, items);
}

HyperParams FastParams() {
  HyperParams params;
  params.num_factors = 8;
  params.learning_rate = 0.08;
  params.lambda_v = 0.005;
  params.lambda_vc = 0.005;
  params.num_epochs = 8;
  params.context_window = 10;
  params.use_taxonomy = true;
  return params;
}

struct Fixture {
  data::RetailerWorld world;
  data::TrainTestSplit split;
  TrainingData training_data;
  BprModel model;
  UniformSampler sampler;

  explicit Fixture(HyperParams params = FastParams(), uint64_t seed = 3)
      : world(MakeWorld(seed)),
        split(data::SplitLeaveLastOut(world.data)),
        training_data(&split.train, world.data.num_items()),
        model(&world.data.catalog, params) {
    Rng rng(params.seed);
    model.InitRandom(&rng);
  }
};

TEST(TrainingDataTest, PositionsSkipFirstEvent) {
  Fixture f;
  // Every position must have index >= 1 (context non-empty).
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    TrainingData::Position p = f.training_data.SamplePosition(&rng);
    EXPECT_GE(p.index, 1);
    EXPECT_LT(p.index,
              static_cast<int>(f.split.train[p.user].size()));
  }
}

TEST(TrainingDataTest, ContextMatchesHistoryPrefix) {
  Fixture f;
  // Find a user with >= 3 training events.
  data::UserIndex user = -1;
  for (data::UserIndex u = 0; u < f.training_data.num_users(); ++u) {
    if (f.split.train[u].size() >= 3) {
      user = u;
      break;
    }
  }
  ASSERT_NE(user, -1);
  Context ctx = f.training_data.ContextAt({user, 2}, 10);
  ASSERT_EQ(ctx.size(), 2u);
  EXPECT_EQ(ctx[0].item, f.split.train[user][0].item);
  EXPECT_EQ(ctx[1].item, f.split.train[user][1].item);

  // Window truncation keeps the most recent events.
  Context ctx1 = f.training_data.ContextAt({user, 2}, 1);
  ASSERT_EQ(ctx1.size(), 1u);
  EXPECT_EQ(ctx1[0].item, f.split.train[user][1].item);
}

TEST(TrainingDataTest, SeenReflectsTrainingEvents) {
  Fixture f;
  for (data::UserIndex u = 0; u < std::min(5, f.training_data.num_users());
       ++u) {
    for (const data::Interaction& event : f.split.train[u]) {
      EXPECT_TRUE(f.training_data.Seen(u, event.item));
    }
  }
}

TEST(TrainingDataTest, TierBucketsPartitionSeenItems) {
  Fixture f;
  for (data::UserIndex u = 0; u < std::min(10, f.training_data.num_users());
       ++u) {
    size_t total = 0;
    for (int s = 0; s < data::kNumActionTypes; ++s) {
      for (data::ItemIndex item : f.training_data.TierBucket(u, s)) {
        EXPECT_TRUE(f.training_data.Seen(u, item));
        ++total;
      }
    }
    // Buckets partition distinct seen items exactly.
    std::unordered_set<data::ItemIndex> seen_items;
    for (const data::Interaction& event : f.split.train[u]) {
      seen_items.insert(event.item);
    }
    EXPECT_EQ(total, seen_items.size());
  }
}

TEST(TrainingDataTest, LowerTierItemIsStrictlyWeaker) {
  Fixture f;
  Rng rng(5);
  int checked = 0;
  for (data::UserIndex u = 0; u < f.training_data.num_users() && checked < 50;
       ++u) {
    data::ItemIndex j = f.training_data.SampleLowerTierItem(
        u, data::ActionType::kConversion, &rng);
    if (j == data::kInvalidItem) continue;
    ++checked;
    // j must be in a bucket with strength < conversion.
    bool found_weaker = false;
    for (int s = 0; s < data::ActionStrength(data::ActionType::kConversion);
         ++s) {
      const auto& bucket = f.training_data.TierBucket(u, s);
      if (std::find(bucket.begin(), bucket.end(), j) != bucket.end()) {
        found_weaker = true;
      }
    }
    EXPECT_TRUE(found_weaker);
  }
  EXPECT_GT(checked, 0);
}

// --- The paper's §III-B1 guarantee: "Following the update step, the loss
// is guaranteed to be strictly smaller for the example."
TEST(BprTrainerTest, StepStrictlyDecreasesExampleLoss) {
  Fixture f;
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  Rng rng(9);

  int tested = 0;
  for (int trial = 0; trial < 30; ++trial) {
    TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    Context ctx = f.training_data.ContextAt(pos, 10);
    if (ctx.empty()) continue;
    data::ItemIndex i = f.training_data.EventAt(pos).item;
    data::ItemIndex j =
        f.sampler.Sample(f.training_data, pos.user, nullptr, i, &rng);
    if (j == data::kInvalidItem) continue;

    // Loss before (returned by Step) vs after (recompute via a dry dot).
    double before = trainer.Step(ctx, i, j, &rng);
    std::vector<float> u(f.model.dim()), phi_i(f.model.dim()),
        phi_j(f.model.dim());
    f.model.UserEmbedding(ctx, u.data());
    f.model.ItemRepresentation(i, phi_i.data());
    f.model.ItemRepresentation(j, phi_j.data());
    double x = 0;
    for (int k = 0; k < f.model.dim(); ++k) {
      x += u[k] * (phi_i[k] - phi_j[k]);
    }
    double after = std::log1p(std::exp(-x));
    EXPECT_LT(after, before) << "trial " << trial;
    ++tested;
  }
  EXPECT_GT(tested, 10);
}

TEST(BprTrainerTest, TrainingImprovesHoldoutMapOverRandom) {
  Fixture f;
  Evaluator::Options eval;
  MetricSet before = Evaluator::Evaluate(f.model, f.training_data,
                                         f.split.holdout, eval);

  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  BprTrainer::Options options;
  trainer.Train(options);
  MetricSet after = Evaluator::Evaluate(f.model, f.training_data,
                                        f.split.holdout, eval);
  EXPECT_GT(after.map_at_k, before.map_at_k * 2 + 0.01);
  EXPECT_GT(after.auc, 0.6);
  EXPECT_GT(after.auc, before.auc);
}

TEST(BprTrainerTest, LossDecreasesAcrossEpochs) {
  Fixture f;
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  std::vector<double> losses;
  BprTrainer::Options options;
  options.epoch_callback = [&losses](int, const TrainStats& stats) {
    losses.push_back(stats.last_epoch_loss);
    return true;
  };
  trainer.Train(options);
  ASSERT_GE(losses.size(), 4u);
  EXPECT_LT(losses.back(), losses.front());
  // The first epoch's mean loss is below a random model's ln(2) (learning
  // happens within the epoch), but not yet converged.
  EXPECT_LT(losses.front(), std::log(2.0));
  EXPECT_GT(losses.front(), losses.back());
}

TEST(BprTrainerTest, EpochCallbackCanStopEarly) {
  Fixture f;
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  BprTrainer::Options options;
  options.epoch_callback = [](int epoch, const TrainStats&) {
    return epoch < 2;  // stop after the 3rd epoch begins reporting
  };
  TrainStats stats = trainer.Train(options);
  EXPECT_EQ(stats.epochs_run, 3);
}

TEST(BprTrainerTest, StepsPerEpochOverride) {
  Fixture f;
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  BprTrainer::Options options;
  options.steps_per_epoch = 64;
  TrainStats stats = trainer.Train(options);
  EXPECT_LE(stats.sgd_steps + stats.skipped_steps,
            64 * f.model.params().num_epochs);
}

TEST(BprTrainerTest, MultiThreadedTrainingAlsoLearns) {
  HyperParams params = FastParams();
  Fixture f(params);
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  BprTrainer::Options options;
  options.num_threads = 4;  // Hogwild
  trainer.Train(options);
  MetricSet metrics = Evaluator::Evaluate(f.model, f.training_data,
                                          f.split.holdout, {});
  EXPECT_GT(metrics.auc, 0.6);
}

TEST(BprTrainerTest, AdagradAccumulatorsGrowDuringTraining) {
  Fixture f;
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  BprTrainer::Options options;
  options.steps_per_epoch = 500;
  trainer.Train(options);
  double total = 0;
  for (int r = 0; r < f.model.item_embeddings().rows(); ++r) {
    EXPECT_GE(f.model.item_embeddings().adagrad(r), 0.0f);
    total += f.model.item_embeddings().adagrad(r);
  }
  EXPECT_GT(total, 0.0);
}

TEST(BprTrainerTest, PlainSgdAlsoLearns) {
  HyperParams params = FastParams();
  params.use_adagrad = false;
  params.learning_rate = 0.03;
  Fixture f(params);
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  trainer.Train({});
  MetricSet metrics = Evaluator::Evaluate(f.model, f.training_data,
                                          f.split.holdout, {});
  EXPECT_GT(metrics.auc, 0.55);
}

TEST(BprTrainerTest, RegularizationShrinksNorms) {
  HyperParams strong = FastParams();
  strong.lambda_v = 0.5;
  strong.lambda_vc = 0.5;
  HyperParams weak = FastParams();
  weak.lambda_v = 0.0;
  weak.lambda_vc = 0.0;

  auto norm_after_training = [](HyperParams params) {
    Fixture f(params);
    BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
    BprTrainer::Options options;
    trainer.Train(options);
    double norm = 0;
    for (int r = 0; r < f.model.item_embeddings().rows(); ++r) {
      const float* v = f.model.item_embeddings().row(r);
      for (int k = 0; k < f.model.dim(); ++k) norm += v[k] * v[k];
    }
    return norm;
  };
  EXPECT_LT(norm_after_training(strong), norm_after_training(weak));
}

// Tier constraints sweep: training remains sane across fractions.
class TierFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(TierFractionTest, TrainingStableAndLearns) {
  HyperParams params = FastParams();
  params.tier_constraint_fraction = GetParam();
  params.num_epochs = 6;
  Fixture f(params);
  BprTrainer trainer(&f.model, &f.training_data, &f.sampler);
  TrainStats stats = trainer.Train({});
  EXPECT_GT(stats.sgd_steps, 0);
  // No NaNs in the model.
  for (int r = 0; r < f.model.item_embeddings().rows(); ++r) {
    for (int k = 0; k < f.model.dim(); ++k) {
      EXPECT_TRUE(std::isfinite(f.model.item_embeddings().row(r)[k]));
    }
  }
  MetricSet metrics = Evaluator::Evaluate(f.model, f.training_data,
                                          f.split.holdout, {});
  EXPECT_GT(metrics.auc, 0.55);
}

INSTANTIATE_TEST_SUITE_P(Fractions, TierFractionTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.9));

}  // namespace
}  // namespace sigmund::core
