// Safe-rollout ladder, end to end: the offline MAP gate cannot catch a
// recommendation batch that *evaluates* well but *serves* badly (poisoned
// materialization: intact checksums, garbage content). These tests push
// exactly that batch through the daily pipeline — while a replica dies in
// the middle of the staggered cutover — and require the canary to roll it
// back automatically, availability to hold at 100%, and same-seed reruns
// to be byte-identical.

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "common/metrics.h"
#include "data/world_generator.h"
#include "pipeline/canary.h"
#include "pipeline/service.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::pipeline {
namespace {

// Items ranked by mean true affinity over the retailer's users, worst
// first. The head of this ranking is what a good model recommends; the
// tail is what a poisoned batch serves.
std::vector<data::ItemIndex> ItemsByMeanAffinity(
    const data::RetailerWorld& world) {
  std::vector<std::pair<double, data::ItemIndex>> scored;
  for (int item = 0; item < world.data.num_items(); ++item) {
    double sum = 0.0;
    for (int user = 0; user < world.data.num_users(); ++user) {
      sum += world.truth.Affinity(user, item);
    }
    scored.emplace_back(sum, static_cast<data::ItemIndex>(item));
  }
  std::sort(scored.begin(), scored.end());
  std::vector<data::ItemIndex> items;
  items.reserve(scored.size());
  for (const auto& [unused, item] : scored) items.push_back(item);
  return items;
}

std::vector<core::ScoredItem> MakeList(
    const std::vector<data::ItemIndex>& items) {
  std::vector<core::ScoredItem> list;
  double score = 1.0;
  for (data::ItemIndex item : items) {
    list.push_back({item, score});
    score -= 0.05;
  }
  return list;
}

// A batch serving the same list for every query item.
std::vector<core::ItemRecommendations> UniformBatch(
    int num_items, const std::vector<core::ScoredItem>& list) {
  std::vector<core::ItemRecommendations> batch;
  for (int q = 0; q < num_items; ++q) {
    core::ItemRecommendations recs;
    recs.query = q;
    recs.view_based = list;
    recs.purchase_based = list;
    recs.view_based_late = list;
    batch.push_back(std::move(recs));
  }
  return batch;
}

// SFS decorator that poisons reads of one recommendation batch: the bytes
// on "disk" stay intact (the inference job's write-side read-back verify
// passes untouched — the read right after a write of the target path is
// served verbatim), but the batch the serving loader stages has every
// list replaced with the retailer's globally least-liked items. Checksums
// are re-framed, so this is undetectable by integrity checks: only live
// signal can catch it.
class PoisoningFileSystem : public sfs::SharedFileSystem {
 public:
  explicit PoisoningFileSystem(sfs::SharedFileSystem* base) : base_(base) {}

  void Poison(const std::string& path, std::vector<core::ScoredItem> list) {
    target_ = path;
    poison_ = std::move(list);
  }
  int64_t poisoned_reads() const { return poisoned_reads_; }

  Status Write(const std::string& path, const std::string& data) override {
    if (path == target_) verify_pending_ = true;
    return base_->Write(path, data);
  }
  StatusOr<std::string> Read(const std::string& path) const override {
    StatusOr<std::string> blob = base_->Read(path);
    if (!blob.ok() || path != target_ || poison_.empty()) return blob;
    if (verify_pending_) {  // write-side read-back verify: pass through
      verify_pending_ = false;
      return blob;
    }
    ++poisoned_reads_;
    return PoisonBlob(*blob);
  }
  Status Delete(const std::string& path) override {
    return base_->Delete(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const override {
    return base_->List(prefix);
  }
  StatusOr<int64_t> FileSize(const std::string& path) const override {
    return base_->FileSize(path);
  }

 private:
  std::string PoisonBlob(const std::string& stored) const {
    const bool framed = LooksLikeChecksummedFrame(stored);
    std::string payload = stored;
    if (framed) {
      StatusOr<std::string> unwrapped = ReadChecksummedFrame(stored);
      if (!unwrapped.ok()) return stored;
      payload = *unwrapped;
    }
    std::string out;
    size_t start = 0;
    while (start < payload.size()) {
      size_t end = payload.find('\n', start);
      if (end == std::string::npos) end = payload.size();
      StatusOr<core::ItemRecommendations> recs =
          core::ItemRecommendations::Deserialize(
              payload.substr(start, end - start));
      if (recs.ok()) {
        recs->view_based = poison_;
        recs->purchase_based = poison_;
        recs->view_based_late = poison_;
        out += recs->Serialize();
        out += '\n';
      }
      start = end + 1;
    }
    return framed ? WriteChecksummedFrame(out) : out;
  }

  sfs::SharedFileSystem* base_;
  std::string target_;
  std::vector<core::ScoredItem> poison_;
  mutable bool verify_pending_ = false;
  mutable int64_t poisoned_reads_ = 0;
};

struct RolloutFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 29;
    return config;
  }()};
  std::vector<data::RetailerWorld> worlds = {
      generator.GenerateRetailer(0, 50), generator.GenerateRetailer(1, 90)};

  SigmundService::Options Options() const {
    SigmundService::Options options;
    options.sweep.grid.factors = {4, 8};
    options.sweep.grid.lambdas_v = {0.1, 0.01};
    options.sweep.grid.lambdas_vc = {0.01};
    options.sweep.grid.sweep_taxonomy = false;
    options.sweep.grid.sweep_brand = false;
    options.sweep.grid.num_epochs = 3;
    options.sweep.incremental_top_k = 2;
    options.training.num_map_tasks = 4;
    options.training.max_parallel_tasks = 2;
    options.training.checkpoint_interval_seconds = 0.0;
    options.inference.inference.top_k = 5;
    options.serving.num_replicas = 3;
    options.canary.enabled = true;
    options.canary.canary_fraction = 0.5;  // even arms: tight comparison
    // Day-over-day batches from honest retrains differ a little in
    // simulated CTR; the canary here must catch collapses (a poisoned
    // batch runs at a fraction of control CTR), not flag normal drift.
    options.canary.min_relative_ctr = 0.5;
    options.canary.early_stop_z = 4.0;
    options.canary.seed = 11;
    options.canary.oracle = [this](data::RetailerId id) {
      return &worlds[id].truth;
    };
    return options;
  }
};

// --- CanaryController in isolation --------------------------------------------

TEST(CanaryControllerTest, RollsBackBadBatchPromotesGoodOne) {
  RolloutFixture f;
  const data::RetailerWorld& world = f.worlds[0];
  std::vector<data::ItemIndex> by_affinity = ItemsByMeanAffinity(world);
  std::vector<core::ScoredItem> worst = MakeList(
      {by_affinity.begin(), by_affinity.begin() + 5});
  std::vector<core::ScoredItem> best = MakeList(
      {by_affinity.end() - 5, by_affinity.end()});

  serving::RecommendationStore store;
  store.LoadRetailer(0, UniformBatch(world.data.num_items(), best));

  obs::MetricRegistry metrics;
  CanaryController::Options options;
  options.enabled = true;
  options.canary_fraction = 0.5;
  options.seed = 7;
  options.oracle = [&](data::RetailerId) { return &world.truth; };
  CanaryController controller(options, &metrics);

  // A staged batch of the globally least-liked items: live CTR craters,
  // the canary rolls it back (its offline provenance is irrelevant).
  const int64_t bad = store.StageRetailer(
      0, UniformBatch(world.data.num_items(), worst));
  CanaryController::Outcome outcome =
      controller.Evaluate(0, store, bad, world.data, /*day=*/0);
  EXPECT_EQ(outcome.verdict, CanaryController::Verdict::kRolledBack);
  EXPECT_LT(outcome.CanaryCtr(), outcome.ControlCtr());
  EXPECT_GT(outcome.control_impressions, 0);
  EXPECT_GT(outcome.canary_impressions, 0);
  // Evaluate never mutates the store: the caller owns the discard.
  EXPECT_EQ(store.RetailerVersion(0), 1);

  // A staged batch as good as the active one promotes.
  const int64_t good = store.StageRetailer(
      0, UniformBatch(world.data.num_items(), best));
  CanaryController::Outcome promoted =
      controller.Evaluate(0, store, good, world.data, /*day=*/0);
  EXPECT_EQ(promoted.verdict, CanaryController::Verdict::kPromoted);

  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("canary_verdicts_total",
                                  {{"verdict", "rolled_back"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue("canary_verdicts_total",
                                  {{"verdict", "promoted"}}),
            1);
  EXPECT_GT(snapshot.CounterValue("canary_impressions_total",
                                  {{"arm", "canary"}}),
            0);

  // Deterministic: the same (seed, day, retailer) draws identical traffic.
  CanaryController::Outcome rerun =
      controller.Evaluate(0, store, bad, world.data, /*day=*/0);
  EXPECT_EQ(rerun.verdict, outcome.verdict);
  EXPECT_EQ(rerun.canary_impressions, outcome.canary_impressions);
  EXPECT_EQ(rerun.canary_clicks, outcome.canary_clicks);
  EXPECT_EQ(rerun.control_clicks, outcome.control_clicks);
  EXPECT_EQ(rerun.early_stopped, outcome.early_stopped);

  // Disabled (or oracle-less) controllers skip instead of guessing.
  CanaryController disabled(CanaryController::Options{}, &metrics);
  EXPECT_EQ(disabled.Evaluate(0, store, bad, world.data, 0).verdict,
            CanaryController::Verdict::kSkipped);
}

// --- Full service: clean days promote ----------------------------------------

TEST(RolloutChaosTest, CleanDaysPromoteEveryCanaryAndCutOverAllReplicas) {
  RolloutFixture f;
  sfs::MemFileSystem fs;
  SimClock clock;
  SigmundService::Options options = f.Options();
  options.clock = &clock;
  SigmundService service(&fs, options);
  service.UpsertRetailer(&f.worlds[0].data);
  service.UpsertRetailer(&f.worlds[1].data);

  // Day 1: first batches ship straight to 100% (nothing to canary
  // against) and fan out to both followers.
  StatusOr<DailyReport> day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  EXPECT_EQ(day1->canary_promotions, 0);
  EXPECT_EQ(day1->canary_rollbacks, 0);
  EXPECT_EQ(day1->replica_cutovers, 4);  // 2 retailers x 2 followers

  // Day 2: each staged batch passes the canary and promotes; every
  // replica serves the new version.
  StatusOr<DailyReport> day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok()) << day2.status().ToString();
  EXPECT_EQ(day2->canary_promotions, 2);
  EXPECT_EQ(day2->canary_rollbacks, 0);
  EXPECT_EQ(day2->replica_cutovers, 4);
  EXPECT_EQ(day2->replica_cutovers_skipped, 0);
  for (data::RetailerId id : {0, 1}) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(service.store_group()->replica(r)->RetailerVersion(id), 2)
          << "retailer " << id << " replica " << r;
    }
  }
  EXPECT_NE(day2->ToString().find("rollout: canary_promotions=2"),
            std::string::npos);
}

// --- The acceptance scenario --------------------------------------------------

// What one poisoned-day scenario leaves behind, for rerun comparison.
struct ScenarioResult {
  bool all_ok = false;
  std::vector<std::string> reports;
  std::map<data::RetailerId, int64_t> versions;
  std::string served_fingerprint;  // item ids served after the chaos day
  int64_t poisoned_reads = 0;
  int64_t failed_serves = 0;
  int64_t total_serves = 0;
};

TEST(RolloutChaosTest,
     PoisonedBatchAutoRollsBackWhileReplicaDiesMidCutover) {
  RolloutFixture f;
  std::vector<core::ScoredItem> poison =
      MakeList([&] {
        std::vector<data::ItemIndex> by_affinity =
            ItemsByMeanAffinity(f.worlds[0]);
        return std::vector<data::ItemIndex>(by_affinity.begin(),
                                            by_affinity.begin() + 5);
      }());

  auto run_scenario = [&]() {
    ScenarioResult result;
    sfs::MemFileSystem base;
    PoisoningFileSystem fs(&base);
    SimClock clock;
    SigmundService::Options options = f.Options();
    options.clock = &clock;
    SigmundService service(&fs, options);
    service.UpsertRetailer(&f.worlds[0].data);
    service.UpsertRetailer(&f.worlds[1].data);
    serving::ReplicatedStoreGroup* group = service.store_group();

    // Every serve attempted anywhere in the scenario must succeed.
    auto serve_everything = [&] {
      for (data::RetailerId id : {0, 1}) {
        for (data::ItemIndex item = 0; item < 20; ++item) {
          StatusOr<std::vector<core::ScoredItem>> list =
              group->ServeContext(id, {{item, data::ActionType::kView}});
          ++result.total_serves;
          if (!list.ok() || list->empty()) ++result.failed_serves;
        }
      }
    };

    // Day 1: clean, establishes v1 everywhere.
    StatusOr<DailyReport> day1 = service.RunDaily();
    if (!day1.ok()) {
      ADD_FAILURE() << day1.status().ToString();
      return result;
    }
    result.reports.push_back(day1->ToString());
    serve_everything();

    // Day 2's chaos: retailer 0's batch is poisoned between
    // materialization and serving load (checksums intact, offline MAP
    // unaffected — only live signal can catch it), and replica 2 dies in
    // the middle of the staggered cutover, under live traffic.
    fs.Poison(RecommendationPath(0), poison);
    group->SetCutoverHookForTesting(
        [&](data::RetailerId /*retailer*/, int replica) {
          EXPECT_EQ(group->ServingReplicas(), 2);  // one drained at a time
          if (replica == 2 && group->ReplicaAlive(2)) {
            group->KillReplica(2);  // dies while drained for cutover
          }
          serve_everything();  // capacity must absorb the drain + death
        });
    StatusOr<DailyReport> day2 = service.RunDaily();
    if (!day2.ok()) {
      ADD_FAILURE() << day2.status().ToString();
      return result;
    }
    result.reports.push_back(day2->ToString());
    serve_everything();

    for (data::RetailerId id : {0, 1}) {
      result.versions[id] = service.store().RetailerVersion(id);
      for (data::ItemIndex item = 0; item < 20; ++item) {
        StatusOr<std::vector<core::ScoredItem>> list =
            group->ServeContext(id, {{item, data::ActionType::kView}});
        ++result.total_serves;
        if (!list.ok() || list->empty()) {
          ++result.failed_serves;
          continue;
        }
        for (const core::ScoredItem& scored : *list) {
          result.served_fingerprint +=
              StrFormat("%d:%d ", id, scored.item);
        }
      }
    }
    result.poisoned_reads = fs.poisoned_reads();
    result.all_ok = true;
    return result;
  };

  ScenarioResult a = run_scenario();
  ASSERT_TRUE(a.all_ok);

  // The poison was actually read by the serving loader...
  EXPECT_GT(a.poisoned_reads, 0);
  // ...and the canary caught it: retailer 0 rolled back to day 1's batch,
  // retailer 1 promoted normally.
  EXPECT_EQ(a.versions[0], 1);
  EXPECT_EQ(a.versions[1], 2);
  EXPECT_NE(a.reports[1].find("canary_rollbacks=1"), std::string::npos);
  EXPECT_NE(a.reports[1].find("canary_promotions=1"), std::string::npos);
  // The mid-cutover death was absorbed: replica 2's cutover was skipped,
  // replica 1's went through.
  EXPECT_NE(a.reports[1].find("cutovers_skipped=1"), std::string::npos);
  // 100% availability: not one serve failed — before, during (drained
  // replica + dead replica), or after the chaos.
  EXPECT_GT(a.total_serves, 0);
  EXPECT_EQ(a.failed_serves, 0);

  // Byte-identical rerun: same seeds, same poison, same replica death —
  // same reports, same versions, same served items.
  ScenarioResult b = run_scenario();
  ASSERT_TRUE(b.all_ok);
  ASSERT_EQ(b.reports.size(), a.reports.size());
  for (size_t day = 0; day < a.reports.size(); ++day) {
    EXPECT_EQ(b.reports[day], a.reports[day]) << "day " << day;
  }
  EXPECT_EQ(b.versions, a.versions);
  EXPECT_EQ(b.served_fingerprint, a.served_fingerprint);
  EXPECT_EQ(b.poisoned_reads, a.poisoned_reads);
  EXPECT_EQ(b.failed_serves, 0);
}

}  // namespace
}  // namespace sigmund::pipeline
