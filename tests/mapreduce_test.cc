#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "mapreduce/mapreduce.h"

namespace sigmund::mapreduce {
namespace {

// Splits each value into whitespace-free tokens keyed by the token.
class TokenMapper : public Mapper {
 public:
  Status Map(const Record& input, const Emitter& emit) override {
    for (const std::string& token : StrSplit(input.value, ' ')) {
      if (!token.empty()) emit(Record{token, "1"});
    }
    return OkStatus();
  }
};

class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, const std::vector<std::string>& values,
                const Emitter& emit) override {
    emit(Record{key, std::to_string(values.size())});
    return OkStatus();
  }
};

// Mapper that records Start/Finish lifecycle and echoes records.
class LifecycleMapper : public Mapper {
 public:
  Status Start(int task_id) override {
    task_id_ = task_id;
    return OkStatus();
  }
  Status Map(const Record& input, const Emitter& emit) override {
    emit(Record{input.key, StrFormat("t%d:%s", task_id_, input.value.c_str())});
    return OkStatus();
  }
  Status Finish(const Emitter& emit) override {
    emit(Record{"__finish__", std::to_string(task_id_)});
    return OkStatus();
  }

 private:
  int task_id_ = -1;
};

class FailOnKeyMapper : public Mapper {
 public:
  Status Map(const Record& input, const Emitter& emit) override {
    if (input.key == "bad") return InternalError("poisoned record");
    emit(input);
    return OkStatus();
  }
};

std::vector<Record> WordInput() {
  return {{"1", "a b a"}, {"2", "b c"}, {"3", "a"}};
}

TEST(ComputeSplitsTest, EvenAndUneven) {
  auto splits = ComputeSplits(10, 2);
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[0], (std::pair<int64_t, int64_t>{0, 5}));
  EXPECT_EQ(splits[1], (std::pair<int64_t, int64_t>{5, 10}));

  splits = ComputeSplits(10, 3);
  ASSERT_EQ(splits.size(), 3u);
  int64_t total = 0;
  int64_t prev_end = 0;
  for (auto [b, e] : splits) {
    EXPECT_EQ(b, prev_end);
    prev_end = e;
    total += e - b;
  }
  EXPECT_EQ(total, 10);
}

TEST(ComputeSplitsTest, MoreTasksThanRecords) {
  auto splits = ComputeSplits(2, 5);
  EXPECT_EQ(splits.size(), 2u);
}

TEST(ComputeSplitsTest, EmptyInput) {
  EXPECT_TRUE(ComputeSplits(0, 4).empty());
}

TEST(MapReduceTest, WordCount) {
  MapReduceSpec spec;
  spec.num_map_tasks = 2;
  spec.num_reduce_tasks = 2;
  spec.max_parallel_tasks = 2;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  auto out = job.Run(WordInput());
  ASSERT_TRUE(out.ok());
  std::map<std::string, std::string> counts;
  for (const Record& r : *out) counts[r.key] = r.value;
  EXPECT_EQ(counts["a"], "3");
  EXPECT_EQ(counts["b"], "2");
  EXPECT_EQ(counts["c"], "1");
  EXPECT_EQ(job.stats().input_records, 3);
  EXPECT_EQ(job.stats().mapped_records, 6);
  EXPECT_EQ(job.stats().output_records, 3);
}

TEST(MapReduceTest, OutputSortedByKey) {
  MapReduceSpec spec;
  spec.num_map_tasks = 3;
  spec.num_reduce_tasks = 4;
  spec.max_parallel_tasks = 2;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  auto out = job.Run({{"1", "z y x w v"}});
  ASSERT_TRUE(out.ok());
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_LE((*out)[i - 1].key, (*out)[i].key);
  }
}

TEST(MapReduceTest, MapOnlyJobPreservesSplitOrder) {
  MapReduceSpec spec;
  spec.num_map_tasks = 3;
  spec.num_reduce_tasks = 0;  // map-only
  spec.max_parallel_tasks = 3;
  MapReduceJob job(
      spec, [] { return std::make_unique<LifecycleMapper>(); },
      [] { return IdentityReducer(); });
  std::vector<Record> input;
  for (int i = 0; i < 9; ++i) input.push_back({std::to_string(i), "v"});
  auto out = job.Run(input);
  ASSERT_TRUE(out.ok());
  // 9 mapped records + 3 finish markers.
  EXPECT_EQ(out->size(), 12u);
  // Record order within and across splits is preserved.
  std::vector<std::string> keys;
  for (const Record& r : *out) {
    if (r.key != "__finish__") keys.push_back(r.key);
  }
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(std::stoi(keys[i - 1]), std::stoi(keys[i]));
  }
}

TEST(MapReduceTest, LifecycleHooksRunPerTask) {
  MapReduceSpec spec;
  spec.num_map_tasks = 4;
  spec.num_reduce_tasks = 0;
  spec.max_parallel_tasks = 1;
  MapReduceJob job(
      spec, [] { return std::make_unique<LifecycleMapper>(); },
      [] { return IdentityReducer(); });
  std::vector<Record> input(8, Record{"k", "v"});
  auto out = job.Run(input);
  ASSERT_TRUE(out.ok());
  int finishes = 0;
  for (const Record& r : *out) {
    if (r.key == "__finish__") ++finishes;
  }
  EXPECT_EQ(finishes, 4);
}

TEST(MapReduceTest, UserErrorFailsJob) {
  MapReduceSpec spec;
  spec.num_map_tasks = 2;
  spec.num_reduce_tasks = 1;
  spec.max_parallel_tasks = 2;
  MapReduceJob job(
      spec, [] { return std::make_unique<FailOnKeyMapper>(); },
      [] { return IdentityReducer(); });
  auto out = job.Run({{"ok", "1"}, {"bad", "2"}});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST(MapReduceTest, InjectedFailuresAreRetriedToSuccess) {
  MapReduceSpec spec;
  spec.num_map_tasks = 5;
  spec.num_reduce_tasks = 1;
  spec.max_parallel_tasks = 2;
  spec.map_task_failure_prob = 0.5;
  spec.max_attempts_per_task = 50;
  spec.seed = 21;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  std::vector<Record> input;
  for (int i = 0; i < 50; ++i) input.push_back({std::to_string(i), "w"});
  auto out = job.Run(input);
  ASSERT_TRUE(out.ok());
  // Exactly-once output semantics despite retries.
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].key, "w");
  EXPECT_EQ((*out)[0].value, "50");
  EXPECT_GT(job.stats().map_failures, 0);
  EXPECT_EQ(job.stats().map_attempts,
            job.stats().map_failures + spec.num_map_tasks);
}

TEST(MapReduceTest, CertainFailureExhaustsAttempts) {
  MapReduceSpec spec;
  spec.num_map_tasks = 1;
  spec.num_reduce_tasks = 1;
  spec.max_parallel_tasks = 1;
  spec.map_task_failure_prob = 1.0;
  spec.max_attempts_per_task = 3;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  auto out = job.Run({{"1", "a"}});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(job.stats().map_attempts, 3);
}

TEST(MapReduceTest, ReduceFailuresAreRetriedToSuccess) {
  MapReduceSpec spec;
  spec.num_map_tasks = 2;
  spec.num_reduce_tasks = 4;
  spec.max_parallel_tasks = 2;
  spec.reduce_task_failure_prob = 0.5;
  spec.max_attempts_per_task = 50;
  spec.seed = 17;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  std::vector<Record> input;
  for (int i = 0; i < 40; ++i) {
    input.push_back({std::to_string(i), StrFormat("w%d", i % 10)});
  }
  auto out = job.Run(input);
  ASSERT_TRUE(out.ok());
  // Exactly-once output semantics despite reduce retries.
  std::map<std::string, std::string> counts;
  for (const Record& r : *out) {
    EXPECT_TRUE(counts.emplace(r.key, r.value).second) << r.key;
  }
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [key, value] : counts) EXPECT_EQ(value, "4") << key;
  EXPECT_GT(job.stats().reduce_failures, 0);
  EXPECT_EQ(job.stats().reduce_attempts,
            job.stats().reduce_failures + spec.num_reduce_tasks);
}

TEST(MapReduceTest, CertainReduceFailureExhaustsAttempts) {
  MapReduceSpec spec;
  spec.num_map_tasks = 1;
  spec.num_reduce_tasks = 1;
  spec.max_parallel_tasks = 1;
  spec.reduce_task_failure_prob = 1.0;
  spec.max_attempts_per_task = 3;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  auto out = job.Run({{"1", "a"}});
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(job.stats().reduce_attempts, 3);
  EXPECT_EQ(job.stats().reduce_failures, 3);
}

TEST(MapReduceTest, InvalidSpecRejected) {
  MapReduceSpec spec;
  spec.num_map_tasks = 0;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  EXPECT_EQ(job.Run({}).status().code(), StatusCode::kInvalidArgument);
}

TEST(MapReduceTest, EmptyInputProducesEmptyOutput) {
  MapReduceSpec spec;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  auto out = job.Run({});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

// Regression: task-latency observation must tolerate a null spec.clock on
// both the map and the reduce path. With metrics on, the runtime falls
// back to RealClock; the guard inside the attempt loops must mirror the
// guard on attempt_start so a refactor can never null-deref mid-attempt.
TEST(MapReduceTest, TaskLatencyObservedWithDefaultAndSimClock) {
  for (const bool use_sim_clock : {false, true}) {
    SimClock sim;
    obs::MetricRegistry registry;
    MapReduceSpec spec;
    spec.num_map_tasks = 2;
    spec.num_reduce_tasks = 2;
    spec.max_parallel_tasks = 2;
    spec.metrics = &registry;
    spec.clock = use_sim_clock ? &sim : nullptr;  // null -> RealClock
    spec.label = "latency_test";
    MapReduceJob job(
        spec, [] { return std::make_unique<TokenMapper>(); },
        [] { return std::make_unique<SumReducer>(); });
    auto out = job.Run(WordInput());
    ASSERT_TRUE(out.ok());
    // Both phases sampled one latency observation per attempt.
    const obs::RegistrySnapshot snapshot = registry.Snapshot();
    const obs::HistogramSnapshot* map_hist =
        snapshot.FindHistogram("mapreduce_task_micros", {{"phase", "map"}});
    ASSERT_NE(map_hist, nullptr);
    EXPECT_EQ(map_hist->count, job.stats().map_attempts);
    const obs::HistogramSnapshot* reduce_hist = snapshot.FindHistogram(
        "mapreduce_task_micros", {{"phase", "reduce"}});
    ASSERT_NE(reduce_hist, nullptr);
    EXPECT_EQ(reduce_hist->count, job.stats().reduce_attempts);
  }
}

// Mapper whose first (primary) attempt for task 0 is a straggler: it
// sleeps per record, while every other task — and any backup attempt for
// task 0 — runs at full speed.
class StragglerMapper : public Mapper {
 public:
  explicit StragglerMapper(std::atomic<int>* task0_instances)
      : task0_instances_(task0_instances) {}

  Status Start(int task_id) override {
    if (task_id == 0) {
      straggle_ = task0_instances_->fetch_add(1) == 0;
    }
    return OkStatus();
  }
  Status Map(const Record& input, const Emitter& emit) override {
    if (straggle_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    emit(input);
    return OkStatus();
  }

 private:
  std::atomic<int>* task0_instances_;
  bool straggle_ = false;
};

TEST(MapReduceTest, SpeculativeBackupOvertakesStraggler) {
  MapReduceSpec spec;
  spec.num_map_tasks = 4;
  spec.num_reduce_tasks = 0;
  spec.max_parallel_tasks = 4;
  spec.speculative_backups = true;
  spec.speculation_commit_fraction = 0.75;
  std::atomic<int> task0_instances{0};
  MapReduceJob job(
      spec,
      [&task0_instances] {
        return std::make_unique<StragglerMapper>(&task0_instances);
      },
      [] { return IdentityReducer(); });
  std::vector<Record> input;
  for (int i = 0; i < 32; ++i) input.push_back({std::to_string(i), "v"});
  auto out = job.Run(input);
  ASSERT_TRUE(out.ok());
  // Exactly-once output despite two attempt chains racing on task 0.
  EXPECT_EQ(out->size(), 32u);
  EXPECT_GE(job.stats().map_backup_attempts, 1);
  EXPECT_GE(job.stats().map_backups_won, 1);
  // The straggling primary noticed the backup's commit and cancelled.
  EXPECT_GE(job.stats().map_attempts_cancelled, 1);
}

TEST(MapReduceTest, SpeculationPreservesResultsAndExactlyOnce) {
  auto run = [](bool speculate) {
    MapReduceSpec spec;
    spec.num_map_tasks = 6;
    spec.num_reduce_tasks = 2;
    spec.max_parallel_tasks = 4;
    spec.map_task_failure_prob = 0.3;
    spec.max_attempts_per_task = 50;
    spec.seed = 33;
    spec.speculative_backups = speculate;
    MapReduceJob job(
        spec, [] { return std::make_unique<TokenMapper>(); },
        [] { return std::make_unique<SumReducer>(); });
    std::vector<Record> input;
    for (int i = 0; i < 60; ++i) {
      input.push_back({std::to_string(i), StrFormat("w%d", i % 5)});
    }
    auto out = job.Run(input);
    EXPECT_TRUE(out.ok());
    std::map<std::string, std::string> counts;
    for (const Record& r : *out) counts[r.key] = r.value;
    return counts;
  };
  // Speculation can change which attempt commits, never what it commits.
  EXPECT_EQ(run(false), run(true));
}

TEST(MapReduceTest, SpeculationOffLaunchesNoBackups) {
  MapReduceSpec spec;
  spec.num_map_tasks = 4;
  spec.num_reduce_tasks = 0;
  spec.max_parallel_tasks = 4;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return IdentityReducer(); });
  std::vector<Record> input(16, Record{"k", "v"});
  ASSERT_TRUE(job.Run(input).ok());
  EXPECT_EQ(job.stats().map_backup_attempts, 0);
  EXPECT_EQ(job.stats().map_backups_won, 0);
  EXPECT_EQ(job.stats().map_attempts_cancelled, 0);
}

// Property: results identical regardless of task/parallelism configuration.
class MapReduceConfigTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MapReduceConfigTest, WordCountInvariantToPartitioning) {
  auto [map_tasks, reduce_tasks, parallel] = GetParam();
  MapReduceSpec spec;
  spec.num_map_tasks = map_tasks;
  spec.num_reduce_tasks = reduce_tasks;
  spec.max_parallel_tasks = parallel;
  MapReduceJob job(
      spec, [] { return std::make_unique<TokenMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  std::vector<Record> input;
  for (int i = 0; i < 30; ++i) {
    input.push_back({std::to_string(i),
                     StrFormat("w%d w%d w0", i % 3, i % 7)});
  }
  auto out = job.Run(input);
  ASSERT_TRUE(out.ok());
  std::map<std::string, std::string> counts;
  for (const Record& r : *out) counts[r.key] = r.value;
  EXPECT_EQ(counts["w0"], "45");  // 30 from "w0" + 10 from i%3==0 + 5 from i%7==0
}

INSTANTIATE_TEST_SUITE_P(
    Partitionings, MapReduceConfigTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 1, 2),
                      std::make_tuple(4, 3, 4), std::make_tuple(16, 8, 3),
                      std::make_tuple(64, 2, 2)));

}  // namespace
}  // namespace sigmund::mapreduce
