// Data-plane sentry (DESIGN.md §12): feed profiling, verdict tiers,
// drift detection against the last-good baseline, the noise floor for
// tiny retailers, the seeded FeedCorruptor, and the quarantine wiring
// through SigmundService::RunDaily (skip-retrain, carry-forward
// warm-start, QualityMonitor isolation).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/retailer_data.h"
#include "data/world_generator.h"
#include "dataqual/corruptor.h"
#include "dataqual/feed_profile.h"
#include "dataqual/sentry.h"
#include "pipeline/config_record.h"
#include "pipeline/service.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::dataqual {
namespace {

using Verdict = DataSentry::Verdict;

// ---------------------------------------------------------------------------
// Shared statistics helpers.
// ---------------------------------------------------------------------------

TEST(StatsTest, TwoProportionZBasics) {
  // Empty arms: not computable yet.
  EXPECT_EQ(TwoProportionZ(0, 0, 5, 100), 0.0);
  EXPECT_EQ(TwoProportionZ(5, 100, 0, 0), 0.0);
  // Identical proportions: z == 0.
  EXPECT_DOUBLE_EQ(TwoProportionZ(10, 100, 10, 100), 0.0);
  // Higher first proportion: z > 0; symmetric under swapping arms.
  const double z = TwoProportionZ(30, 100, 10, 100);
  EXPECT_GT(z, 2.0);
  EXPECT_DOUBLE_EQ(TwoProportionZ(10, 100, 30, 100), -z);
  // Degenerate pooled variance (all hits or none): 0.
  EXPECT_EQ(TwoProportionZ(100, 100, 100, 100), 0.0);
  EXPECT_EQ(TwoProportionZ(0, 100, 0, 100), 0.0);
}

TEST(StatsTest, PopulationStabilityIndex) {
  const std::vector<double> base = {10, 20, 40, 20, 10};
  // Identical distribution (any scale): PSI == 0.
  EXPECT_NEAR(PopulationStabilityIndex(base, base), 0.0, 1e-12);
  EXPECT_NEAR(PopulationStabilityIndex(base, {20, 40, 80, 40, 20}), 0.0,
              1e-12);
  // A mild shift registers but stays under the conventional 0.25 bar.
  const double mild =
      PopulationStabilityIndex(base, {12, 22, 38, 18, 10});
  EXPECT_GT(mild, 0.0);
  EXPECT_LT(mild, 0.25);
  // Mass moving into a previously-empty bucket is a large PSI.
  EXPECT_GT(PopulationStabilityIndex(base, {0, 0, 0, 0, 100}), 1.0);
  // Mismatched bucket counts / empty histograms: defined as 0.
  EXPECT_EQ(PopulationStabilityIndex(base, {1, 2}), 0.0);
  EXPECT_EQ(PopulationStabilityIndex({0, 0}, {1, 2}), 0.0);
}

// ---------------------------------------------------------------------------
// FeedProfile.
// ---------------------------------------------------------------------------

data::RetailerData HandMadeData() {
  data::RetailerData data;
  data.id = 7;
  for (int i = 0; i < 4; ++i) data.catalog.AddItem(data::Item{0, data::kUnknownBrand, 0.0, 0});
  data.catalog.Finalize();
  data.histories.resize(3);
  auto add = [&](int user, int item, data::ActionType action, int64_t ts) {
    data.histories[user].push_back(
        data::Interaction{0, item, action, ts});
  };
  add(0, 0, data::ActionType::kView, 10);
  add(0, 1, data::ActionType::kSearch, 20);
  add(0, 1, data::ActionType::kSearch, 20);  // exact consecutive duplicate
  add(0, 2, data::ActionType::kCart, 15);    // out of order
  add(1, 3, data::ActionType::kView, 5);
  add(1, 9, data::ActionType::kConversion, 6);  // invalid item reference
  // histories[2] stays empty (inactive user).
  return data;
}

TEST(FeedProfileTest, CountsEverything) {
  const FeedProfile profile = BuildFeedProfile(HandMadeData());
  EXPECT_EQ(profile.retailer, 7);
  EXPECT_EQ(profile.events, 6);
  EXPECT_EQ(profile.num_users, 3);
  EXPECT_EQ(profile.active_users, 2);
  EXPECT_EQ(profile.num_items, 4);
  EXPECT_EQ(profile.distinct_items, 4);  // item 9 is invalid, not distinct
  EXPECT_EQ(profile.action_counts[0], 2);  // views
  EXPECT_EQ(profile.action_counts[1], 2);  // searches
  EXPECT_EQ(profile.action_counts[2], 1);  // carts
  EXPECT_EQ(profile.action_counts[3], 1);  // conversions
  EXPECT_EQ(profile.duplicate_events, 1);
  EXPECT_EQ(profile.out_of_order_events, 1);
  EXPECT_EQ(profile.invalid_item_events, 1);
  EXPECT_EQ(profile.min_timestamp, 5);
  EXPECT_EQ(profile.max_timestamp, 20);
  EXPECT_EQ(profile.max_user_events, 4);
  EXPECT_DOUBLE_EQ(profile.TopUserShare(), 4.0 / 6.0);
  // User histogram: user 0 has 4 events (bucket 2), user 1 has 2 (bucket 1).
  EXPECT_EQ(profile.user_events_hist[1], 1);
  EXPECT_EQ(profile.user_events_hist[2], 1);
}

TEST(FeedProfileTest, EmptyFeedIsAllZeros) {
  data::RetailerData data;
  data.id = 1;
  const FeedProfile profile = BuildFeedProfile(data);
  EXPECT_EQ(profile.events, 0);
  EXPECT_EQ(profile.active_users, 0);
  EXPECT_DOUBLE_EQ(profile.TopUserShare(), 0.0);
  EXPECT_DOUBLE_EQ(profile.ActionFraction(data::ActionType::kView), 0.0);
}

TEST(FeedProfileTest, GeneratedWorldIsClean) {
  data::WorldConfig config;
  config.seed = 11;
  data::WorldGenerator generator(config);
  const data::RetailerWorld world = generator.GenerateRetailer(0, 200);
  const FeedProfile profile = BuildFeedProfile(world.data);
  EXPECT_GT(profile.events, 0);
  EXPECT_EQ(profile.invalid_item_events, 0);
  EXPECT_EQ(profile.out_of_order_events, 0);
  // Organic feeds are view-dominated (the funnel).
  EXPECT_GT(profile.ActionFraction(data::ActionType::kView), 0.4);
  EXPECT_GT(profile.action_counts[0], profile.action_counts[2]);
}

// ---------------------------------------------------------------------------
// DataSentry: invariants, drift, noise floor, quarantine state machine.
// ---------------------------------------------------------------------------

struct WorldFixture {
  data::WorldConfig config = [] {
    data::WorldConfig c;
    c.seed = 17;
    return c;
  }();
  data::WorldGenerator generator{config};
  data::RetailerWorld world = generator.GenerateRetailer(3, 300);
};

TEST(DataSentryTest, CleanFeedsPassAcrossDays) {
  WorldFixture f;
  DataSentry sentry(DataSentry::Options{});
  DataSentry::Observation day1 =
      sentry.Observe(BuildFeedProfile(f.world.data));
  EXPECT_EQ(day1.verdict, Verdict::kPass) << [&] {
    std::string all;
    for (const auto& finding : day1.findings) all += finding.ToString() + "; ";
    return all;
  }();
  EXPECT_TRUE(day1.first_observation);
  for (int day = 0; day < 3; ++day) {
    data::AdvanceOneDay(f.generator, &f.world, /*new_items=*/3,
                        /*seed=*/1000 + day);
    DataSentry::Observation obs =
        sentry.Observe(BuildFeedProfile(f.world.data));
    EXPECT_EQ(obs.verdict, Verdict::kPass)
        << "day " << day << ": "
        << (obs.findings.empty() ? "" : obs.findings[0].ToString());
    EXPECT_FALSE(obs.first_observation);
  }
  EXPECT_EQ(sentry.QuarantinedCount(), 0);
}

TEST(DataSentryTest, EveryCorruptionModeQuarantines) {
  const Corruption kModes[] = {
      Corruption::kDuplicateEvents,   Corruption::kDropPartition,
      Corruption::kBotFlood,          Corruption::kTimestampScramble,
      Corruption::kCatalogTruncation, Corruption::kActionFlip,
  };
  for (Corruption mode : kModes) {
    WorldFixture f;
    DataSentry sentry(DataSentry::Options{});
    ASSERT_EQ(sentry.Observe(BuildFeedProfile(f.world.data)).verdict,
              Verdict::kPass);
    FeedCorruptor::Options corruptor_options;
    corruptor_options.seed = 99;
    FeedCorruptor corruptor(corruptor_options);
    const data::RetailerData poisoned =
        corruptor.Apply(f.world.data, mode, f.world.data.id, /*day=*/1);
    const DataSentry::Observation obs =
        sentry.Observe(BuildFeedProfile(poisoned));
    EXPECT_EQ(obs.verdict, Verdict::kQuarantine)
        << "mode " << CorruptionName(mode) << " went undetected";
    EXPECT_TRUE(sentry.IsQuarantined(f.world.data.id));
  }
}

TEST(DataSentryTest, QuarantinedDayNeverBecomesBaseline) {
  WorldFixture f;
  DataSentry sentry(DataSentry::Options{});
  ASSERT_EQ(sentry.Observe(BuildFeedProfile(f.world.data)).verdict,
            Verdict::kPass);
  const FeedProfile day1_baseline =
      *sentry.LastGoodProfile(f.world.data.id);

  FeedCorruptor::Options corruptor_options;
  corruptor_options.seed = 5;
  corruptor_options.bot_flood_multiple = 4.0;
  FeedCorruptor corruptor(corruptor_options);
  const data::RetailerData poisoned = corruptor.Apply(
      f.world.data, Corruption::kBotFlood, f.world.data.id, /*day=*/1);
  ASSERT_EQ(sentry.Observe(BuildFeedProfile(poisoned)).verdict,
            Verdict::kQuarantine);
  // The baseline is still day 1's profile, not the poisoned feed.
  EXPECT_EQ(sentry.LastGoodProfile(f.world.data.id)->events,
            day1_baseline.events);

  // The next clean feed releases the retailer. Crucially it is judged
  // against day 1, not against the poisoned day — a clean day after a 5x
  // bot flood would look like an event collapse if the poisoned feed had
  // become the reference.
  data::AdvanceOneDay(f.generator, &f.world, /*new_items=*/2, /*seed=*/77);
  const DataSentry::Observation release =
      sentry.Observe(BuildFeedProfile(f.world.data));
  EXPECT_EQ(release.verdict, Verdict::kPass);
  EXPECT_TRUE(release.released);
  EXPECT_FALSE(sentry.IsQuarantined(f.world.data.id));
}

TEST(DataSentryTest, NoiseFloorKeepsTinyRetailersOutOfQuarantine) {
  // A two-user shop whose whole feed is one user's three events: top-user
  // share is 1.0, far past the bot-flood bar, but the feed is legitimate.
  data::RetailerData tiny;
  tiny.id = 9;
  for (int i = 0; i < 5; ++i) tiny.catalog.AddItem(data::Item{0, data::kUnknownBrand, 0.0, 0});
  tiny.catalog.Finalize();
  tiny.histories.resize(2);
  tiny.histories[0] = {
      data::Interaction{0, 0, data::ActionType::kView, 1},
      data::Interaction{0, 1, data::ActionType::kView, 2},
      data::Interaction{0, 1, data::ActionType::kConversion, 3},
  };
  DataSentry sentry(DataSentry::Options{});
  const DataSentry::Observation obs =
      sentry.Observe(BuildFeedProfile(tiny));
  EXPECT_NE(obs.verdict, Verdict::kQuarantine);
  EXPECT_FALSE(sentry.IsQuarantined(tiny.id));
}

TEST(DataSentryTest, HardIntegrityChecksIgnoreTheNoiseFloor) {
  // Same tiny shop, but the feed references items outside the catalog —
  // that crashes training at any size, so the floor must not save it.
  data::RetailerData tiny;
  tiny.id = 10;
  tiny.catalog.AddItem(data::Item{0, data::kUnknownBrand, 0.0, 0});
  tiny.catalog.Finalize();
  tiny.histories.resize(1);
  tiny.histories[0] = {
      data::Interaction{0, 0, data::ActionType::kView, 1},
      data::Interaction{0, 50, data::ActionType::kView, 2},
  };
  DataSentry sentry(DataSentry::Options{});
  EXPECT_EQ(sentry.Observe(BuildFeedProfile(tiny)).verdict,
            Verdict::kQuarantine);
}

TEST(DataSentryTest, DegenerateWorldsPassTheSentry) {
  // Zero-interaction users and single-item catalogs are legal worlds; the
  // sentry (and the split/profile machinery) must wave them through.
  data::RetailerData ghosts;
  ghosts.id = 21;
  for (int i = 0; i < 3; ++i) ghosts.catalog.AddItem(data::Item{0, data::kUnknownBrand, 0.0, 0});
  ghosts.catalog.Finalize();
  ghosts.histories.resize(10);  // every user silent
  DataSentry sentry(DataSentry::Options{});
  EXPECT_EQ(sentry.Observe(BuildFeedProfile(ghosts)).verdict, Verdict::kPass);
  const data::TrainTestSplit ghost_split = data::SplitLeaveLastOut(ghosts);
  EXPECT_TRUE(ghost_split.holdout.empty());

  data::RetailerData single;
  single.id = 22;
  single.catalog.AddItem(data::Item{0, data::kUnknownBrand, 0.0, 0});
  single.catalog.Finalize();
  single.histories.resize(2);
  single.histories[0] = {
      data::Interaction{0, 0, data::ActionType::kView, 1},
      data::Interaction{0, 0, data::ActionType::kConversion, 2},
  };
  EXPECT_NE(sentry.Observe(BuildFeedProfile(single)).verdict,
            Verdict::kQuarantine);
  const data::TrainTestSplit single_split = data::SplitLeaveLastOut(single);
  EXPECT_EQ(single_split.train.size(), 2u);
}

// ---------------------------------------------------------------------------
// FeedCorruptor: determinism and schedule.
// ---------------------------------------------------------------------------

std::string HistoryFingerprint(const data::RetailerData& data) {
  std::string out;
  for (const auto& history : data.histories) {
    for (const data::Interaction& event : history) {
      out += std::to_string(event.item) + ":" +
             std::to_string(static_cast<int>(event.action)) + ":" +
             std::to_string(event.timestamp) + ",";
    }
    out += "|";
  }
  out += "#items=" + std::to_string(data.num_items());
  return out;
}

TEST(FeedCorruptorTest, SameSeedSameBytes) {
  WorldFixture f;
  FeedCorruptor::Options options;
  options.seed = 123;
  options.corruption_probability = 0.5;
  FeedCorruptor a(options);
  FeedCorruptor b(options);
  for (int day = 0; day < 6; ++day) {
    EXPECT_EQ(a.Plan(f.world.data.id, day), b.Plan(f.world.data.id, day));
    EXPECT_EQ(HistoryFingerprint(a.Corrupt(f.world.data, day)),
              HistoryFingerprint(b.Corrupt(f.world.data, day)));
  }
  EXPECT_EQ(a.counters().total, b.counters().total);
}

TEST(FeedCorruptorTest, PlanIsIndependentOfCallOrder) {
  FeedCorruptor::Options options;
  options.seed = 9;
  options.corruption_probability = 0.5;
  FeedCorruptor corruptor(options);
  const Corruption day3 = corruptor.Plan(1, 3);
  const Corruption day0 = corruptor.Plan(1, 0);
  FeedCorruptor reversed(options);
  EXPECT_EQ(reversed.Plan(1, 0), day0);
  EXPECT_EQ(reversed.Plan(1, 3), day3);
}

TEST(FeedCorruptorTest, DisabledAndNonePassThroughUntouched) {
  WorldFixture f;
  FeedCorruptor::Options options;
  options.seed = 1;
  options.corruption_probability = 1.0;
  FeedCorruptor corruptor(options);
  corruptor.set_enabled(false);
  EXPECT_EQ(HistoryFingerprint(corruptor.Corrupt(f.world.data, 0)),
            HistoryFingerprint(f.world.data));
  EXPECT_EQ(corruptor.counters().total, 0);

  FeedCorruptor::Options off;
  off.corruption_probability = 0.0;
  FeedCorruptor never(off);
  for (int day = 0; day < 20; ++day) {
    EXPECT_EQ(never.Plan(0, day), Corruption::kNone);
  }
}

// ---------------------------------------------------------------------------
// Service integration: quarantine semantics through RunDaily.
// ---------------------------------------------------------------------------

pipeline::SigmundService::Options ServiceOptions() {
  pipeline::SigmundService::Options options;
  options.sweep.grid.factors = {4, 8};
  options.sweep.grid.lambdas_v = {0.1, 0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 3;
  options.sweep.incremental_top_k = 2;
  options.training.num_map_tasks = 4;
  options.training.max_parallel_tasks = 2;
  options.training.checkpoint_interval_seconds = 0.0;
  options.inference.inference.top_k = 5;
  options.dataqual.enabled = true;
  return options;
}

struct ServiceFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 31;
    return config;
  }()};
  data::RetailerWorld r0 = generator.GenerateRetailer(0, 120);
  data::RetailerWorld r1 = generator.GenerateRetailer(1, 150);
};

TEST(ServiceDataQualTest, QuarantineSkipsTrainingAndKeepsServing) {
  ServiceFixture f;
  sfs::MemFileSystem fs;
  pipeline::SigmundService service(&fs, ServiceOptions());
  service.UpsertRetailer(&f.r0.data);
  service.UpsertRetailer(&f.r1.data);

  StatusOr<pipeline::DailyReport> day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  EXPECT_EQ(day1->quarantined_retailers, 0);
  EXPECT_EQ(day1->feed_quarantines, 0);
  const int64_t r0_version = service.store().RetailerVersion(0);
  ASSERT_GT(r0_version, 0);
  const int day1_models = day1->models_trained;
  ASSERT_GT(day1_models, 0);

  // Day 2: r0's feed arrives poisoned (catalog truncated under its
  // events); r1 advances normally.
  FeedCorruptor::Options corruptor_options;
  corruptor_options.seed = 4;
  FeedCorruptor corruptor(corruptor_options);
  data::RetailerData poisoned = corruptor.Apply(
      f.r0.data, Corruption::kCatalogTruncation, 0, /*day=*/2);
  service.UpsertRetailer(&poisoned);
  data::AdvanceOneDay(f.generator, &f.r1, /*new_items=*/2, /*seed=*/55);
  service.UpsertRetailer(&f.r1.data);

  StatusOr<pipeline::DailyReport> day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok()) << day2.status().ToString();
  EXPECT_EQ(day2->feed_quarantines, 1);
  EXPECT_EQ(day2->quarantined_retailers, 1);
  ASSERT_NE(service.sentry(), nullptr);
  EXPECT_TRUE(service.sentry()->IsQuarantined(0));
  // Only r1 trained (top-k records), and r0's serving version is frozen at
  // its last-known-good batch — which still serves.
  EXPECT_EQ(day2->models_trained, 2);
  EXPECT_EQ(service.store().RetailerVersion(0), r0_version);
  EXPECT_TRUE(service.store().Lookup(0, 0, serving::RecommendationKind::kViewBased).ok());
  // The quarantined day never reached the quality monitor's window.
  EXPECT_EQ(service.quality_monitor().days_observed(0), 1);
  EXPECT_EQ(service.quality_monitor().days_observed(1), 2);
  // The report and profile both carry the verdict.
  EXPECT_NE(day2->ToString().find("quarantined=1"), std::string::npos);
  EXPECT_NE(day2->profile_json.find("\"dataqual\":{\"quarantined_retailers\":1"),
            std::string::npos);

  // Day 3: a clean feed releases r0 — and warm-starts (top-k incremental
  // records, not a full-grid cold start), because its previous results
  // were carried across the quarantined day.
  data::AdvanceOneDay(f.generator, &f.r0, /*new_items=*/2, /*seed=*/56);
  service.UpsertRetailer(&f.r0.data);
  StatusOr<pipeline::DailyReport> day3 = service.RunDaily();
  ASSERT_TRUE(day3.ok()) << day3.status().ToString();
  EXPECT_EQ(day3->quarantine_releases, 1);
  EXPECT_EQ(day3->quarantined_retailers, 0);
  EXPECT_FALSE(service.sentry()->IsQuarantined(0));
  // Warm start: both retailers retrained exactly top-k records; r0 did
  // not show up as a "new" retailer needing the full grid.
  EXPECT_EQ(day3->models_trained, 4);
  EXPECT_EQ(day3->new_retailers, 0);
  EXPECT_GT(service.store().RetailerVersion(0), r0_version);
  EXPECT_EQ(service.quality_monitor().days_observed(0), 2);
}

TEST(ServiceDataQualTest, DegenerateRetailersFlowThroughTheFullPipeline) {
  // A single-item catalog and a world full of silent users must survive
  // sweep → train → profile → inference → store without crashing, and the
  // sentry must not quarantine them (noise floor).
  data::RetailerData single;
  single.id = 0;
  single.catalog.AddItem(data::Item{0, data::kUnknownBrand, 0.0, 0});
  single.catalog.Finalize();
  single.histories.resize(3);
  single.histories[0] = {
      data::Interaction{0, 0, data::ActionType::kView, 1},
      data::Interaction{0, 0, data::ActionType::kView, 2},
      data::Interaction{0, 0, data::ActionType::kConversion, 3},
  };
  single.histories[1] = {
      data::Interaction{0, 0, data::ActionType::kView, 4},
  };

  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 41;
    return config;
  }()};
  data::RetailerWorld normal = generator.GenerateRetailer(1, 80);
  // Silence most users: zero-interaction users are common in real feeds.
  for (size_t u = 0; u < normal.data.histories.size(); u += 2) {
    normal.data.histories[u].clear();
  }

  sfs::MemFileSystem fs;
  pipeline::SigmundService service(&fs, ServiceOptions());
  service.UpsertRetailer(&single);
  service.UpsertRetailer(&normal.data);
  for (int day = 0; day < 2; ++day) {
    StatusOr<pipeline::DailyReport> report = service.RunDaily();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->feed_quarantines, 0);
  }
  EXPECT_TRUE(service.store().Lookup(0, 0, serving::RecommendationKind::kViewBased).ok());
  EXPECT_TRUE(service.store().Lookup(1, 0, serving::RecommendationKind::kViewBased).ok());
}

}  // namespace
}  // namespace sigmund::dataqual
