#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "cluster/executor.h"
#include "cluster/lease.h"
#include "cluster/simulation.h"

namespace sigmund::cluster {
namespace {

TEST(CostModelTest, PreemptibleDiscountApplied) {
  CostModel model(0.04, 0.70);
  EXPECT_DOUBLE_EQ(model.PricePerCpuHour(VmPriority::kRegular), 0.04);
  EXPECT_NEAR(model.PricePerCpuHour(VmPriority::kPreemptible), 0.012, 1e-12);
}

TEST(CostModelTest, PriceScalesWithCpusAndTime) {
  CostModel model(1.0, 0.0);
  VmSpec vm{4.0, 32.0, VmPriority::kRegular};
  EXPECT_DOUBLE_EQ(model.Price(vm, 3600.0), 4.0);
  EXPECT_DOUBLE_EQ(model.Price(vm, 1800.0), 2.0);
}

TEST(CellTest, UniformBuildsMachines) {
  Cell cell = Cell::Uniform("cell-a", 5, 4.0, 32.0);
  EXPECT_EQ(cell.machines.size(), 5u);
  EXPECT_EQ(cell.machines[3].id, 3);
  EXPECT_DOUBLE_EQ(cell.machines[0].cpus, 4.0);
}

TEST(ClusterTest, TotalMachinesSumsCells) {
  Cluster cluster;
  cluster.cells.push_back(Cell::Uniform("a", 3, 1, 1));
  cluster.cells.push_back(Cell::Uniform("b", 7, 1, 1));
  EXPECT_EQ(cluster.TotalMachines(), 10);
}

SimJobConfig RegularConfig() {
  SimJobConfig config;
  config.vm.priority = VmPriority::kRegular;
  config.checkpoint_interval_seconds = 0.0;
  return config;
}

TEST(SimJobRunnerTest, SingleTaskSingleMachine) {
  Cell cell = Cell::Uniform("a", 1, 1, 1);
  SimJobRunner runner(cell, CostModel());
  SimJobStats stats = runner.Run({{0, 100.0}}, RegularConfig());
  EXPECT_DOUBLE_EQ(stats.makespan_seconds, 100.0);
  EXPECT_DOUBLE_EQ(stats.busy_vm_seconds, 100.0);
  EXPECT_EQ(stats.num_preemptions, 0);
  EXPECT_DOUBLE_EQ(stats.lost_work_seconds, 0.0);
}

TEST(SimJobRunnerTest, ListSchedulingSpreadsAcrossMachines) {
  Cell cell = Cell::Uniform("a", 2, 1, 1);
  SimJobRunner runner(cell, CostModel());
  // Four equal tasks on two machines: makespan = 2 tasks deep.
  std::vector<SimTask> tasks = {{0, 10}, {1, 10}, {2, 10}, {3, 10}};
  SimJobStats stats = runner.Run(tasks, RegularConfig());
  EXPECT_DOUBLE_EQ(stats.makespan_seconds, 20.0);
  EXPECT_DOUBLE_EQ(stats.busy_vm_seconds, 40.0);
}

TEST(SimJobRunnerTest, SkewedTaskDominatesMakespan) {
  Cell cell = Cell::Uniform("a", 4, 1, 1);
  SimJobRunner runner(cell, CostModel());
  std::vector<SimTask> tasks = {{0, 100}, {1, 1}, {2, 1}, {3, 1}};
  SimJobStats stats = runner.Run(tasks, RegularConfig());
  EXPECT_DOUBLE_EQ(stats.makespan_seconds, 100.0);
}

TEST(SimJobRunnerTest, RegularVmsNeverPreempted) {
  Cell cell = Cell::Uniform("a", 1, 1, 1);
  SimJobRunner runner(cell, CostModel());
  SimJobConfig config = RegularConfig();
  config.preemption_rate_per_hour = 100.0;  // ignored for regular priority
  SimJobStats stats = runner.Run({{0, 10000.0}}, config);
  EXPECT_EQ(stats.num_preemptions, 0);
}

TEST(SimJobRunnerTest, PreemptionsCauseLostWorkWithoutCheckpoints) {
  Cell cell = Cell::Uniform("a", 2, 1, 1);
  SimJobRunner runner(cell, CostModel());
  SimJobConfig config;
  config.vm.priority = VmPriority::kPreemptible;
  config.preemption_rate_per_hour = 6.0;  // every ~10 min on average
  config.checkpoint_interval_seconds = 0.0;
  config.restart_overhead_seconds = 10.0;
  std::vector<SimTask> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back({i, 900.0});
  SimJobStats stats = runner.Run(tasks, config);
  EXPECT_GT(stats.num_preemptions, 0);
  EXPECT_GT(stats.lost_work_seconds, 0.0);
  // Billable time = useful work + lost work + restart overheads.
  EXPECT_GT(stats.busy_vm_seconds, 9000.0);
}

TEST(SimJobRunnerTest, CheckpointingBoundsLostWorkPerPreemption) {
  Cell cell = Cell::Uniform("a", 1, 1, 1);
  CostModel cost;
  SimJobRunner runner(cell, cost);
  SimJobConfig base;
  base.vm.priority = VmPriority::kPreemptible;
  base.preemption_rate_per_hour = 4.0;
  base.restart_overhead_seconds = 5.0;
  base.checkpoint_write_seconds = 1.0;
  base.seed = 99;

  std::vector<SimTask> tasks;
  for (int i = 0; i < 20; ++i) tasks.push_back({i, 1800.0});

  SimJobConfig no_ckpt = base;
  no_ckpt.checkpoint_interval_seconds = 0.0;
  SimJobConfig fine_ckpt = base;
  fine_ckpt.checkpoint_interval_seconds = 60.0;

  SimJobStats without = runner.Run(tasks, no_ckpt);
  SimJobStats with = runner.Run(tasks, fine_ckpt);
  EXPECT_GT(without.lost_work_seconds, with.lost_work_seconds);
  // With 60s checkpoints, no preemption may lose much more than ~60s + write.
  EXPECT_LE(with.lost_work_seconds,
            with.num_preemptions * (fine_ckpt.checkpoint_interval_seconds +
                                    fine_ckpt.checkpoint_write_seconds + 1.0));
}

TEST(SimJobRunnerTest, DeterministicForSeed) {
  Cell cell = Cell::Uniform("a", 3, 1, 1);
  SimJobRunner runner(cell, CostModel());
  SimJobConfig config;
  config.vm.priority = VmPriority::kPreemptible;
  config.preemption_rate_per_hour = 2.0;
  config.seed = 7;
  std::vector<SimTask> tasks;
  for (int i = 0; i < 12; ++i) tasks.push_back({i, 500.0 + 37.0 * i});
  SimJobStats a = runner.Run(tasks, config);
  SimJobStats b = runner.Run(tasks, config);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.num_preemptions, b.num_preemptions);
  EXPECT_DOUBLE_EQ(a.cost_dollars, b.cost_dollars);
}

TEST(SimJobRunnerTest, PreemptibleCheaperDespitePreemptions) {
  // The headline claim (§II-B): ~70% discount leaves preemptible training
  // cheaper even after paying for redone work.
  Cell cell = Cell::Uniform("a", 4, 1, 1);
  SimJobRunner runner(cell, CostModel(0.04, 0.70));
  std::vector<SimTask> tasks;
  for (int i = 0; i < 16; ++i) tasks.push_back({i, 3600.0});

  SimJobConfig regular = RegularConfig();
  SimJobConfig preemptible;
  preemptible.vm.priority = VmPriority::kPreemptible;
  preemptible.preemption_rate_per_hour = 1.0;
  preemptible.checkpoint_interval_seconds = 300.0;

  SimJobStats reg = runner.Run(tasks, regular);
  SimJobStats pre = runner.Run(tasks, preemptible);
  EXPECT_LT(pre.cost_dollars, reg.cost_dollars);
  EXPECT_LT(pre.cost_dollars, 0.5 * reg.cost_dollars);
}

TEST(MakespanLowerBoundTest, MaxOfLongestAndAverage) {
  std::vector<SimTask> tasks = {{0, 10}, {1, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(MakespanLowerBound(tasks, 2), 10.0);
  EXPECT_DOUBLE_EQ(MakespanLowerBound(tasks, 1), 14.0);
  std::vector<SimTask> even = {{0, 4}, {1, 4}, {2, 4}, {3, 4}};
  EXPECT_DOUBLE_EQ(MakespanLowerBound(even, 2), 8.0);
}

// Property sweep: for any preemption rate, billable time >= total work and
// lost work is consistent with busy = work + lost + overheads.
class SimRunnerPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SimRunnerPropertyTest, AccountingInvariants) {
  const double rate = GetParam();
  Cell cell = Cell::Uniform("a", 3, 1, 1);
  SimJobRunner runner(cell, CostModel());
  SimJobConfig config;
  config.vm.priority = VmPriority::kPreemptible;
  config.preemption_rate_per_hour = rate;
  config.checkpoint_interval_seconds = 120.0;
  config.restart_overhead_seconds = 7.0;
  config.seed = 1234;
  std::vector<SimTask> tasks;
  double total_work = 0;
  for (int i = 0; i < 9; ++i) {
    tasks.push_back({i, 300.0 + 100.0 * i});
    total_work += tasks.back().work_seconds;
  }
  SimJobStats stats = runner.Run(tasks, config);
  EXPECT_GE(stats.busy_vm_seconds, total_work - 1e-6);
  EXPECT_GE(stats.makespan_seconds,
            MakespanLowerBound(tasks, 3) - 1e-6);
  EXPECT_GE(stats.lost_work_seconds, 0.0);
  // busy time is bounded by work + lost + per-attempt overhead.
  EXPECT_LE(stats.busy_vm_seconds,
            total_work + stats.lost_work_seconds +
                (stats.num_preemptions + 1) * config.restart_overhead_seconds +
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(Rates, SimRunnerPropertyTest,
                         ::testing::Values(0.0, 0.5, 2.0, 8.0, 30.0));

// --- Lease-based preemptible execution runtime.

PreemptibleExecutor::Options ChurnyOptions(double rate_per_hour,
                                           uint64_t seed = 7) {
  PreemptibleExecutor::Options options;
  options.churn.preemption_rate_per_hour = rate_per_hour;
  options.churn.eviction_grace_seconds = 5.0;
  options.churn.escalate_after_evictions = 3;
  options.churn.seed = seed;
  return options;
}

TEST(MachineLeaseTest, DefaultLeaseIsNeverEvicted) {
  MachineLease lease;
  EXPECT_EQ(lease.Check(0.0), MachineLease::State::kHeld);
  EXPECT_EQ(lease.Check(1e12), MachineLease::State::kHeld);
  EXPECT_FALSE(lease.preemptible());
}

TEST(MachineLeaseTest, StateMachineWalksHeldNoticeRevoked) {
  PreemptibleExecutor executor(ChurnyOptions(1.0));
  MachineLease lease = executor.Acquire("r1/m000", 0.0);
  ASSERT_TRUE(lease.preemptible());
  const double eviction = lease.eviction_at_seconds();
  ASSERT_GT(eviction, 0.0);
  ASSERT_TRUE(std::isfinite(eviction));
  EXPECT_EQ(lease.grace_deadline_seconds(), eviction + 5.0);
  EXPECT_EQ(lease.Check(eviction - 1e-9), MachineLease::State::kHeld);
  EXPECT_EQ(lease.Check(eviction), MachineLease::State::kEvictionNotice);
  EXPECT_EQ(lease.Check(eviction + 4.999),
            MachineLease::State::kEvictionNotice);
  EXPECT_EQ(lease.Check(eviction + 5.0), MachineLease::State::kRevoked);
}

TEST(MachineLeaseTest, NoChurnMeansStableMachines) {
  PreemptibleExecutor executor(ChurnyOptions(0.0));
  EXPECT_FALSE(executor.churn_enabled());
  MachineLease lease = executor.Acquire("r1/m000", 0.0);
  EXPECT_EQ(lease.Check(1e12), MachineLease::State::kHeld);
}

TEST(PreemptibleExecutorTest, EvictionScheduleIsDeterministic) {
  PreemptibleExecutor a(ChurnyOptions(2.0, 99));
  PreemptibleExecutor b(ChurnyOptions(2.0, 99));
  // Same (seed, key, incarnation) -> identical eviction time, regardless
  // of executor instance or acquisition order.
  MachineLease a0 = a.Acquire("r7/m002", 0.0);
  b.Acquire("unrelated", 0.0);
  MachineLease b0 = b.Acquire("r7/m002", 0.0);
  EXPECT_EQ(a0.eviction_at_seconds(), b0.eviction_at_seconds());
  // Different incarnations draw fresh times.
  MachineLease a1 = a.Acquire("r7/m002", 10.0);
  EXPECT_EQ(a1.incarnation(), 1);
  EXPECT_NE(a1.eviction_at_seconds() - 10.0, a0.eviction_at_seconds());
  // Different seeds give different schedules.
  PreemptibleExecutor c(ChurnyOptions(2.0, 100));
  MachineLease c0 = c.Acquire("r7/m002", 0.0);
  EXPECT_NE(c0.eviction_at_seconds(), a0.eviction_at_seconds());
}

TEST(PreemptibleExecutorTest, EvictionTimesAreRelativeToAcquisition) {
  PreemptibleExecutor executor(ChurnyOptions(1.0));
  MachineLease at_zero = executor.Acquire("k", 0.0);
  PreemptibleExecutor executor2(ChurnyOptions(1.0));
  MachineLease at_hundred = executor2.Acquire("k", 100.0);
  EXPECT_NEAR(at_hundred.eviction_at_seconds(),
              at_zero.eviction_at_seconds() + 100.0, 1e-9);
}

TEST(PreemptibleExecutorTest, EscalatesToRegularAfterThreshold) {
  PreemptibleExecutor executor(ChurnyOptions(5.0));
  const std::string key = "r3/m001";
  EXPECT_EQ(executor.TaskPriority(key), LeasePriority::kPreemptible);
  EXPECT_FALSE(executor.OnEviction(key, /*within_grace=*/true));
  EXPECT_FALSE(executor.OnEviction(key, /*within_grace=*/false));
  // Third eviction crosses escalate_after_evictions = 3.
  EXPECT_TRUE(executor.OnEviction(key, /*within_grace=*/true));
  EXPECT_EQ(executor.TaskPriority(key), LeasePriority::kRegular);
  EXPECT_EQ(executor.EvictionCount(key), 3);
  // Escalated tasks come back on stable machines.
  MachineLease lease = executor.Acquire(key, 123.0);
  EXPECT_FALSE(lease.preemptible());
  EXPECT_EQ(lease.Check(1e12), MachineLease::State::kHeld);
  // Stats reflect the history.
  EXPECT_EQ(executor.stats().evictions.load(), 3);
  EXPECT_EQ(executor.stats().grace_evictions.load(), 2);
  EXPECT_EQ(executor.stats().hard_evictions.load(), 1);
  EXPECT_EQ(executor.stats().escalations.load(), 1);
  EXPECT_EQ(executor.stats().leases_regular.load(), 1);
  // Other tasks are unaffected by this task's escalation.
  EXPECT_EQ(executor.TaskPriority("r3/m002"), LeasePriority::kPreemptible);
}

TEST(PreemptibleExecutorTest, MeanInterEvictionTimeTracksRate) {
  // rate = 4/hour -> mean inter-preemption = 900s. Average many draws.
  PreemptibleExecutor executor(ChurnyOptions(4.0, 31));
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    MachineLease lease =
        executor.Acquire("task" + std::to_string(i), 0.0);
    sum += lease.eviction_at_seconds();
  }
  const double mean = sum / n;
  EXPECT_GT(mean, 900.0 * 0.9);
  EXPECT_LT(mean, 900.0 * 1.1);
}

TEST(StableHashTest, GoldenValuesPinnedAcrossPlatforms) {
  // FNV-1a reference values; a platform where these differ would break
  // byte-identical churn reruns.
  EXPECT_EQ(StableHash64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(StableHash64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(StableHash64("r1/m000"), StableHash64("r1/m000"));
  EXPECT_NE(StableHash64("r1/m000"), StableHash64("r1/m001"));
}

}  // namespace
}  // namespace sigmund::cluster
