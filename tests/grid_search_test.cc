#include <set>

#include <gtest/gtest.h>

#include "core/grid_search.h"
#include "data/world_generator.h"

namespace sigmund::core {
namespace {

data::RetailerWorld MakeWorld(uint64_t seed = 3, int items = 100) {
  data::WorldConfig config;
  config.seed = seed;
  data::WorldGenerator generator(config);
  return generator.GenerateRetailer(0, items);
}

TEST(HyperParamsTest, SerializeRoundTrip) {
  HyperParams params;
  params.num_factors = 33;
  params.learning_rate = 0.123;
  params.lambda_v = 1e-4;
  params.lambda_vc = 0.5;
  params.use_adagrad = false;
  params.use_brand = true;
  params.context_window = 7;
  params.context_decay = 0.6;
  params.sampler = NegativeSamplerKind::kAdaptive;
  params.num_epochs = 3;
  params.seed = 999;
  StatusOr<HyperParams> parsed = HyperParams::Deserialize(params.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, params);
  EXPECT_EQ(parsed->num_factors, 33);
  EXPECT_FALSE(parsed->use_adagrad);
  EXPECT_EQ(parsed->sampler, NegativeSamplerKind::kAdaptive);
}

TEST(HyperParamsTest, DeserializeRejectsMalformed) {
  EXPECT_FALSE(HyperParams::Deserialize("f=abc").ok());
  EXPECT_FALSE(HyperParams::Deserialize("unknown_key=3").ok());
  EXPECT_FALSE(HyperParams::Deserialize("f=3=4").ok());
  // Empty string -> defaults.
  EXPECT_TRUE(HyperParams::Deserialize("").ok());
}

TEST(BuildGridTest, CrossProductSize) {
  data::RetailerWorld world = MakeWorld();
  GridSpec spec;
  spec.factors = {8, 16};
  spec.lambdas_v = {0.1, 0.01};
  spec.lambdas_vc = {0.1};
  spec.learning_rates = {0.05};
  spec.sweep_taxonomy = false;  // taxonomy always on
  spec.sweep_brand = false;
  spec.max_configs = 1000;
  auto grid = BuildGrid(spec, world.data.catalog, 1);
  EXPECT_EQ(grid.size(), 4u);  // 2 factors x 2 lambda_v
}

TEST(BuildGridTest, CapsAtMaxConfigs) {
  data::RetailerWorld world = MakeWorld();
  GridSpec spec;
  spec.factors = {4, 8, 16, 32, 64};
  spec.lambdas_v = {0.1, 0.01, 0.001};
  spec.lambdas_vc = {0.1, 0.01, 0.001};
  spec.max_configs = 10;
  auto grid = BuildGrid(spec, world.data.catalog, 1);
  EXPECT_EQ(grid.size(), 10u);
  // Deterministic subsample.
  auto grid2 = BuildGrid(spec, world.data.catalog, 1);
  for (size_t i = 0; i < grid.size(); ++i) EXPECT_EQ(grid[i], grid2[i]);
  // Different seed -> different subsample (overwhelmingly likely).
  auto grid3 = BuildGrid(spec, world.data.catalog, 2);
  bool any_differs = false;
  for (size_t i = 0; i < grid.size(); ++i) {
    any_differs |= !(grid[i] == grid3[i]);
  }
  EXPECT_TRUE(any_differs);
}

TEST(BuildGridTest, BrandFeatureGatedByCoverage) {
  // Catalog with almost no brand coverage: brand never enters the grid
  // (§III-C: "less than 10% ... detrimental to add it as a feature").
  data::Taxonomy taxonomy;
  data::CategoryId c = taxonomy.AddCategory("c", taxonomy.root());
  data::Catalog sparse(std::move(taxonomy));
  for (int i = 0; i < 50; ++i) {
    sparse.AddItem(data::Item{c, i == 0 ? 0 : data::kUnknownBrand, 1.0, 0});
  }
  sparse.Finalize();

  GridSpec spec;
  spec.factors = {8};
  spec.lambdas_v = {0.1};
  spec.lambdas_vc = {0.1};
  spec.sweep_taxonomy = false;
  spec.sweep_brand = true;
  auto grid = BuildGrid(spec, sparse, 1);
  for (const HyperParams& params : grid) {
    EXPECT_FALSE(params.use_brand);
  }

  // High-coverage catalog: both variants present.
  data::Taxonomy taxonomy2;
  data::CategoryId c2 = taxonomy2.AddCategory("c", taxonomy2.root());
  data::Catalog covered(std::move(taxonomy2));
  for (int i = 0; i < 50; ++i) {
    covered.AddItem(data::Item{c2, i % 5, 1.0, 0});
  }
  covered.Finalize();
  auto grid2 = BuildGrid(spec, covered, 1);
  std::set<bool> brand_settings;
  for (const HyperParams& params : grid2) {
    brand_settings.insert(params.use_brand);
  }
  EXPECT_EQ(brand_settings.size(), 2u);
}

TEST(TrainOneModelTest, ProducesFiniteMetricsAndModel) {
  data::RetailerWorld world = MakeWorld();
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params.num_factors = 8;
  request.params.num_epochs = 5;
  StatusOr<TrainOutput> output = TrainOneModel(request);
  ASSERT_TRUE(output.ok());
  EXPECT_GT(output->stats.sgd_steps, 0);
  EXPECT_GT(output->metrics.num_examples, 0);
  EXPECT_GE(output->metrics.map_at_k, 0.0);
}

TEST(TrainOneModelTest, MissingPointersRejected) {
  TrainRequest request;
  EXPECT_EQ(TrainOneModel(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TrainOneModelTest, EpochCallbackSeesModelAndCanStop) {
  data::RetailerWorld world = MakeWorld();
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params.num_factors = 8;
  request.params.num_epochs = 50;
  int calls = 0;
  request.epoch_callback = [&calls](int, const BprModel& model,
                                    const TrainStats&) {
    EXPECT_GT(model.num_items(), 0);
    return ++calls < 3;
  };
  StatusOr<TrainOutput> output = TrainOneModel(request);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->stats.epochs_run, 3);
}

TEST(WarmStartTest, CopiesEmbeddingsAndResetsAdagrad) {
  data::RetailerWorld world = MakeWorld();
  HyperParams params;
  params.num_factors = 8;
  BprModel previous(&world.data.catalog, params);
  Rng rng(5);
  previous.InitRandom(&rng);
  previous.item_embeddings().adagrad(0) = 7.0f;

  StatusOr<BprModel> warm =
      WarmStartFrom(previous, &world.data.catalog, params, &rng);
  ASSERT_TRUE(warm.ok());
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(warm->item_embeddings().row(3)[k],
              previous.item_embeddings().row(3)[k]);
  }
  // §III-C3: Adagrad norms reset before the incremental update.
  EXPECT_EQ(warm->item_embeddings().adagrad(0), 0.0f);
}

TEST(WarmStartTest, NewItemsGetFreshEmbeddings) {
  data::WorldConfig config;
  config.seed = 3;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 60);
  HyperParams params;
  params.num_factors = 8;
  BprModel previous(&world.data.catalog, params);
  Rng rng(5);
  previous.InitRandom(&rng);

  data::AdvanceOneDay(generator, &world, /*new_items=*/5, 42);
  StatusOr<BprModel> warm =
      WarmStartFrom(previous, &world.data.catalog, params, &rng);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->item_embeddings().rows(), 65);
  // Old rows copied; new rows nonzero random.
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(warm->item_embeddings().row(10)[k],
              previous.item_embeddings().row(10)[k]);
  }
  bool nonzero = false;
  for (int r = 60; r < 65; ++r) {
    for (int k = 0; k < 8; ++k) {
      nonzero |= warm->item_embeddings().row(r)[k] != 0.0f;
    }
  }
  EXPECT_TRUE(nonzero);
}

TEST(WarmStartTest, ArchitectureMismatchRejected) {
  data::RetailerWorld world = MakeWorld();
  HyperParams params;
  params.num_factors = 8;
  BprModel previous(&world.data.catalog, params);
  Rng rng(5);
  HyperParams other = params;
  other.num_factors = 16;
  EXPECT_FALSE(
      WarmStartFrom(previous, &world.data.catalog, other, &rng).ok());
  HyperParams flags = params;
  flags.use_brand = !params.use_brand;
  EXPECT_FALSE(
      WarmStartFrom(previous, &world.data.catalog, flags, &rng).ok());
}

TEST(RunGridSearchTest, SortedByMapAndTopConfigs) {
  data::RetailerWorld world = MakeWorld(11, 80);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::vector<HyperParams> grid;
  for (int f : {4, 8}) {
    for (double lv : {0.3, 0.01}) {
      HyperParams params;
      params.num_factors = f;
      params.lambda_v = lv;
      params.num_epochs = 4;
      grid.push_back(params);
    }
  }
  std::vector<BprModel> models;
  auto trials = RunGridSearch(world.data, split, grid, 1, 1.0, &models);
  ASSERT_EQ(trials.size(), 4u);
  ASSERT_EQ(models.size(), 4u);
  for (size_t i = 1; i < trials.size(); ++i) {
    EXPECT_GE(trials[i - 1].metrics.map_at_k, trials[i].metrics.map_at_k);
  }
  // Models stay aligned with their trials.
  for (size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(models[i].params(), trials[i].params);
  }
  auto top = TopConfigs(trials, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], trials[0].params);
}

TEST(IncrementalTrainingTest, WarmStartConvergesFasterThanCold) {
  // §III-C3 / E2: a warm-started incremental run reaches good quality in
  // far fewer epochs than training from scratch.
  data::WorldConfig config;
  config.seed = 31;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 120);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);

  HyperParams params;
  params.num_factors = 8;
  params.num_epochs = 16;

  TrainRequest day1;
  day1.catalog = &world.data.catalog;
  day1.train_histories = &split.train;
  day1.holdout = &split.holdout;
  day1.params = params;
  StatusOr<TrainOutput> base = TrainOneModel(day1);
  ASSERT_TRUE(base.ok());

  // Day 2 data arrives.
  data::AdvanceOneDay(generator, &world, 5, 77);
  data::TrainTestSplit split2 = data::SplitLeaveLastOut(world.data);

  HyperParams short_run = params;
  short_run.num_epochs = 2;

  TrainRequest warm = day1;
  warm.train_histories = &split2.train;
  warm.holdout = &split2.holdout;
  warm.params = short_run;
  warm.warm_start = &base->model;
  StatusOr<TrainOutput> warm_out = TrainOneModel(warm);
  ASSERT_TRUE(warm_out.ok());

  TrainRequest cold = warm;
  cold.warm_start = nullptr;
  StatusOr<TrainOutput> cold_out = TrainOneModel(cold);
  ASSERT_TRUE(cold_out.ok());

  EXPECT_GT(warm_out->metrics.map_at_k, cold_out->metrics.map_at_k);
}

}  // namespace
}  // namespace sigmund::core
