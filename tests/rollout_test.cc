// Safe-rollout serving plane: versioned snapshots with pointer-flip
// activation/rollback, the replicated store group (staggered cutover,
// failover, heartbeat probes, hedged reads), and the shared-lock swap
// invariant under concurrency (TSan-covered).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "serving/replicated_store.h"
#include "serving/store.h"
#include "sfs/mem_filesystem.h"

namespace sigmund {
namespace {

using data::ActionType;
using serving::RecommendationKind;
using serving::RecommendationStore;
using serving::ReplicatedStoreGroup;

// One batch whose every score equals `score` — lets tests recognize which
// batch version a served list came from, and detect torn lists.
std::vector<core::ItemRecommendations> MakeBatch(int num_items,
                                                 double score) {
  std::vector<core::ItemRecommendations> batch;
  for (int i = 0; i < num_items; ++i) {
    core::ItemRecommendations recs;
    recs.query = i;
    recs.view_based = {{(i + 1) % num_items, score},
                       {(i + 2) % num_items, score},
                       {(i + 3) % num_items, score}};
    recs.purchase_based = {{(i + 4) % num_items, score}};
    batch.push_back(std::move(recs));
  }
  return batch;
}

std::string SerializeBatch(
    const std::vector<core::ItemRecommendations>& batch) {
  std::string blob;
  for (const core::ItemRecommendations& recs : batch) {
    blob += recs.Serialize();
    blob += '\n';
  }
  return blob;
}

// SFS decorator counting every operation — proves rollback is a pure
// pointer flip that never touches storage.
class CountingFileSystem : public sfs::SharedFileSystem {
 public:
  explicit CountingFileSystem(sfs::SharedFileSystem* base) : base_(base) {}

  Status Write(const std::string& path, const std::string& data) override {
    ++ops_;
    return base_->Write(path, data);
  }
  StatusOr<std::string> Read(const std::string& path) const override {
    ++ops_;
    return base_->Read(path);
  }
  Status Delete(const std::string& path) override {
    ++ops_;
    return base_->Delete(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    ++ops_;
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& path) const override {
    ++ops_;
    return base_->Exists(path);
  }
  StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const override {
    ++ops_;
    return base_->List(prefix);
  }
  StatusOr<int64_t> FileSize(const std::string& path) const override {
    ++ops_;
    return base_->FileSize(path);
  }

  int64_t ops() const { return ops_; }

 private:
  sfs::SharedFileSystem* base_;
  mutable std::atomic<int64_t> ops_{0};
};

// --- Versioned snapshots ------------------------------------------------------

TEST(VersionedStoreTest, StagedVersionDoesNotServeUntilActivated) {
  RecommendationStore store;
  store.LoadRetailer(1, MakeBatch(5, 1.0));
  EXPECT_EQ(store.RetailerVersion(1), 1);

  const int64_t staged = store.StageRetailer(1, MakeBatch(5, 2.0));
  EXPECT_EQ(staged, 2);
  EXPECT_EQ(store.RetailerVersion(1), 1);  // still serving v1
  EXPECT_EQ(store.LatestVersion(1), 2);

  auto active = store.Lookup(1, 0, RecommendationKind::kViewBased);
  ASSERT_TRUE(active.ok());
  EXPECT_DOUBLE_EQ((*active)[0].score, 1.0);
  // Canary traffic can read the staged version explicitly.
  auto canary = store.LookupAtVersion(1, 0, RecommendationKind::kViewBased,
                                      staged);
  ASSERT_TRUE(canary.ok());
  EXPECT_DOUBLE_EQ((*canary)[0].score, 2.0);

  ASSERT_TRUE(store.ActivateVersion(1, staged).ok());
  EXPECT_EQ(store.RetailerVersion(1), 2);
  auto promoted = store.Lookup(1, 0, RecommendationKind::kViewBased);
  ASSERT_TRUE(promoted.ok());
  EXPECT_DOUBLE_EQ((*promoted)[0].score, 2.0);
}

TEST(VersionedStoreTest, RollbackIsInstantAndServesOldBatch) {
  RecommendationStore store;
  store.LoadRetailer(1, MakeBatch(5, 1.0));
  store.LoadRetailer(1, MakeBatch(5, 2.0));
  EXPECT_EQ(store.RetailerVersion(1), 2);

  ASSERT_TRUE(store.RollbackRetailer(1, 1).ok());
  EXPECT_EQ(store.RetailerVersion(1), 1);
  auto list = store.ServeContext(1, {{0, ActionType::kView}});
  ASSERT_TRUE(list.ok());
  EXPECT_DOUBLE_EQ((*list)[0].score, 1.0);

  // Rolling back to a version that was never loaded fails cleanly.
  EXPECT_EQ(store.RollbackRetailer(1, 9).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.RollbackRetailer(7, 1).code(), StatusCode::kNotFound);
}

TEST(VersionedStoreTest, RetentionWindowEvictsOldestVersions) {
  RecommendationStore::Options options;
  options.retained_versions = 2;
  RecommendationStore store(options);
  for (int v = 1; v <= 4; ++v) {
    store.LoadRetailer(1, MakeBatch(5, static_cast<double>(v)));
  }
  EXPECT_EQ(store.RetailerVersion(1), 4);
  EXPECT_EQ(store.RetainedVersions(1), (std::vector<int64_t>{3, 4}));
  // Evicted versions are gone for good.
  EXPECT_EQ(store.RollbackRetailer(1, 1).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.RollbackRetailer(1, 3).ok());
}

TEST(VersionedStoreTest, RetentionNeverEvictsActiveVersion) {
  RecommendationStore::Options options;
  options.retained_versions = 1;
  RecommendationStore store(options);
  store.LoadRetailer(1, MakeBatch(5, 1.0));
  // Stage (not activate) many new versions: the active v1 must survive.
  for (int v = 0; v < 4; ++v) {
    store.StageRetailer(1, MakeBatch(5, 9.0));
  }
  EXPECT_EQ(store.RetailerVersion(1), 1);
  auto list = store.Lookup(1, 0, RecommendationKind::kViewBased);
  ASSERT_TRUE(list.ok());
  EXPECT_DOUBLE_EQ((*list)[0].score, 1.0);
}

TEST(VersionedStoreTest, DiscardDropsStagedButNotActive) {
  RecommendationStore store;
  store.LoadRetailer(1, MakeBatch(5, 1.0));
  const int64_t staged = store.StageRetailer(1, MakeBatch(5, 2.0));
  ASSERT_TRUE(store.DiscardVersion(1, staged).ok());
  EXPECT_EQ(store.LatestVersion(1), 1);
  EXPECT_EQ(store.DiscardVersion(1, 1).code(),
            StatusCode::kFailedPrecondition);
  // A post-discard load continues the version sequence.
  store.LoadRetailer(1, MakeBatch(5, 3.0));
  EXPECT_EQ(store.RetailerVersion(1), 3);
}

TEST(VersionedStoreTest, RollbackDoesNoSfsIo) {
  sfs::MemFileSystem mem;
  CountingFileSystem fs(&mem);
  ASSERT_TRUE(fs.Write("batch", SerializeBatch(MakeBatch(5, 1.0))).ok());
  ASSERT_TRUE(fs.Write("batch2", SerializeBatch(MakeBatch(5, 2.0))).ok());

  RecommendationStore store;
  ASSERT_TRUE(store.LoadRetailerFromFile(1, fs, "batch").ok());
  ASSERT_TRUE(store.LoadRetailerFromFile(1, fs, "batch2").ok());
  EXPECT_EQ(store.RetailerVersion(1), 2);

  const int64_t ops_before = fs.ops();
  ASSERT_TRUE(store.RollbackRetailer(1, 1).ok());
  EXPECT_EQ(store.RetailerVersion(1), 1);
  auto list = store.Lookup(1, 0, RecommendationKind::kViewBased);
  ASSERT_TRUE(list.ok());
  EXPECT_DOUBLE_EQ((*list)[0].score, 1.0);
  // The whole rollback — flip + serve — touched storage zero times: no
  // reload, no re-read, O(pointer flip).
  EXPECT_EQ(fs.ops(), ops_before);
}

TEST(VersionedStoreTest, StageFromFileKeepsPreviousVersionServing) {
  sfs::MemFileSystem fs;
  ASSERT_TRUE(fs.Write("batch", SerializeBatch(MakeBatch(5, 2.0))).ok());
  RecommendationStore store;
  store.LoadRetailer(1, MakeBatch(5, 1.0));

  StatusOr<int64_t> staged = store.StageRetailerFromFile(1, fs, "batch");
  ASSERT_TRUE(staged.ok());
  EXPECT_EQ(*staged, 2);
  EXPECT_EQ(store.RetailerVersion(1), 1);  // old batch still live
  ASSERT_TRUE(store.ActivateVersion(1, *staged).ok());
  EXPECT_EQ(store.RetailerVersion(1), 2);

  // A corrupt staged batch is rejected and nothing changes.
  ASSERT_TRUE(fs.Write("bad", "not a recommendation record\n").ok());
  EXPECT_EQ(store.StageRetailerFromFile(1, fs, "bad").status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(store.RetailerVersion(1), 2);
  EXPECT_EQ(store.LatestVersion(1), 2);
}

// --- Shared-lock swap invariant (TSan-covered) --------------------------------

// Concurrent Lookup/ServeContext during LoadRetailer cutovers must never
// observe a torn or mixed-version shard: every score in a served list
// belongs to one batch version.
TEST(ConcurrentCutoverTest, ReadersNeverSeeTornOrMixedVersionShard) {
  constexpr int kItems = 16;
  constexpr int kVersions = 40;
  RecommendationStore store;
  store.LoadRetailer(1, MakeBatch(kItems, 1.0));

  std::atomic<bool> done{false};
  std::atomic<int64_t> violations{0};
  std::atomic<int64_t> reads{0};

  auto reader = [&](int offset) {
    int item = offset;
    while (!done.load(std::memory_order_relaxed)) {
      item = (item + 1) % kItems;
      StatusOr<std::vector<core::ScoredItem>> list =
          (item % 2 == 0)
              ? store.Lookup(1, item, RecommendationKind::kViewBased)
              : store.ServeContext(
                    1, {{item, ActionType::kView}});
      if (!list.ok() || list->empty()) {
        violations.fetch_add(1);
        continue;
      }
      const double version = (*list)[0].score;
      // All scores in one response must come from the same batch.
      for (const core::ScoredItem& scored : *list) {
        if (scored.score != version) violations.fetch_add(1);
      }
      if (version < 1.0 || version > kVersions) violations.fetch_add(1);
      reads.fetch_add(1);
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) readers.emplace_back(reader, t * 3);
  for (int v = 2; v <= kVersions; ++v) {
    store.LoadRetailer(1, MakeBatch(kItems, static_cast<double>(v)));
    std::this_thread::yield();
  }
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(store.RetailerVersion(1), kVersions);
}

// --- Replicated store group ---------------------------------------------------

TEST(ReplicatedGroupTest, ServesThroughFailoverUntilNoReplicaLeft) {
  ReplicatedStoreGroup::Options options;
  options.num_replicas = 3;
  obs::MetricRegistry metrics;
  ReplicatedStoreGroup group(options, &metrics);
  group.LoadRetailer(1, MakeBatch(8, 1.0));
  EXPECT_EQ(group.RetailerVersion(1), 1);

  auto serve_all = [&] {
    for (int item = 0; item < 8; ++item) {
      auto list = group.ServeContext(1, {{item, ActionType::kView}});
      ASSERT_TRUE(list.ok());
      EXPECT_DOUBLE_EQ((*list)[0].score, 1.0);
    }
  };
  serve_all();

  // Two replicas die; the survivor carries all traffic.
  group.KillReplica(1);
  group.KillReplica(2);
  EXPECT_EQ(group.ServingReplicas(), 1);
  serve_all();
  EXPECT_GT(metrics.Snapshot().CounterValue(
                "serving_replica_failovers_total", {}),
            0);

  // No replica at all: requests fail instead of hanging.
  group.KillReplica(0);
  EXPECT_EQ(group.ServeContext(1, {{0, ActionType::kView}}).status().code(),
            StatusCode::kUnavailable);

  group.ReviveReplica(0);
  serve_all();
}

TEST(ReplicatedGroupTest, StaggeredCutoverNeverDropsAggregateCapacity) {
  sfs::MemFileSystem fs;
  ASSERT_TRUE(fs.Write("batch_v2", SerializeBatch(MakeBatch(8, 2.0))).ok());

  ReplicatedStoreGroup::Options options;
  options.num_replicas = 3;
  obs::MetricRegistry metrics;
  ReplicatedStoreGroup group(options, &metrics);
  group.LoadRetailer(1, MakeBatch(8, 1.0));

  // Mid-cutover (one follower drained), every request must still be
  // served — by the other replicas — and exactly one replica is out of
  // the rotation at a time.
  int drains_observed = 0;
  group.SetCutoverHookForTesting([&](data::RetailerId retailer,
                                     int /*replica*/) {
    EXPECT_EQ(retailer, 1);
    EXPECT_EQ(group.ServingReplicas(), 2);
    for (int item = 0; item < 8; ++item) {
      auto list = group.ServeContext(1, {{item, ActionType::kView}});
      ASSERT_TRUE(list.ok());
      EXPECT_FALSE(list->empty());
    }
    ++drains_observed;
  });

  StatusOr<int64_t> staged =
      group.primary()->StageRetailerFromFile(1, fs, "batch_v2");
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(group.primary()->ActivateVersion(1, *staged).ok());
  ASSERT_TRUE(
      group.CutoverFollowersFromFile(1, fs, "batch_v2", *staged).ok());

  EXPECT_EQ(drains_observed, 2);
  EXPECT_EQ(group.ServingReplicas(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(group.replica(i)->RetailerVersion(1), 2) << "replica " << i;
  }
  EXPECT_EQ(metrics.Snapshot().CounterValue("serving_replica_cutovers_total",
                                            {{"outcome", "ok"}}),
            2);
}

TEST(ReplicatedGroupTest, CutoverSkipsDeadAndKeepsStaleOnCorruptBatch) {
  sfs::MemFileSystem fs;
  ASSERT_TRUE(fs.Write("good", SerializeBatch(MakeBatch(8, 2.0))).ok());
  ASSERT_TRUE(fs.Write("bad", "garbage record\n").ok());

  ReplicatedStoreGroup::Options options;
  options.num_replicas = 3;
  obs::MetricRegistry metrics;
  ReplicatedStoreGroup group(options, &metrics);
  group.LoadRetailer(1, MakeBatch(8, 1.0));

  // Replica 1 is dead; replica 2 gets a corrupt copy of the batch.
  group.KillReplica(1);
  ASSERT_TRUE(group.primary()
                  ->LoadRetailerFromFile(1, fs, "good", {}, nullptr, 2)
                  .ok());
  ASSERT_TRUE(group.CutoverFollowersFromFile(1, fs, "bad", 2).ok());

  EXPECT_EQ(group.primary()->RetailerVersion(1), 2);
  EXPECT_EQ(group.replica(2)->RetailerVersion(1), 1);  // stale but serving
  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_replica_cutovers_total",
                                  {{"outcome", "skipped_dead"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue("serving_replica_cutovers_total",
                                  {{"outcome", "rejected"}}),
            1);
  // The stale replica still serves its previous batch.
  auto list = group.replica(2)->Lookup(1, 0, RecommendationKind::kViewBased);
  ASSERT_TRUE(list.ok());
  EXPECT_DOUBLE_EQ((*list)[0].score, 1.0);
}

TEST(ReplicatedGroupTest, RollbackFlipsEveryReplica) {
  ReplicatedStoreGroup::Options options;
  options.num_replicas = 2;
  obs::MetricRegistry metrics;
  ReplicatedStoreGroup group(options, &metrics);
  group.LoadRetailer(1, MakeBatch(8, 1.0));
  group.LoadRetailer(1, MakeBatch(8, 2.0));
  ASSERT_TRUE(group.RollbackRetailer(1, 1).ok());
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(group.replica(i)->RetailerVersion(1), 1);
  }
  EXPECT_EQ(metrics.Snapshot().CounterValue("serving_rollbacks_total", {}),
            1);
}

TEST(ReplicatedGroupTest, HedgedReadsServeTheFasterCopy) {
  ReplicatedStoreGroup::Options options;
  options.num_replicas = 2;
  options.hedged_reads = true;
  options.replica_read_micros = {400, 50};  // replica 1 is much faster
  obs::MetricRegistry metrics;
  ReplicatedStoreGroup group(options, &metrics);
  group.LoadRetailer(1, MakeBatch(8, 1.0));

  for (int item = 0; item < 8; ++item) {
    auto list = group.ServeContext(1, {{item, ActionType::kView}});
    ASSERT_TRUE(list.ok());
  }
  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_hedged_reads_total", {}), 8);
  // Whenever slow replica 0 was preferred, the hedge to replica 1 won.
  const int64_t wins = snapshot.CounterValue("serving_hedge_wins_total", {});
  EXPECT_GT(wins, 0);
  EXPECT_LT(wins, 8);
}

TEST(ReplicatedGroupTest, FailedProbeTakesReplicaOutUntilHeartbeatReturns) {
  sfs::MemFileSystem fs;
  ReplicatedStoreGroup::Options options;
  options.num_replicas = 3;
  obs::MetricRegistry metrics;
  ReplicatedStoreGroup group(options, &metrics);
  group.LoadRetailer(1, MakeBatch(8, 1.0));

  ASSERT_TRUE(group.WriteHeartbeats(&fs).ok());
  group.ProbeReplicas(fs);
  EXPECT_EQ(group.ServingReplicas(), 3);

  // Replica 2's heartbeat disappears (machine wedged): the probe takes it
  // out of the rotation, but traffic keeps flowing.
  ASSERT_TRUE(fs.Delete(ReplicatedStoreGroup::HeartbeatPath(2)).ok());
  group.ProbeReplicas(fs);
  EXPECT_EQ(group.ServingReplicas(), 2);
  EXPECT_GT(metrics.Snapshot().CounterValue(
                "serving_replica_probe_failures_total", {}),
            0);
  for (int item = 0; item < 8; ++item) {
    EXPECT_TRUE(group.ServeContext(1, {{item, ActionType::kView}}).ok());
  }

  // Heartbeats resume: the next probe round restores the replica.
  ASSERT_TRUE(group.WriteHeartbeats(&fs).ok());
  group.ProbeReplicas(fs);
  EXPECT_EQ(group.ServingReplicas(), 3);
}

// Dead replicas revived later rejoin with aligned version numbers thanks
// to the shared version pinning.
TEST(ReplicatedGroupTest, RevivedReplicaRejoinsAtPinnedVersion) {
  sfs::MemFileSystem fs;
  ASSERT_TRUE(fs.Write("v2", SerializeBatch(MakeBatch(8, 2.0))).ok());
  ASSERT_TRUE(fs.Write("v3", SerializeBatch(MakeBatch(8, 3.0))).ok());

  ReplicatedStoreGroup::Options options;
  options.num_replicas = 2;
  ReplicatedStoreGroup group(options);
  group.LoadRetailer(1, MakeBatch(8, 1.0));

  group.KillReplica(1);
  ASSERT_TRUE(group.primary()
                  ->LoadRetailerFromFile(1, fs, "v2", {}, nullptr, 2)
                  .ok());
  ASSERT_TRUE(group.CutoverFollowersFromFile(1, fs, "v2", 2).ok());
  EXPECT_EQ(group.replica(1)->RetailerVersion(1), 1);  // missed v2

  group.ReviveReplica(1);
  ASSERT_TRUE(group.primary()
                  ->LoadRetailerFromFile(1, fs, "v3", {}, nullptr, 3)
                  .ok());
  ASSERT_TRUE(group.CutoverFollowersFromFile(1, fs, "v3", 3).ok());
  EXPECT_EQ(group.replica(0)->RetailerVersion(1), 3);
  EXPECT_EQ(group.replica(1)->RetailerVersion(1), 3);  // caught up, aligned
}

}  // namespace
}  // namespace sigmund
