// Tests for sigmund::obs — the metrics registry, histogram math, span
// tracing, and the end-to-end run profile the daily pipeline emits.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "data/world_generator.h"
#include "pipeline/service.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::obs {
namespace {

// ---------------------------------------------------------------------------
// Counters, gauges, labels.

TEST(MetricRegistryTest, CounterIsSharedByNameAndLabels) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("events_total");
  Counter* b = registry.GetCounter("events_total");
  EXPECT_EQ(a, b);
  a->Add(2);
  b->Add(3);
  EXPECT_EQ(a->Value(), 5);

  // Different labels are different instruments; label order is irrelevant.
  Counter* read = registry.GetCounter("ops_total", {{"op", "read"}});
  Counter* write = registry.GetCounter("ops_total", {{"op", "write"}});
  EXPECT_NE(read, write);
  Counter* multi1 =
      registry.GetCounter("ops_total", {{"op", "read"}, {"cell", "a"}});
  Counter* multi2 =
      registry.GetCounter("ops_total", {{"cell", "a"}, {"op", "read"}});
  EXPECT_EQ(multi1, multi2);
}

TEST(MetricRegistryTest, SnapshotSumsAcrossLabelSets) {
  MetricRegistry registry;
  registry.GetCounter("ops_total", {{"op", "read"}})->Add(3);
  registry.GetCounter("ops_total", {{"op", "write"}})->Add(4);
  registry.GetCounter("ops_total", {{"op", "read"}, {"cell", "b"}})->Add(5);

  RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("ops_total"), 12);
  EXPECT_EQ(snapshot.CounterValue("ops_total", {{"op", "read"}}), 8);
  EXPECT_EQ(snapshot.CounterValue("ops_total", {{"op", "write"}}), 4);
  EXPECT_EQ(snapshot.CounterValue("ops_total", {{"cell", "b"}}), 5);
  EXPECT_EQ(snapshot.CounterValue("absent_total"), 0);
}

TEST(MetricRegistryTest, GaugeHoldsLastValue) {
  MetricRegistry registry;
  Gauge* gauge = registry.GetGauge("queue_depth");
  gauge->Set(7.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().GaugeValue("queue_depth"), 7.5);
  gauge->Add(-2.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 5.0);
}

TEST(MetricRegistryTest, ConcurrentCounterUpdatesAreExact) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("bumps_total");
  Histogram* histogram = registry.GetHistogram("values");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Schedule([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Observe(1.0);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(histogram->Count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(histogram->Sum(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Histogram math.

TEST(HistogramTest, TracksCountSumMinMax) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("latency_micros");
  for (double v : {5.0, 10.0, 100.0, 1000.0}) h->Observe(v);
  EXPECT_EQ(h->Count(), 4);
  EXPECT_DOUBLE_EQ(h->Sum(), 1115.0);
  EXPECT_DOUBLE_EQ(h->Min(), 5.0);
  EXPECT_DOUBLE_EQ(h->Max(), 1000.0);
}

TEST(HistogramTest, QuantilesOfUniformDistribution) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("uniform");
  // 1..1000, uniformly: quantile(q) should land near 1000q. Exponential
  // buckets give coarse resolution at the top, so allow the bucket width.
  for (int i = 1; i <= 1000; ++i) h->Observe(static_cast<double>(i));
  const double p50 = h->Quantile(0.5);
  const double p95 = h->Quantile(0.95);
  const double p99 = h->Quantile(0.99);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 750.0);
  EXPECT_GE(p95, 700.0);
  EXPECT_LE(p95, 1000.0);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 1000.0);
  // Quantiles never leave the observed range.
  EXPECT_GE(h->Quantile(0.0), 1.0);
  EXPECT_LE(h->Quantile(1.0), 1000.0);
}

TEST(HistogramTest, QuantileOfPointMassIsExact) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("point");
  for (int i = 0; i < 100; ++i) h->Observe(42.0);
  // Interpolation is clamped to [min, max], so a point mass reports the
  // point at every quantile.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 42.0);
}

TEST(HistogramTest, EmptyHistogramIsSane) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("empty");
  EXPECT_EQ(h->Count(), 0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Snapshot vs. reset.

TEST(MetricRegistryTest, SnapshotIsImmutableAndResetZeroes) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("c_total");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Add(10);
  histogram->Observe(3.0);

  RegistrySnapshot snapshot = registry.Snapshot();
  counter->Add(5);  // after the snapshot
  EXPECT_EQ(snapshot.CounterValue("c_total"), 10);
  EXPECT_EQ(registry.Snapshot().CounterValue("c_total"), 15);

  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);           // pointers stay valid
  EXPECT_EQ(histogram->Count(), 0);
  EXPECT_EQ(snapshot.CounterValue("c_total"), 10);  // snapshot unaffected
  counter->Add(1);
  EXPECT_EQ(registry.Snapshot().CounterValue("c_total"), 1);
}

// ---------------------------------------------------------------------------
// Exposition formats.

TEST(ExpositionTest, TextExpositionIsPrometheusShaped) {
  MetricRegistry registry;
  registry.GetCounter("reqs_total", {{"outcome", "ok"}})->Add(3);
  registry.GetHistogram("lat_micros")->Observe(2.0);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total{outcome=\"ok\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_micros histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_micros_count 1"), std::string::npos);
}

TEST(ExpositionTest, JsonExpositionCarriesQuantiles) {
  MetricRegistry registry;
  registry.GetCounter("c_total")->Add(2);
  Histogram* h = registry.GetHistogram("h_micros");
  for (int i = 0; i < 10; ++i) h->Observe(8.0);
  const std::string json = registry.JsonExposition();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// Regression: label values carrying Prometheus-special characters must be
// escaped in the text exposition — an unescaped quote or newline corrupts
// every line after it for any scrape parser.
TEST(ExpositionTest, LabelValuesAreEscaped) {
  MetricRegistry registry;
  registry.GetCounter("odd_total", {{"path", "a\\b"}})->Add(1);
  registry.GetCounter("odd_total", {{"msg", "say \"hi\""}})->Add(1);
  registry.GetCounter("odd_total", {{"err", "line1\nline2"}})->Add(1);
  registry.GetCounter("odd_total", {{"crlf", "x\r\ny"}})->Add(1);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("msg=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(text.find("err=\"line1\\nline2\""), std::string::npos);
  // Raw newlines must never survive inside a label value: every line of
  // the exposition is either a comment or "name{...} value".
  for (const char* forbidden : {"line1\nline2", "say \"hi\""}) {
    EXPECT_EQ(text.find(forbidden), std::string::npos) << forbidden;
  }
  EXPECT_NE(text.find("crlf=\"x\\n\\ny\""), std::string::npos);
}

// Exemplars: a kept trace attached to a bucket shows up OpenMetrics-style
// in the text exposition, in the JSON p99 link, and through the
// nearest-bucket fallback of ExemplarForQuantile.
TEST(ExpositionTest, ExemplarsLinkBucketsToTraces) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("lat_micros");
  for (int i = 0; i < 100; ++i) h->Observe(8.0);
  h->AttachExemplar(8.0, /*trace_id=*/77);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find(" # {trace_id=\"77\"} 8"), std::string::npos);

  // The p99 rank falls in the same point-mass bucket: direct hit.
  EXPECT_EQ(registry.Snapshot()
                .FindHistogram("lat_micros")
                ->ExemplarForQuantile(0.99),
            77u);
  // JSON carries the link for RunProfile consumers.
  EXPECT_NE(registry.JsonExposition().find("\"p99_exemplar\":\"77\""),
            std::string::npos);

  // Fallback: observations land in a bucket with no exemplar of its own;
  // the nearest exemplar-carrying bucket (lower preferred) answers.
  Histogram* sparse = registry.GetHistogram("sparse_micros");
  sparse->Observe(1.0);
  sparse->AttachExemplar(1.0, 5);
  for (int i = 0; i < 1000; ++i) sparse->Observe(1e6);
  EXPECT_EQ(registry.Snapshot()
                .FindHistogram("sparse_micros")
                ->ExemplarForQuantile(0.99),
            5u);
  // No exemplar anywhere: 0 = "no link".
  Histogram* bare = registry.GetHistogram("bare_micros");
  bare->Observe(1.0);
  EXPECT_EQ(
      registry.Snapshot().FindHistogram("bare_micros")->ExemplarForQuantile(
          0.99),
      0u);
}

// ---------------------------------------------------------------------------
// Span tracing under SimClock.

TEST(TracerTest, SpansNestOnOneThread) {
  SimClock clock;
  Tracer tracer(&clock);
  {
    Span outer = tracer.StartSpan("outer");
    clock.AdvanceSeconds(1.0);
    {
      Span inner = tracer.StartSpan("inner");
      clock.AdvanceSeconds(2.0);
    }
    clock.AdvanceSeconds(1.0);
  }
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_id, Tracer::kNoParent);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  // Deterministic simulated durations.
  EXPECT_EQ(spans[0].DurationMicros(), 4000000);
  EXPECT_EQ(spans[1].DurationMicros(), 2000000);
  // A child lives entirely inside its parent.
  EXPECT_GE(spans[1].start_micros, spans[0].start_micros);
  EXPECT_LE(spans[1].end_micros, spans[0].end_micros);
}

TEST(TracerTest, ExplicitParentAttachesCrossThreadWork) {
  SimClock clock;
  Tracer tracer(&clock);
  Span job = tracer.StartSpan("job");
  const int64_t job_id = job.id();

  ThreadPool pool(2);
  pool.Schedule([&] {
    Span task = tracer.StartSpan("task", job_id);
    (void)task;
  });
  pool.Wait();
  job.End();

  std::vector<SpanRecord> spans = tracer.Subtree(job_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "job");
  EXPECT_EQ(spans[1].name, "task");
  EXPECT_EQ(spans[1].parent_id, job_id);
}

TEST(TracerTest, DumpTreeIndentsChildren) {
  SimClock clock;
  Tracer tracer(&clock);
  {
    Span a = tracer.StartSpan("alpha");
    clock.AdvanceSeconds(0.001);
    Span b = tracer.StartSpan("beta");
    clock.AdvanceSeconds(0.001);
  }
  const std::string tree = tracer.DumpTree();
  EXPECT_NE(tree.find("alpha"), std::string::npos);
  EXPECT_NE(tree.find("  beta"), std::string::npos);
}

TEST(TracerTest, MovedSpanEndsOnce) {
  SimClock clock;
  Tracer tracer(&clock);
  Span a = tracer.StartSpan("a");
  clock.AdvanceSeconds(1.0);
  Span b = std::move(a);
  b.End();
  b.End();  // idempotent
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].DurationMicros(), 1000000);
}

TEST(TracerTest, SpanIdSurvivesEnd) {
  SimClock clock;
  Tracer tracer(&clock);
  Span job = tracer.StartSpan("job");
  const int64_t id = job.id();
  clock.AdvanceSeconds(1.0);
  job.End();
  // Like DurationMicros(), id() stays valid after End() so the ended span
  // can still key Subtree()/BuildRunProfile.
  EXPECT_EQ(job.id(), id);
  std::vector<SpanRecord> subtree = tracer.Subtree(job.id());
  ASSERT_EQ(subtree.size(), 1u);
  EXPECT_EQ(subtree[0].name, "job");
}

TEST(TracerTest, DumpTreeMarksOpenSpans) {
  SimClock clock;
  Tracer tracer(&clock);
  Span running = tracer.StartSpan("still_running");
  clock.AdvanceSeconds(1.0);
  const std::string tree = tracer.DumpTree();
  EXPECT_NE(tree.find("still_running"), std::string::npos);
  EXPECT_NE(tree.find("open"), std::string::npos);
  // An open span must not render as a bogus negative duration.
  EXPECT_EQ(tree.find("-"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logging: suppressed severities must not evaluate their stream
// arguments (satellite of the observability issue).

TEST(LoggingTest, SuppressedSeverityIsZeroCost) {
  const LogSeverity saved = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kInfo);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  SIGLOG(DEBUG) << "never formatted: " << expensive();
  EXPECT_EQ(evaluations, 0);
  SetMinLogSeverity(LogSeverity::kDebug);
  SIGLOG(DEBUG) << "formatted: " << expensive();
  EXPECT_EQ(evaluations, 1);
  SetMinLogSeverity(saved);
}

// ---------------------------------------------------------------------------
// End-to-end: a daily run's profile is machine-readable and its stage
// spans nest inside the run total.

TEST(RunProfileTest, DailyRunEmitsCoherentProfile) {
  data::WorldConfig config;
  config.seed = 11;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 40);

  sfs::MemFileSystem fs;
  pipeline::SigmundService::Options options;
  options.sweep.grid.factors = {4};
  options.sweep.grid.lambdas_v = {0.1};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 2;
  options.training.num_map_tasks = 2;

  MetricRegistry registry;
  Tracer tracer;
  options.metrics = &registry;
  options.tracer = &tracer;
  pipeline::SigmundService service(&fs, options);
  service.UpsertRetailer(&world.data);

  StatusOr<pipeline::DailyReport> report = service.RunDaily();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Per-stage wall times are reported, in order, and sum to <= total.
  ASSERT_FALSE(report->stage_wall_micros.empty());
  int64_t stage_sum = 0;
  for (const auto& [stage, micros] : report->stage_wall_micros) {
    EXPECT_GE(micros, 0) << stage;
    stage_sum += micros;
  }
  EXPECT_LE(stage_sum, report->total_wall_micros);
  EXPECT_EQ(report->stage_wall_micros.front().first, "plan_sweep");
  EXPECT_EQ(report->stage_wall_micros.back().first, "store_load");

  // The profile JSON exists and nests: every stage span's duration fits
  // inside the root's, and the root equals the report total.
  EXPECT_NE(report->profile_json.find("\"run_daily/day0\""),
            std::string::npos);
  EXPECT_NE(report->profile_json.find("\"metrics\""), std::string::npos);

  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_FALSE(spans.empty());
  const SpanRecord& root = spans.front();
  EXPECT_EQ(root.name, "run_daily/day0");
  EXPECT_EQ(root.DurationMicros(), report->total_wall_micros);
  int64_t direct_child_sum = 0;
  for (const SpanRecord& span : spans) {
    if (span.parent_id == root.id) direct_child_sum += span.DurationMicros();
    if (span.id != root.id) {
      EXPECT_NE(span.parent_id, 0) << span.name << " should not be a root";
    }
  }
  EXPECT_LE(direct_child_sum, root.DurationMicros());

  // The registry agrees with the report (snapshot-view property).
  RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("training_models_trained_total"),
            report->models_trained);
  EXPECT_EQ(snapshot.CounterValue("inference_items_scored_total"),
            report->items_scored);
  EXPECT_EQ(snapshot.CounterValue("mapreduce_task_attempts_total",
                                  {{"phase", "map"}}),
            report->map_attempts);
  EXPECT_EQ(snapshot.CounterValue("quality_verdicts_total"), 1);
  const HistogramSnapshot* stage_hist = snapshot.FindHistogram(
      "pipeline_stage_micros", {{"stage", "train"}});
  ASSERT_NE(stage_hist, nullptr);
  EXPECT_EQ(stage_hist->count, 1);

  // Day 1's profile is keyed on day 1's root span only — it must not pick
  // up day 0's spans (regression: the root id used to be read after the
  // root span had ended, which reset it to 0 and matched every root).
  StatusOr<pipeline::DailyReport> day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  EXPECT_NE(day1->profile_json.find("\"run_daily/day1\""),
            std::string::npos);
  EXPECT_EQ(day1->profile_json.find("\"run_daily/day0\""),
            std::string::npos);
}

}  // namespace
}  // namespace sigmund::obs
