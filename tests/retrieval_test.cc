#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "data/world_generator.h"
#include "pipeline/service.h"
#include "retrieval/artifact.h"
#include "retrieval/index.h"
#include "retrieval/reader.h"
#include "serving/frontend.h"
#include "sfs/mem_filesystem.h"
#include "sfs/reliable_io.h"

namespace sigmund {
namespace {

using data::ActionType;

std::vector<float> Flatten(const std::vector<std::vector<float>>& rows) {
  std::vector<float> flat;
  if (rows.empty()) return flat;
  flat.reserve(rows.size() * rows[0].size());
  for (const std::vector<float>& row : rows) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return flat;
}

std::set<data::ItemIndex> ItemSet(const std::vector<core::ScoredItem>& items) {
  std::set<data::ItemIndex> set;
  for (const core::ScoredItem& item : items) set.insert(item.item);
  return set;
}

// A toy artifact over `n` items in dim 2: item i's vector is (i + 1, 1),
// and the query side mirrors the item side, so a context of item c scores
// item i as (c + 1) * (i + 1) + 1 — strictly increasing in i. Every query
// therefore ranks the highest-index items first, which makes routing
// decisions trivially checkable.
retrieval::IndexArtifact ToyArtifact(data::RetailerId retailer, int n) {
  std::vector<float> vectors;
  for (int i = 0; i < n; ++i) {
    vectors.push_back(static_cast<float>(i + 1));
    vectors.push_back(1.0f);
  }
  retrieval::AnnIndex::Options options;
  options.num_lists = 4;
  options.kmeans_iters = 4;
  return retrieval::BuildArtifactFromFactors(retailer, vectors, vectors,
                                             /*dim=*/2, /*context_window=*/25,
                                             /*context_decay=*/0.85, options);
}

// --- Index: recall, determinism, validation -------------------------------

TEST(AnnIndexTest, RecallAtTenVersusExactOnSeededWorld) {
  data::WorldConfig config;
  config.seed = 29;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 300);
  const int dim = world.truth.dim;
  std::vector<float> item_vectors = Flatten(world.truth.item_vecs);

  retrieval::ExactIndex exact(item_vectors, dim);
  retrieval::AnnIndex::Options options;  // 16 lists, 8 Lloyd iterations
  retrieval::AnnIndex ann =
      retrieval::AnnIndex::Build(item_vectors, dim, options);
  ASSERT_EQ(ann.num_items(), 300);
  ASSERT_EQ(ann.num_lists(), 16);

  const int kQueries = 100;
  const int kTopK = 10;
  const int kNprobe = 8;
  ASSERT_GE(static_cast<int>(world.truth.user_vecs.size()), kQueries);
  double hits = 0.0;
  int64_t scanned = 0;
  for (int q = 0; q < kQueries; ++q) {
    const float* query = world.truth.user_vecs[q].data();
    std::vector<core::ScoredItem> truth =
        exact.Search(query, kTopK, /*nprobe=*/0, nullptr);
    retrieval::SearchStats stats;
    std::vector<core::ScoredItem> approx =
        ann.Search(query, kTopK, kNprobe, &stats);
    EXPECT_EQ(stats.lists_probed, kNprobe);
    scanned += stats.candidates_scanned;
    std::set<data::ItemIndex> truth_set = ItemSet(truth);
    for (const core::ScoredItem& item : approx) {
      if (truth_set.count(item.item) > 0) hits += 1.0;
    }
  }
  const double recall = hits / (kQueries * kTopK);
  EXPECT_GE(recall, 0.95) << "ANN recall@10 over " << kQueries << " queries";
  // The index must actually prune: probing half the lists scans well
  // under the full catalog per query on average.
  EXPECT_LT(scanned, static_cast<int64_t>(kQueries) * 300 * 3 / 4);
}

TEST(AnnIndexTest, FullProbeMatchesExactSearchExactly) {
  data::WorldConfig config;
  config.seed = 31;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 80);
  const int dim = world.truth.dim;
  std::vector<float> item_vectors = Flatten(world.truth.item_vecs);

  retrieval::ExactIndex exact(item_vectors, dim);
  retrieval::AnnIndex ann =
      retrieval::AnnIndex::Build(item_vectors, dim, {});
  for (int q = 0; q < 20; ++q) {
    const float* query = world.truth.user_vecs[q].data();
    std::vector<core::ScoredItem> truth = exact.Search(query, 10, 0, nullptr);
    // Probing every list degenerates to exact search: same items, same
    // order, same scores.
    std::vector<core::ScoredItem> full =
        ann.Search(query, 10, ann.num_lists(), nullptr);
    ASSERT_EQ(full.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(full[i].item, truth[i].item);
      EXPECT_DOUBLE_EQ(full[i].score, truth[i].score);
    }
  }
}

TEST(AnnIndexTest, TinyCatalogClampsListsAndStillServes) {
  // 3 items, 16 requested lists: clamps to 3 and answers fine.
  std::vector<float> vectors = {1, 0, 0, 1, 1, 1};
  retrieval::AnnIndex ann = retrieval::AnnIndex::Build(vectors, 2, {});
  EXPECT_EQ(ann.num_lists(), 3);
  const float query[2] = {1.0f, 0.0f};
  std::vector<core::ScoredItem> items =
      ann.Search(query, 10, /*nprobe=*/16, nullptr);
  EXPECT_EQ(items.size(), 3u);
}

TEST(AnnIndexTest, SameSeedBuildsAreByteIdentical) {
  data::WorldConfig config;
  config.seed = 29;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 120);
  std::vector<float> item_vectors = Flatten(world.truth.item_vecs);

  retrieval::AnnIndex::Options options;
  options.num_lists = 8;
  retrieval::IndexArtifact a = retrieval::BuildArtifactFromFactors(
      0, item_vectors, item_vectors, world.truth.dim, 25, 0.85, options);
  retrieval::IndexArtifact b = retrieval::BuildArtifactFromFactors(
      0, item_vectors, item_vectors, world.truth.dim, 25, 0.85, options);
  const std::string bytes_a = a.Serialize();
  EXPECT_EQ(bytes_a, b.Serialize());

  // Round-trip re-serializes to the same bytes, too.
  StatusOr<retrieval::IndexArtifact> decoded =
      retrieval::IndexArtifact::Deserialize(bytes_a);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->Serialize(), bytes_a);
}

TEST(IndexArtifactTest, RejectsTruncatedAndMangledEncodings) {
  const retrieval::IndexArtifact artifact = ToyArtifact(0, 12);
  const std::string bytes = artifact.Serialize();
  ASSERT_TRUE(retrieval::IndexArtifact::Deserialize(bytes).ok());

  // Any strict prefix is kDataLoss, never a crash or a partial artifact.
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    StatusOr<retrieval::IndexArtifact> truncated =
        retrieval::IndexArtifact::Deserialize(bytes.substr(0, cut));
    EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss)
        << "prefix of " << cut << " bytes";
  }

  // Wrong magic (a model file staged at the index path, say).
  std::string mangled = bytes;
  mangled[0] ^= 0x5a;
  EXPECT_EQ(retrieval::IndexArtifact::Deserialize(mangled).status().code(),
            StatusCode::kDataLoss);

  // Trailing garbage is also rejected: the frame must parse exactly.
  EXPECT_EQ(retrieval::IndexArtifact::Deserialize(bytes + "x").status().code(),
            StatusCode::kDataLoss);
}

TEST(IndexArtifactTest, FuzzTruncationsBitFlipsAndOverlengthNeverCrash) {
  // Fuzz-style hostile-input sweep, mirroring the BinaryReader fuzz test:
  // the index loader parses bytes staged by another process, so every
  // mutation must produce a clean non-ok Status — never a crash, hang, or
  // out-of-bounds read. A decode that happens to succeed must round-trip.
  const retrieval::IndexArtifact artifact = ToyArtifact(3, 24);
  const std::string good = artifact.Serialize();
  ASSERT_TRUE(retrieval::IndexArtifact::Deserialize(good).ok());

  auto decode = [](const std::string& bytes) {
    StatusOr<retrieval::IndexArtifact> decoded =
        retrieval::IndexArtifact::Deserialize(bytes);
    if (decoded.ok()) {
      // Anything accepted must be a faithful frame, not a lucky parse.
      EXPECT_EQ(decoded->Serialize(), bytes);
    }
  };

  // Every strict prefix (all truncation points, not just a sample).
  for (size_t len = 0; len < good.size(); ++len) {
    decode(good.substr(0, len));
  }

  Rng rng(987654);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = good;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    if (rng.Bernoulli(0.15)) {
      // Truncate to a random length.
      mutated.resize(rng.Uniform(mutated.size() + 1));
    } else if (rng.Bernoulli(0.15)) {
      // Overlength frame: pad with random garbage past the real payload.
      const size_t pad = 1 + rng.Uniform(64);
      for (size_t i = 0; i < pad; ++i) {
        mutated.push_back(static_cast<char>(rng.Uniform(256)));
      }
    }
    decode(mutated);
  }
}

// --- Reader: version chain, corruption, serving ---------------------------

TEST(OnlineRetrievalReaderTest, VersionChainStageActivateRollbackDiscard) {
  retrieval::OnlineRetrievalReader::Options options;
  options.top_k = 5;
  options.retained_versions = 2;
  retrieval::OnlineRetrievalReader reader(options);

  EXPECT_EQ(reader.RetailerVersion(7), 0);
  EXPECT_EQ(reader.ServeContext(7, {{0, ActionType::kView}}).status().code(),
            StatusCode::kNotFound);

  const int64_t v1 = reader.StageArtifact(7, ToyArtifact(7, 10));
  EXPECT_EQ(v1, 1);
  // Staged but not active: the retailer still serves nothing.
  EXPECT_EQ(reader.RetailerVersion(7), 0);
  ASSERT_TRUE(reader.ActivateVersion(7, v1).ok());
  EXPECT_EQ(reader.RetailerVersion(7), 1);

  StatusOr<std::vector<core::ScoredItem>> items =
      reader.ServeContext(7, {{0, ActionType::kView}});
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items->size(), 5u);
  // Highest-index items first (toy geometry), and never the context item.
  EXPECT_EQ((*items)[0].item, 9);
  for (const core::ScoredItem& item : *items) EXPECT_NE(item.item, 0);

  const int64_t v2 = reader.StageArtifact(7, ToyArtifact(7, 12));
  ASSERT_TRUE(reader.ActivateVersion(7, v2).ok());
  EXPECT_EQ(reader.RetailerVersion(7), 2);

  // Rollback is a pointer flip to a still-resident version.
  ASSERT_TRUE(reader.RollbackRetailer(7, v1).ok());
  EXPECT_EQ(reader.RetailerVersion(7), 1);
  // The active version cannot be discarded; a staged one can.
  EXPECT_EQ(reader.DiscardVersion(7, v1).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(reader.DiscardVersion(7, v2).ok());
  EXPECT_EQ(reader.DiscardVersion(7, v2).code(), StatusCode::kNotFound);
  EXPECT_EQ(reader.ActivateVersion(7, 99).code(), StatusCode::kNotFound);

  // Retention: with retained_versions = 2, old non-active versions are
  // evicted as the chain advances, but the active version never is.
  const int64_t v3 = reader.StageArtifact(7, ToyArtifact(7, 10));
  ASSERT_TRUE(reader.ActivateVersion(7, v3).ok());
  const int64_t v4 = reader.StageArtifact(7, ToyArtifact(7, 11));
  ASSERT_TRUE(reader.ActivateVersion(7, v4).ok());
  reader.StageArtifact(7, ToyArtifact(7, 12));  // evicts v1 and v3
  std::vector<int64_t> retained = reader.RetainedVersions(7);
  EXPECT_EQ(retained.size(), 2u);
  EXPECT_TRUE(std::count(retained.begin(), retained.end(), v4) > 0);
  EXPECT_EQ(reader.RetailerVersion(7), v4);
}

TEST(OnlineRetrievalReaderTest, CorruptArtifactRejectedPreviousKeepsServing) {
  sfs::MemFileSystem fs;
  sfs::ReliableIoCounters io;
  retrieval::OnlineRetrievalReader reader({});
  const std::string path = retrieval::IndexArtifactPath(3);

  ASSERT_TRUE(sfs::WriteChecksummedFile(&fs, path,
                                        ToyArtifact(3, 10).Serialize())
                  .ok());
  StatusOr<int64_t> v1 = reader.StageFromFile(3, fs, path, {}, &io);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_TRUE(reader.ActivateVersion(3, *v1).ok());

  // A torn frame (raw bytes, no checksummed framing) fails the CRC gate.
  ASSERT_TRUE(fs.Write(path, "not a checksummed frame").ok());
  EXPECT_EQ(reader.StageFromFile(3, fs, path, {}, &io).status().code(),
            StatusCode::kDataLoss);

  // A well-framed blob whose payload is not an artifact passes the CRC
  // but fails artifact validation — and is counted as a corruption.
  const int64_t detected_before = io.corruptions_detected.load();
  ASSERT_TRUE(
      sfs::WriteChecksummedFile(&fs, path, "CRC-clean but meaningless").ok());
  EXPECT_EQ(reader.StageFromFile(3, fs, path, {}, &io).status().code(),
            StatusCode::kDataLoss);
  EXPECT_GT(io.corruptions_detected.load(), detected_before);

  // Through it all, v1 never stopped serving.
  EXPECT_EQ(reader.RetailerVersion(3), *v1);
  EXPECT_TRUE(reader.ServeContext(3, {{0, ActionType::kView}}).ok());
  EXPECT_EQ(reader.RetainedVersions(3).size(), 1u);
}

TEST(OnlineRetrievalReaderTest, CountsQueriesAndCandidatesInRegistry) {
  obs::MetricRegistry metrics;
  retrieval::OnlineRetrievalReader::Options options;
  options.top_k = 3;
  options.nprobe = 2;
  retrieval::OnlineRetrievalReader reader(options, &metrics);
  const int64_t v = reader.StageArtifact(1, ToyArtifact(1, 20));
  ASSERT_TRUE(reader.ActivateVersion(1, v).ok());

  ASSERT_TRUE(reader.ServeContext(1, {{2, ActionType::kView}}).ok());
  EXPECT_EQ(reader.ServeContext(2, {{0, ActionType::kView}}).status().code(),
            StatusCode::kNotFound);

  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("retrieval_queries_total",
                                  {{"outcome", "ok"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue("retrieval_queries_total",
                                  {{"outcome", "error"}}),
            1);
}

// --- Frontend A/B route ---------------------------------------------------

struct FrontendAbFixture {
  serving::RecommendationStore store;
  retrieval::OnlineRetrievalReader reader{[] {
    retrieval::OnlineRetrievalReader::Options options;
    options.top_k = 3;
    return options;
  }()};
  obs::MetricRegistry metrics;

  FrontendAbFixture() {
    core::ItemRecommendations recs;
    recs.query = 0;
    recs.view_based = {{1, 2.0}, {2, 0.5}, {3, -1.0}};
    store.LoadRetailer(1, {recs});
    const int64_t v = reader.StageArtifact(1, ToyArtifact(1, 20));
    SIGCHECK(reader.ActivateVersion(1, v).ok());
  }

  serving::Frontend::Options AbOptions(
      double fraction, const serving::ServingReader* retrieval) {
    serving::Frontend::Options options;
    options.retrieval_store = retrieval;
    options.retrieval_ab_fraction = fraction;
    return options;
  }

  serving::RecommendationRequest Request(data::UserIndex user) {
    serving::RecommendationRequest request;
    request.retailer = 1;
    request.user = user;
    request.context = {{0, ActionType::kView}};
    return request;
  }
};

TEST(FrontendRetrievalAbTest, FullFractionServesFromRetrievalPlane) {
  FrontendAbFixture f;
  serving::Frontend frontend(&f.store, nullptr, &f.metrics, nullptr,
                             f.AbOptions(1.0, &f.reader));
  auto response = frontend.Handle(f.Request(42));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->source, serving::ServingSource::kOnlineRetrieval);
  EXPECT_FALSE(response->degraded);
  EXPECT_EQ(response->batch_version, 1);
  // Toy geometry: the ANN plane returns the highest-index items, which
  // the materialized batch (items 1..3) never serves.
  ASSERT_EQ(response->items.size(), 3u);
  EXPECT_EQ(response->items[0].item, 19);

  obs::RegistrySnapshot snapshot = f.metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_requests_total",
                                  {{"path", "online_retrieval"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue("serving_requests_total",
                                  {{"path", "materialized"}}),
            0);
}

TEST(FrontendRetrievalAbTest, ZeroFractionNeverLeavesMaterializedPlane) {
  FrontendAbFixture f;
  serving::Frontend frontend(&f.store, nullptr, &f.metrics, nullptr,
                             f.AbOptions(0.0, &f.reader));
  for (data::UserIndex user = 0; user < 20; ++user) {
    auto response = frontend.Handle(f.Request(user));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->source, serving::ServingSource::kStore);
  }
  EXPECT_EQ(f.metrics.Snapshot().CounterValue(
                "serving_requests_total", {{"path", "online_retrieval"}}),
            0);
}

TEST(FrontendRetrievalAbTest, SplitIsStickyAndRoughlyProportional) {
  FrontendAbFixture f;
  serving::Frontend frontend(&f.store, nullptr, &f.metrics, nullptr,
                             f.AbOptions(0.5, &f.reader));
  std::set<data::UserIndex> arm;
  for (data::UserIndex user = 0; user < 200; ++user) {
    auto response = frontend.Handle(f.Request(user));
    ASSERT_TRUE(response.ok());
    if (response->source == serving::ServingSource::kOnlineRetrieval) {
      arm.insert(user);
    }
  }
  // Half-ish of users land in the arm, and membership is sticky.
  EXPECT_GT(arm.size(), 60u);
  EXPECT_LT(arm.size(), 140u);
  for (data::UserIndex user : {data::UserIndex{0}, data::UserIndex{57},
                               data::UserIndex{123}}) {
    auto again = frontend.Handle(f.Request(user));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->source == serving::ServingSource::kOnlineRetrieval,
              arm.count(user) > 0)
        << "user " << user;
  }
}

// A retrieval plane that advertises an active version but fails every
// lookup — the shape of a reader whose artifact pointer just got yanked.
class FailingReader : public serving::ServingReader {
 public:
  StatusOr<std::vector<core::ScoredItem>> ServeContext(
      data::RetailerId retailer, const core::Context& context) const override {
    (void)retailer;
    (void)context;
    return UnavailableError("retrieval plane down");
  }
  int64_t RetailerVersion(data::RetailerId retailer) const override {
    (void)retailer;
    return 5;
  }
};

TEST(FrontendRetrievalAbTest, RetrievalFailureFallsBackToStoreSameRequest) {
  FrontendAbFixture f;
  FailingReader failing;
  serving::Frontend frontend(&f.store, nullptr, &f.metrics, nullptr,
                             f.AbOptions(1.0, &failing));
  auto response = frontend.Handle(f.Request(42));
  ASSERT_TRUE(response.ok());
  // The store answered; the response is NOT degraded — the materialized
  // plane is a healthy serving path, not a ladder rung.
  EXPECT_EQ(response->source, serving::ServingSource::kStore);
  EXPECT_FALSE(response->degraded);
  EXPECT_EQ(response->items[0].item, 1);

  obs::RegistrySnapshot snapshot = f.metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_retrieval_fallbacks_total"), 1);
  EXPECT_EQ(snapshot.CounterValue("serving_requests_total",
                                  {{"path", "materialized"}}),
            1);
}

TEST(FrontendRetrievalAbTest, RolledBackIndexReturnsArmToMaterialized) {
  FrontendAbFixture f;
  serving::Frontend frontend(&f.store, nullptr, &f.metrics, nullptr,
                             f.AbOptions(1.0, &f.reader));
  ASSERT_EQ(frontend.Handle(f.Request(42))->source,
            serving::ServingSource::kOnlineRetrieval);
  // Roll the index back entirely: active version drops to... well,
  // there's only v1, so simulate by staging nothing and discarding via a
  // fresh retailer with no index — retailer 2 has no artifact at all.
  serving::RecommendationRequest request = f.Request(42);
  request.retailer = 2;
  core::ItemRecommendations recs;
  recs.query = 0;
  recs.view_based = {{1, 2.0}};
  f.store.LoadRetailer(2, {recs});
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  // No active index version for retailer 2: the arm never engages.
  EXPECT_EQ(response->source, serving::ServingSource::kStore);
}

// --- Service end-to-end: build, canary-gate, promote, roll back -----------

struct RetrievalServiceFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 29;
    return config;
  }()};
  std::vector<data::RetailerWorld> worlds = {
      generator.GenerateRetailer(0, 50), generator.GenerateRetailer(1, 90)};

  pipeline::SigmundService::Options Options() const {
    pipeline::SigmundService::Options options;
    options.sweep.grid.factors = {4, 8};
    options.sweep.grid.lambdas_v = {0.1, 0.01};
    options.sweep.grid.lambdas_vc = {0.01};
    options.sweep.grid.sweep_taxonomy = false;
    options.sweep.grid.sweep_brand = false;
    options.sweep.grid.num_epochs = 3;
    options.sweep.incremental_top_k = 2;
    options.training.num_map_tasks = 4;
    options.training.max_parallel_tasks = 2;
    options.training.checkpoint_interval_seconds = 0.0;
    options.inference.inference.top_k = 5;
    options.canary.enabled = true;
    options.canary.canary_fraction = 0.5;
    options.canary.min_relative_ctr = 0.5;
    options.canary.early_stop_z = 4.0;
    options.canary.seed = 11;
    options.canary.oracle = [this](data::RetailerId id) {
      return &worlds[id].truth;
    };
    options.retrieval.enabled = true;
    options.retrieval.ann.num_lists = 8;
    options.retrieval.reader.top_k = 5;
    options.retrieval.reader.nprobe = 4;
    return options;
  }
};

TEST(ServiceRetrievalTest, DailyRunBuildsGatesAndActivatesIndexes) {
  RetrievalServiceFixture f;
  sfs::MemFileSystem fs;
  pipeline::SigmundService service(&fs, f.Options());
  service.UpsertRetailer(&f.worlds[0].data);
  service.UpsertRetailer(&f.worlds[1].data);

  StatusOr<pipeline::DailyReport> day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  EXPECT_EQ(day1->retrieval_indexes_built, 2);
  EXPECT_EQ(day1->retrieval_rollbacks, 0);
  EXPECT_EQ(day1->corrupt_indexes_rejected, 0);
  // A healthy index passes the retrieval canary against the live
  // materialized plane and activates.
  EXPECT_EQ(day1->retrieval_promotions, 2);
  ASSERT_NE(service.retrieval_reader(), nullptr);
  EXPECT_EQ(service.retrieval_reader()->RetailerVersion(0), 1);
  EXPECT_EQ(service.retrieval_reader()->RetailerVersion(1), 1);

  // The active index answers queries.
  StatusOr<std::vector<core::ScoredItem>> items =
      service.retrieval_reader()->ServeContext(
          0, {{3, ActionType::kView}});
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  EXPECT_FALSE(items->empty());

  // The retrieval ladder is reported separately from the batch ladder.
  const std::string report = day1->ToString();
  EXPECT_NE(report.find("retrieval: indexes_built=2"), std::string::npos)
      << report;

  // Day 2 refreshes the index: the version chain advances.
  StatusOr<pipeline::DailyReport> day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok()) << day2.status().ToString();
  EXPECT_EQ(day2->retrieval_indexes_built, 2);
  EXPECT_EQ(service.retrieval_reader()->RetailerVersion(0), 2);
}

TEST(ServiceRetrievalTest, DegradedIndexRollsBackAndNeverServes) {
  RetrievalServiceFixture f;
  sfs::MemFileSystem fs;
  pipeline::SigmundService::Options options = f.Options();
  // Enough simulated traffic that even the small retailer's control arm
  // clears min_clicks — below that the canary promotes as noise.
  options.canary.max_impressions = 2400;
  // Degrade every built index: negating the query-side factors makes the
  // ANN plane rank the model's *worst* items first — exactly the kind of
  // quality collapse only live signal can catch (CRC and offline MAP both
  // pass; the artifact is well-formed, just wrong).
  options.retrieval.build_hook_for_testing =
      [](data::RetailerId, retrieval::IndexArtifact* artifact) {
        for (float& v : artifact->context_vectors) v = -v;
      };
  pipeline::SigmundService service(&fs, options);
  service.UpsertRetailer(&f.worlds[0].data);
  service.UpsertRetailer(&f.worlds[1].data);

  StatusOr<pipeline::DailyReport> day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  EXPECT_EQ(day1->retrieval_indexes_built, 2);
  EXPECT_EQ(day1->retrieval_promotions, 0);
  EXPECT_EQ(day1->retrieval_rollbacks, 2);
  // The rolled-back index was discarded: no active version, nothing
  // resident, and the Frontend's A/B arm can never engage.
  EXPECT_EQ(service.retrieval_reader()->RetailerVersion(0), 0);
  EXPECT_EQ(service.retrieval_reader()->RetailerVersion(1), 0);
  EXPECT_TRUE(service.retrieval_reader()->RetainedVersions(0).empty());
  EXPECT_EQ(service.retrieval_reader()
                ->ServeContext(0, {{3, ActionType::kView}})
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_NE(day1->ToString().find("rollbacks=2"), std::string::npos);
}

}  // namespace
}  // namespace sigmund
