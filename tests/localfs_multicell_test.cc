#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/string_util.h"
#include "data/world_generator.h"
#include "pipeline/checkpoint.h"
#include "pipeline/sweep.h"
#include "pipeline/training_job.h"
#include "sfs/local_filesystem.h"
#include "sfs/mem_filesystem.h"

namespace sigmund {
namespace {

// --- LocalDirFileSystem ------------------------------------------------------

// A unique scratch directory per test run.
std::string ScratchRoot() {
  static int counter = 0;
  std::string root =
      StrFormat("/tmp/sigmund_localfs_test_%d_%d", ::getpid(), counter++);
  return root;
}

TEST(LocalDirFileSystemTest, EncodeDecodeRoundTrip) {
  for (const std::string& path :
       {std::string("models/r1/m001"), std::string("a b%c/d"),
        std::string("plain"), std::string("..//..")}) {
    std::string encoded = sfs::LocalDirFileSystem::Encode(path);
    // Encoded names are flat and shell-safe.
    EXPECT_EQ(encoded.find('/'), std::string::npos);
    StatusOr<std::string> decoded = sfs::LocalDirFileSystem::Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, path);
  }
  EXPECT_FALSE(sfs::LocalDirFileSystem::Decode("%zz").ok());
  EXPECT_FALSE(sfs::LocalDirFileSystem::Decode("%2").ok());
}

TEST(LocalDirFileSystemTest, WriteReadDeleteRenameList) {
  sfs::LocalDirFileSystem fs(ScratchRoot());
  ASSERT_TRUE(fs.Write("models/r1/ckpt", "payload").ok());
  ASSERT_TRUE(fs.Write("models/r1/best", "").ok());  // empty file
  ASSERT_TRUE(fs.Write("other/x", "y").ok());

  EXPECT_EQ(*fs.Read("models/r1/ckpt"), "payload");
  EXPECT_EQ(*fs.Read("models/r1/best"), "");
  EXPECT_EQ(*fs.FileSize("models/r1/ckpt"), 7);
  EXPECT_TRUE(fs.Exists("other/x"));
  EXPECT_FALSE(fs.Exists("nope"));
  EXPECT_EQ(fs.Read("nope").status().code(), StatusCode::kNotFound);

  EXPECT_EQ(*fs.List("models/"),
            (std::vector<std::string>{"models/r1/best", "models/r1/ckpt"}));

  ASSERT_TRUE(fs.Rename("models/r1/ckpt", "models/r1/final").ok());
  EXPECT_FALSE(fs.Exists("models/r1/ckpt"));
  EXPECT_EQ(*fs.Read("models/r1/final"), "payload");
  EXPECT_EQ(fs.Rename("gone", "x").code(), StatusCode::kNotFound);

  ASSERT_TRUE(fs.Delete("other/x").ok());
  EXPECT_EQ(fs.Delete("other/x").code(), StatusCode::kNotFound);
}

TEST(LocalDirFileSystemTest, PersistsAcrossInstances) {
  std::string root = ScratchRoot();
  {
    sfs::LocalDirFileSystem fs(root);
    ASSERT_TRUE(fs.Write("durable", "still here").ok());
  }
  sfs::LocalDirFileSystem fs2(root);
  EXPECT_EQ(*fs2.Read("durable"), "still here");
}

TEST(LocalDirFileSystemTest, BinaryPayloadSafe) {
  sfs::LocalDirFileSystem fs(ScratchRoot());
  std::string binary;
  for (int c = 0; c < 256; ++c) binary.push_back(static_cast<char>(c));
  ASSERT_TRUE(fs.Write("bin", binary).ok());
  EXPECT_EQ(*fs.Read("bin"), binary);
}

TEST(LocalDirFileSystemTest, WorksAsCheckpointBackend) {
  // The pipeline's checkpoint flow (write tmp + rename + list) works on
  // the on-disk implementation exactly as on the in-memory one.
  data::WorldConfig config;
  config.seed = 3;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 40);
  core::HyperParams params;
  params.num_factors = 4;
  core::BprModel model(&world.data.catalog, params);
  Rng rng(1);
  model.InitRandom(&rng);

  sfs::LocalDirFileSystem fs(ScratchRoot());
  SimClock clock;
  pipeline::CheckpointManager manager(&fs, &clock, "ck/r0", 1.0);
  ASSERT_TRUE(manager.ForceCheckpoint(model, 3).ok());
  ASSERT_TRUE(manager.ForceCheckpoint(model, 4).ok());
  EXPECT_EQ(fs.List("ck/r0/ckpt.")->size(), 1u);  // keep-latest GC
  auto restored = manager.Restore(&world.data.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->epoch, 4);
}

// --- MultiCellTrainingJob ------------------------------------------------------

struct MultiCellFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 19;
    return config;
  }()};
  data::RetailerWorld r0 = generator.GenerateRetailer(0, 50);
  data::RetailerWorld r1 = generator.GenerateRetailer(1, 90);
  data::RetailerWorld r2 = generator.GenerateRetailer(2, 60);
  pipeline::RetailerRegistry registry;
  sfs::MemFileSystem fs;

  MultiCellFixture() {
    registry.Upsert(&r0.data);
    registry.Upsert(&r1.data);
    registry.Upsert(&r2.data);
  }

  std::vector<pipeline::ConfigRecord> Plan() {
    pipeline::SweepPlanner::Options options;
    options.grid.factors = {4, 8};
    options.grid.lambdas_v = {0.01};
    options.grid.lambdas_vc = {0.01};
    options.grid.sweep_taxonomy = false;
    options.grid.sweep_brand = false;
    options.grid.num_epochs = 2;
    pipeline::SweepPlanner planner(options);
    return planner.PlanFullSweep(registry);
  }
};

TEST(MultiCellTrainingJobTest, RoutesByDataHomeAndMergesResults) {
  MultiCellFixture f;
  pipeline::MultiCellTrainingJob::Options options;
  options.cells = {"cell-a", "cell-b"};
  options.per_cell.num_map_tasks = 2;
  options.per_cell.max_parallel_tasks = 1;
  options.per_cell.checkpoint_interval_seconds = 0;
  pipeline::MultiCellTrainingJob job(&f.fs, &f.registry, options);

  std::map<data::RetailerId, std::string> homes = {
      {0, "cell-a"}, {1, "cell-b"}};  // retailer 2 unplaced -> cell-a
  auto results = job.Run(f.Plan(), homes);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 6u);  // 3 retailers x 2 configs
  std::set<std::string> keys;
  for (const pipeline::ConfigRecord& record : *results) {
    EXPECT_TRUE(record.trained);
    EXPECT_TRUE(keys.insert(record.Key()).second);
    EXPECT_TRUE(f.fs.Exists(record.model_path));
  }
  // Sorted merged output.
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_LT((*results)[i - 1].Key(), (*results)[i].Key());
  }
  // Per-cell reports: cell-a trained retailers 0 and 2 (4 models),
  // cell-b trained retailer 1 (2 models).
  ASSERT_EQ(job.cell_reports().size(), 2u);
  EXPECT_EQ(job.cell_reports()[0].cell, "cell-a");
  EXPECT_EQ(job.cell_reports()[0].models_trained, 4);
  EXPECT_EQ(job.cell_reports()[1].cell, "cell-b");
  EXPECT_EQ(job.cell_reports()[1].models_trained, 2);
}

TEST(MultiCellTrainingJobTest, MatchesSingleJobResults) {
  MultiCellFixture f;
  std::vector<pipeline::ConfigRecord> plan = f.Plan();

  pipeline::TrainingJob::Options single_options;
  single_options.num_map_tasks = 2;
  single_options.max_parallel_tasks = 1;
  single_options.checkpoint_interval_seconds = 0;
  pipeline::TrainingJob single(&f.fs, &f.registry, single_options);
  auto single_results = single.Run(plan);
  ASSERT_TRUE(single_results.ok());

  pipeline::MultiCellTrainingJob::Options options;
  options.cells = {"cell-a", "cell-b", "cell-c"};
  options.per_cell = single_options;
  pipeline::MultiCellTrainingJob multi(&f.fs, &f.registry, options);
  std::map<data::RetailerId, std::string> homes = {
      {0, "cell-a"}, {1, "cell-b"}, {2, "cell-c"}};
  auto multi_results = multi.Run(plan, homes);
  ASSERT_TRUE(multi_results.ok());

  // Training is deterministic per (record, single-thread), so the metrics
  // agree regardless of how the job was partitioned across cells.
  ASSERT_EQ(single_results->size(), multi_results->size());
  std::map<std::string, double> single_map;
  for (const pipeline::ConfigRecord& record : *single_results) {
    single_map[record.Key()] = record.map_at_10;
  }
  for (const pipeline::ConfigRecord& record : *multi_results) {
    EXPECT_DOUBLE_EQ(single_map[record.Key()], record.map_at_10)
        << record.Key();
  }
}

TEST(MultiCellTrainingJobTest, NoCellsRejected) {
  MultiCellFixture f;
  pipeline::MultiCellTrainingJob job(&f.fs, &f.registry, {});
  EXPECT_EQ(job.Run(f.Plan(), {}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sigmund
