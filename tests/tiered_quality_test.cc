#include <gtest/gtest.h>

#include "data/world_generator.h"
#include "pipeline/quality_monitor.h"
#include "pipeline/service.h"
#include "serving/tiered_store.h"
#include "sfs/mem_filesystem.h"

namespace sigmund {
namespace {

// --- TieredStore ------------------------------------------------------------

core::ItemRecommendations MakeRecs(data::ItemIndex query) {
  core::ItemRecommendations recs;
  recs.query = query;
  recs.view_based = {{query + 1, 0.9}};
  recs.purchase_based = {{query + 2, 0.8}};
  return recs;
}

// 10 items; items 0..2 are "popular".
struct TieredFixture {
  sfs::MemFileSystem fs;
  std::vector<core::ItemRecommendations> recs;
  std::vector<int64_t> popularity;

  TieredFixture() {
    for (int i = 0; i < 10; ++i) {
      recs.push_back(MakeRecs(i));
      popularity.push_back(i < 3 ? 100 - i : 1);
    }
  }

  serving::TieredStore::Options SmallOptions() {
    serving::TieredStore::Options options;
    options.hot_fraction = 0.3;  // pins items 0..2
    options.cache_capacity = 2;
    return options;
  }
};

TEST(TieredStoreTest, HotItemsServedFromMemory) {
  TieredFixture f;
  serving::TieredStore store(&f.fs, f.SmallOptions());
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  auto result =
      store.Lookup(1, 0, serving::RecommendationKind::kViewBased);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].item, 1);
  EXPECT_EQ(store.stats().memory_hits, 1);
  EXPECT_EQ(store.stats().flash_reads, 0);
}

TEST(TieredStoreTest, ColdItemsReadFlashThenCache) {
  TieredFixture f;
  serving::TieredStore store(&f.fs, f.SmallOptions());
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  // First access: flash read.
  auto a = store.Lookup(1, 7, serving::RecommendationKind::kViewBased);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0].item, 8);
  EXPECT_EQ(store.stats().flash_reads, 1);
  // Second access: LRU hit.
  auto b = store.Lookup(1, 7, serving::RecommendationKind::kPurchaseBased);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)[0].item, 9);
  EXPECT_EQ(store.stats().cache_hits, 1);
  EXPECT_EQ(store.stats().flash_reads, 1);
  EXPECT_GT(store.stats().simulated_flash_micros, 0);
}

TEST(TieredStoreTest, LruEvictsLeastRecentlyUsed) {
  TieredFixture f;
  serving::TieredStore store(&f.fs, f.SmallOptions());  // capacity 2
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  ASSERT_TRUE(store.Lookup(1, 5, serving::RecommendationKind::kViewBased).ok());
  ASSERT_TRUE(store.Lookup(1, 6, serving::RecommendationKind::kViewBased).ok());
  ASSERT_TRUE(store.Lookup(1, 7, serving::RecommendationKind::kViewBased).ok());
  // 5 was evicted; 7 and 6 cached.
  ASSERT_TRUE(store.Lookup(1, 5, serving::RecommendationKind::kViewBased).ok());
  EXPECT_EQ(store.stats().flash_reads, 4);  // 5,6,7,5-again
  ASSERT_TRUE(store.Lookup(1, 7, serving::RecommendationKind::kViewBased).ok());
  EXPECT_EQ(store.stats().cache_hits, 1);
}

TEST(TieredStoreTest, ReloadInvalidatesCache) {
  TieredFixture f;
  serving::TieredStore store(&f.fs, f.SmallOptions());
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  ASSERT_TRUE(store.Lookup(1, 8, serving::RecommendationKind::kViewBased).ok());
  // New batch with different lists.
  std::vector<core::ItemRecommendations> fresh = f.recs;
  fresh[8].view_based = {{0, 1.0}};
  ASSERT_TRUE(store.LoadRetailer(1, fresh, f.popularity).ok());
  auto result =
      store.Lookup(1, 8, serving::RecommendationKind::kViewBased);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].item, 0);  // not the stale cached value
}

TEST(TieredStoreTest, FootprintReflectsHotFraction) {
  TieredFixture f;
  serving::TieredStore store(&f.fs, f.SmallOptions());
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  auto footprint = store.RetailerFootprint(1);
  ASSERT_TRUE(footprint.ok());
  EXPECT_EQ(footprint->hot_items, 3);
  EXPECT_EQ(footprint->flash_items, 10);
  EXPECT_FALSE(store.RetailerFootprint(2).ok());
}

TEST(TieredStoreTest, RepeatedReloadsKeepFlashFileCountBounded) {
  TieredFixture f;
  serving::TieredStore store(&f.fs, f.SmallOptions());
  for (int reload = 0; reload < 8; ++reload) {
    ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
    // Stale versions are GC'd wholesale: the flash tier never holds more
    // than one file per catalog item.
    StatusOr<std::vector<std::string>> files =
        f.fs.List(serving::TieredStore::FlashRoot(1));
    ASSERT_TRUE(files.ok());
    EXPECT_EQ(files->size(), f.recs.size()) << "after reload " << reload;
  }
  // And the surviving files are the live version's: cold lookups work.
  auto result = store.Lookup(1, 7, serving::RecommendationKind::kViewBased);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].item, 8);
}

// Deletes that fail transiently are retried on the next load instead of
// leaking stale files forever.
class FlakyDeleteFs : public sfs::SharedFileSystem {
 public:
  explicit FlakyDeleteFs(sfs::SharedFileSystem* base) : base_(base) {}
  bool fail_deletes = false;

  Status Write(const std::string& path, const std::string& data) override {
    return base_->Write(path, data);
  }
  StatusOr<std::string> Read(const std::string& path) const override {
    return base_->Read(path);
  }
  Status Delete(const std::string& path) override {
    if (fail_deletes) return UnavailableError("flaky delete");
    return base_->Delete(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const override {
    return base_->List(prefix);
  }
  StatusOr<int64_t> FileSize(const std::string& path) const override {
    return base_->FileSize(path);
  }

 private:
  sfs::SharedFileSystem* base_;
};

TEST(TieredStoreTest, FailedGcDeletesAreRetriedOnNextLoad) {
  TieredFixture f;
  FlakyDeleteFs fs(&f.fs);
  serving::TieredStore store(&fs, f.SmallOptions());
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());

  // The reload's GC pass can't delete anything: both versions linger.
  fs.fail_deletes = true;
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  StatusOr<std::vector<std::string>> files =
      f.fs.List(serving::TieredStore::FlashRoot(1));
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 2 * f.recs.size());

  // Storage heals; the next load drains the pending GC queue too.
  fs.fail_deletes = false;
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  files = f.fs.List(serving::TieredStore::FlashRoot(1));
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), f.recs.size());
}

TEST(TieredStoreTest, MissingRetailerOrItem) {
  TieredFixture f;
  serving::TieredStore store(&f.fs, f.SmallOptions());
  EXPECT_EQ(store.Lookup(1, 0, serving::RecommendationKind::kViewBased)
                .status()
                .code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store.LoadRetailer(1, f.recs, f.popularity).ok());
  EXPECT_EQ(store.Lookup(1, 99, serving::RecommendationKind::kViewBased)
                .status()
                .code(),
            StatusCode::kNotFound);
}

// --- QualityMonitor -----------------------------------------------------------

TEST(QualityMonitorTest, FirstObservationAlwaysAccepted) {
  pipeline::QualityMonitor monitor;
  EXPECT_EQ(monitor.Record(1, 0.0),
            pipeline::QualityMonitor::Verdict::kFirstObservation);
  EXPECT_EQ(monitor.days_observed(1), 1);
}

TEST(QualityMonitorTest, StableQualityIsOk) {
  pipeline::QualityMonitor monitor;
  monitor.Record(1, 0.30);
  EXPECT_EQ(monitor.Record(1, 0.28), pipeline::QualityMonitor::Verdict::kOk);
  EXPECT_EQ(monitor.Record(1, 0.33), pipeline::QualityMonitor::Verdict::kOk);
  EXPECT_DOUBLE_EQ(monitor.TrailingBest(1), 0.33);
}

TEST(QualityMonitorTest, LargeDropFlagged) {
  pipeline::QualityMonitor monitor;
  monitor.Record(1, 0.30);
  EXPECT_EQ(monitor.Record(1, 0.10),
            pipeline::QualityMonitor::Verdict::kRegressed);
  // Regressed observations still enter history.
  EXPECT_EQ(monitor.days_observed(1), 2);
}

TEST(QualityMonitorTest, NoiseFloorPassesEverything) {
  pipeline::QualityMonitor::Options options;
  options.min_meaningful_map = 0.05;
  pipeline::QualityMonitor monitor(options);
  monitor.Record(1, 0.004);
  // 0.001 is an 75% drop but the baseline is noise.
  EXPECT_EQ(monitor.Record(1, 0.001), pipeline::QualityMonitor::Verdict::kOk);
}

TEST(QualityMonitorTest, HistoryWindowAgesOut) {
  pipeline::QualityMonitor::Options options;
  options.history_days = 2;
  pipeline::QualityMonitor monitor(options);
  monitor.Record(1, 0.40);
  monitor.Record(1, 0.15);  // regressed vs 0.40
  monitor.Record(1, 0.15);  // 0.40 still in window? history=[0.40,0.15] ->
                            // regressed again; now window [0.15, 0.15]
  // The old plateau has aged out: 0.15 is the new normal.
  EXPECT_EQ(monitor.Record(1, 0.15), pipeline::QualityMonitor::Verdict::kOk);
}

// Plateau behavior: a *persistent* regression keeps getting flagged only
// while the old peak is inside the trailing window. Once the window slides
// past it, the lower plateau is the new baseline — the guard protects
// against sudden drops, not against a world that genuinely got harder.
TEST(QualityMonitorTest, PersistentRegressionBecomesNewBaseline) {
  pipeline::QualityMonitor::Options options;
  options.history_days = 3;
  options.max_relative_drop = 0.5;
  pipeline::QualityMonitor monitor(options);

  monitor.Record(1, 0.40);
  monitor.Record(1, 0.42);
  monitor.Record(1, 0.41);
  EXPECT_DOUBLE_EQ(monitor.TrailingBest(1), 0.42);

  // The metric collapses to 0.12 and stays there. While any old-peak day
  // is still in the 3-day window, every new day is flagged...
  EXPECT_EQ(monitor.Record(1, 0.12),
            pipeline::QualityMonitor::Verdict::kRegressed);  // best is .42
  EXPECT_EQ(monitor.Record(1, 0.12),
            pipeline::QualityMonitor::Verdict::kRegressed);  // .42 in window
  EXPECT_EQ(monitor.Record(1, 0.12),
            pipeline::QualityMonitor::Verdict::kRegressed);  // .41 in window
  // ...and once the window holds nothing but the plateau, 0.12 is normal.
  EXPECT_EQ(monitor.Record(1, 0.12), pipeline::QualityMonitor::Verdict::kOk);
  EXPECT_DOUBLE_EQ(monitor.TrailingBest(1), 0.12);
  // Recovery from the plateau is of course fine too.
  EXPECT_EQ(monitor.Record(1, 0.35), pipeline::QualityMonitor::Verdict::kOk);
}

TEST(QualityMonitorTest, RetailersIndependent) {
  pipeline::QualityMonitor monitor;
  monitor.Record(1, 0.5);
  EXPECT_EQ(monitor.Record(2, 0.01),
            pipeline::QualityMonitor::Verdict::kFirstObservation);
  EXPECT_EQ(monitor.Record(2, 0.012), pipeline::QualityMonitor::Verdict::kOk);
}

// --- Service integration -------------------------------------------------------

TEST(QualityGuardServiceTest, RegressedRetailerKeepsPreviousBatch) {
  data::WorldConfig config;
  config.seed = 47;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 80);

  sfs::MemFileSystem fs;
  pipeline::SigmundService::Options options;
  options.sweep.grid.factors = {8};
  options.sweep.grid.lambdas_v = {0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 4;
  options.training.num_map_tasks = 2;
  options.training.max_parallel_tasks = 1;
  options.guard_quality = true;
  options.quality.max_relative_drop = 0.5;

  pipeline::SigmundService service(&fs, options);
  service.UpsertRetailer(&world.data);
  auto day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok());
  EXPECT_EQ(day1->quality_regressions, 0);
  EXPECT_EQ(service.store().RetailerVersion(0), 1);
  ASSERT_GT(day1->mean_best_map, 0.02);

  // Disaster: the retailer's feed breaks and histories collapse to single
  // events (no hold-out, no signal) -> best MAP crashes to 0.
  data::RetailerData broken;
  broken.id = 0;
  broken.catalog = world.data.catalog;
  broken.histories.resize(world.data.num_users());
  for (int u = 0; u < world.data.num_users(); ++u) {
    if (!world.data.histories[u].empty()) {
      broken.histories[u] = {world.data.histories[u].front()};
    }
  }
  service.UpsertRetailer(&broken);
  auto day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok());
  EXPECT_EQ(day2->quality_regressions, 1);
  // The store kept day 1's batch (version unchanged).
  EXPECT_EQ(service.store().RetailerVersion(0), 1);
  EXPECT_EQ(service.quality_monitor().days_observed(0), 2);
}

TEST(QualityGuardServiceTest, GuardCanBeDisabled) {
  data::WorldConfig config;
  config.seed = 48;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 60);

  sfs::MemFileSystem fs;
  pipeline::SigmundService::Options options;
  options.sweep.grid.factors = {8};
  options.sweep.grid.lambdas_v = {0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 3;
  options.training.num_map_tasks = 2;
  options.training.max_parallel_tasks = 1;
  options.guard_quality = false;

  pipeline::SigmundService service(&fs, options);
  service.UpsertRetailer(&world.data);
  ASSERT_TRUE(service.RunDaily().ok());
  auto day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok());
  EXPECT_EQ(day2->quality_regressions, 0);
  EXPECT_EQ(service.store().RetailerVersion(0), 2);  // always reloaded
}

}  // namespace
}  // namespace sigmund
