// Poisoned-feed chaos (DESIGN.md §12): a multi-retailer, multi-day run
// where the FeedCorruptor poisons specific retailer-days with four
// distinct corruption modes. The acceptance bar, end to end:
//
//   1. No corrupted feed's model or ANN index is ever promoted — the
//      poisoned retailer's serving version and retrieval version are
//      frozen at last-known-good for the whole quarantined stretch.
//   2. Every quarantined retailer still serves (zero failed serves).
//   3. A retailer whose feed is never poisoned ends the scenario with
//      recommendation bytes identical to a fault-free run.
//   4. Two same-seed poisoned runs are byte-identical, reports included.
//   5. Clean feeds release the quarantine and the pipeline resumes
//      warm-started (no full-grid cold start on the release day).

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "data/world_generator.h"
#include "dataqual/corruptor.h"
#include "pipeline/config_record.h"
#include "pipeline/service.h"
#include "retrieval/artifact.h"
#include "serving/store.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::dataqual {
namespace {

constexpr int kDays = 6;
constexpr int kRetailers = 3;
// The poison schedule: (day, retailer) -> corruption. Retailer 1 is never
// poisoned — it is the byte-identity control. Day 0 and the last day are
// clean everywhere so every quarantine opens and closes inside the run.
const std::map<int, std::map<data::RetailerId, Corruption>>& Schedule() {
  static const auto* schedule =
      new std::map<int, std::map<data::RetailerId, Corruption>>{
          {1, {{0, Corruption::kDuplicateEvents}}},
          {2, {{2, Corruption::kBotFlood}}},
          {3, {{0, Corruption::kCatalogTruncation}}},
          {4, {{2, Corruption::kTimestampScramble}}},
      };
  return *schedule;
}

Corruption PlannedCorruption(int day, data::RetailerId retailer) {
  auto day_it = Schedule().find(day);
  if (day_it == Schedule().end()) return Corruption::kNone;
  auto it = day_it->second.find(retailer);
  return it == day_it->second.end() ? Corruption::kNone : it->second;
}

pipeline::SigmundService::Options BaseOptions() {
  pipeline::SigmundService::Options options;
  options.sweep.grid.factors = {4, 8};
  options.sweep.grid.lambdas_v = {0.1, 0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 3;
  options.sweep.incremental_top_k = 2;
  options.training.num_map_tasks = 4;
  options.training.max_parallel_tasks = 2;
  options.training.checkpoint_interval_seconds = 0.0;
  options.inference.inference.top_k = 5;
  options.dataqual.enabled = true;
  options.retrieval.enabled = true;
  return options;
}

struct RunResult {
  std::vector<pipeline::DailyReport> reports;
  // Per-day, per-retailer version trails.
  std::vector<std::map<data::RetailerId, int64_t>> store_versions;
  std::vector<std::map<data::RetailerId, int64_t>> index_versions;
  // Durable end-state bytes, straight from the filesystem.
  std::map<data::RetailerId, std::string> recommendation_bytes;
  std::map<data::RetailerId, std::string> index_bytes;
  int64_t failed_serves = 0;
};

// Runs the whole scenario. `poison` toggles the corruption schedule; the
// world evolution (generator seeds, AdvanceOneDay seeds) is identical
// either way.
RunResult RunScenario(bool poison) {
  data::WorldConfig config;
  config.seed = 47;
  data::WorldGenerator generator(config);
  std::vector<data::RetailerWorld> worlds;
  worlds.push_back(generator.GenerateRetailer(0, 120));
  worlds.push_back(generator.GenerateRetailer(1, 100));
  worlds.push_back(generator.GenerateRetailer(2, 140));

  FeedCorruptor::Options corruptor_options;
  corruptor_options.seed = 777;
  FeedCorruptor corruptor(corruptor_options);

  sfs::MemFileSystem fs;
  // A SimClock keeps every timing field in the reports deterministic, so
  // same-seed reruns can compare report strings byte-for-byte.
  SimClock clock;
  pipeline::SigmundService::Options options = BaseOptions();
  options.clock = &clock;
  pipeline::SigmundService service(&fs, options);

  RunResult result;
  // Poisoned copies must outlive the day's RunDaily (the registry borrows
  // pointers), and re-registering the clean data afterwards restores the
  // borrow to the world struct.
  std::vector<data::RetailerData> poisoned_copies;
  for (int day = 0; day < kDays; ++day) {
    if (day > 0) {
      for (auto& world : worlds) {
        data::AdvanceOneDay(generator, &world, /*new_items=*/2,
                            /*seed=*/500 + day);
      }
    }
    poisoned_copies.clear();
    poisoned_copies.reserve(kRetailers);
    for (auto& world : worlds) {
      const Corruption mode =
          poison ? PlannedCorruption(day, world.data.id) : Corruption::kNone;
      if (mode != Corruption::kNone) {
        poisoned_copies.push_back(
            corruptor.Apply(world.data, mode, world.data.id, day));
        service.UpsertRetailer(&poisoned_copies.back());
      } else {
        service.UpsertRetailer(&world.data);
      }
    }
    StatusOr<pipeline::DailyReport> report = service.RunDaily();
    EXPECT_TRUE(report.ok()) << "day " << day << ": "
                             << report.status().ToString();
    if (!report.ok()) return result;
    result.reports.push_back(*std::move(report));

    std::map<data::RetailerId, int64_t> store_versions, index_versions;
    for (data::RetailerId id = 0; id < kRetailers; ++id) {
      store_versions[id] = service.store().RetailerVersion(id);
      index_versions[id] = service.retrieval_reader()->RetailerVersion(id);
      // Zero failed serves, quarantined or not: the last-known-good batch
      // answers every day.
      if (!service.store()
               .Lookup(id, 0, serving::RecommendationKind::kViewBased)
               .ok()) {
        ++result.failed_serves;
      }
    }
    result.store_versions.push_back(std::move(store_versions));
    result.index_versions.push_back(std::move(index_versions));
  }

  for (data::RetailerId id = 0; id < kRetailers; ++id) {
    StatusOr<std::string> recs = fs.Read(pipeline::RecommendationPath(id));
    result.recommendation_bytes[id] = recs.ok() ? *recs : "<unreadable>";
    StatusOr<std::string> index =
        fs.Read(retrieval::IndexArtifactPath(id));
    result.index_bytes[id] = index.ok() ? *index : "<unreadable>";
  }
  return result;
}

TEST(DataQualChaosTest, PoisonedFeedsNeverPromoteAndHealthyBytesMatch) {
  const RunResult clean = RunScenario(/*poison=*/false);
  const RunResult poisoned = RunScenario(/*poison=*/true);
  ASSERT_EQ(clean.reports.size(), static_cast<size_t>(kDays));
  ASSERT_EQ(poisoned.reports.size(), static_cast<size_t>(kDays));

  // The chaos actually happened: every scheduled poisoning quarantined.
  for (int day = 0; day < kDays; ++day) {
    int64_t expected = 0;
    for (data::RetailerId id = 0; id < kRetailers; ++id) {
      if (PlannedCorruption(day, id) != Corruption::kNone) ++expected;
    }
    EXPECT_EQ(poisoned.reports[day].feed_quarantines, expected)
        << "day " << day;
    EXPECT_EQ(clean.reports[day].feed_quarantines, 0) << "day " << day;
  }

  // 1. No corrupted feed's model or index promoted: on a poisoned day the
  // retailer's serving and retrieval versions are frozen at yesterday's.
  // On clean days every retailer's versions advance (fresh batch + index).
  for (int day = 1; day < kDays; ++day) {
    for (data::RetailerId id = 0; id < kRetailers; ++id) {
      const bool frozen = PlannedCorruption(day, id) != Corruption::kNone;
      const int64_t prev_store = poisoned.store_versions[day - 1].at(id);
      const int64_t prev_index = poisoned.index_versions[day - 1].at(id);
      if (frozen) {
        EXPECT_EQ(poisoned.store_versions[day].at(id), prev_store)
            << "retailer " << id << " day " << day;
        EXPECT_EQ(poisoned.index_versions[day].at(id), prev_index)
            << "retailer " << id << " day " << day;
      } else {
        EXPECT_GT(poisoned.store_versions[day].at(id), prev_store)
            << "retailer " << id << " day " << day;
        EXPECT_GT(poisoned.index_versions[day].at(id), prev_index)
            << "retailer " << id << " day " << day;
      }
    }
  }

  // 2. Zero failed serves, both runs, all days, all retailers.
  EXPECT_EQ(clean.failed_serves, 0);
  EXPECT_EQ(poisoned.failed_serves, 0);

  // 3. The never-poisoned retailer (id 1) is untouched by its neighbors'
  // chaos: its durable recommendation and index bytes match the fault-free
  // run exactly.
  EXPECT_EQ(poisoned.recommendation_bytes.at(1),
            clean.recommendation_bytes.at(1));
  EXPECT_EQ(poisoned.index_bytes.at(1), clean.index_bytes.at(1));
  EXPECT_NE(poisoned.recommendation_bytes.at(1), "<unreadable>");

  // 5. Releases happened (r0 on days 2 and 4, r2 on day 5) and the
  // release days warm-started: no retailer was re-planned as a full-grid
  // new sign-up anywhere in the run.
  int64_t releases = 0;
  for (const pipeline::DailyReport& report : poisoned.reports) {
    releases += report.quarantine_releases;
    EXPECT_EQ(report.new_retailers, 0);
  }
  EXPECT_EQ(releases, 4);
  EXPECT_EQ(poisoned.reports.back().quarantined_retailers, 0);
  // Models trained on a quarantine day shrink by the quarantined
  // retailer's share and recover after release.
  EXPECT_EQ(poisoned.reports[1].models_trained, 4);  // r1 + r2 only
  EXPECT_EQ(poisoned.reports.back().models_trained, 6);
}

TEST(DataQualChaosTest, SameSeedPoisonedRunsAreByteIdentical) {
  const RunResult a = RunScenario(/*poison=*/true);
  const RunResult b = RunScenario(/*poison=*/true);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (size_t day = 0; day < a.reports.size(); ++day) {
    EXPECT_EQ(a.reports[day].ToString(), b.reports[day].ToString())
        << "day " << day;
    EXPECT_EQ(a.store_versions[day], b.store_versions[day]);
    EXPECT_EQ(a.index_versions[day], b.index_versions[day]);
  }
  EXPECT_EQ(a.recommendation_bytes, b.recommendation_bytes);
  EXPECT_EQ(a.index_bytes, b.index_bytes);
}

}  // namespace
}  // namespace sigmund::dataqual
