#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "data/serialization.h"
#include "data/world_generator.h"
#include "pipeline/data_placement.h"
#include "sfs/mem_filesystem.h"
#include "sfs/reliable_io.h"

namespace sigmund {
namespace {

// --- BinaryWriter / BinaryReader -------------------------------------------

TEST(BinaryIoTest, ScalarRoundTrip) {
  BinaryWriter writer;
  writer.Write<int32_t>(-7);
  writer.Write<uint64_t>(1ULL << 60);
  writer.Write<double>(3.25);
  BinaryReader reader(writer.buffer());
  int32_t i = 0;
  uint64_t u = 0;
  double d = 0;
  ASSERT_TRUE(reader.Read(&i));
  ASSERT_TRUE(reader.Read(&u));
  ASSERT_TRUE(reader.Read(&d));
  EXPECT_EQ(i, -7);
  EXPECT_EQ(u, 1ULL << 60);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(reader.Done());
}

TEST(BinaryIoTest, StringAndVectorRoundTrip) {
  BinaryWriter writer;
  writer.WriteString("hello \0 world");
  writer.WriteVector(std::vector<float>{1.5f, -2.5f});
  writer.WriteString("");
  BinaryReader reader(writer.buffer());
  std::string s;
  std::vector<float> v;
  std::string empty;
  ASSERT_TRUE(reader.ReadString(&s));
  ASSERT_TRUE(reader.ReadVector(&v));
  ASSERT_TRUE(reader.ReadString(&empty));
  EXPECT_EQ(v, (std::vector<float>{1.5f, -2.5f}));
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(reader.Done());
}

TEST(BinaryIoTest, TruncationDetected) {
  BinaryWriter writer;
  writer.Write<int64_t>(1);
  std::string bytes = writer.buffer();
  bytes.resize(4);
  BinaryReader reader(bytes);
  int64_t v = 0;
  EXPECT_FALSE(reader.Read(&v));
  // Oversized length prefix must not read out of bounds.
  BinaryWriter evil;
  evil.Write<uint64_t>(1ULL << 40);
  BinaryReader evil_reader(evil.buffer());
  std::string out;
  EXPECT_FALSE(evil_reader.ReadString(&out));
}

// --- RetailerData serialization ----------------------------------------------

data::RetailerWorld MakeWorld(uint64_t seed = 3, int items = 120) {
  data::WorldConfig config;
  config.seed = seed;
  data::WorldGenerator generator(config);
  return generator.GenerateRetailer(0, items);
}

TEST(RetailerDataSerializationTest, RoundTripPreservesEverything) {
  data::RetailerWorld world = MakeWorld();
  world.data.id = 42;
  std::string bytes = data::SerializeRetailerData(world.data);
  StatusOr<data::RetailerData> restored =
      data::DeserializeRetailerData(bytes);
  ASSERT_TRUE(restored.ok());

  EXPECT_EQ(restored->id, 42);
  EXPECT_EQ(restored->num_items(), world.data.num_items());
  EXPECT_EQ(restored->num_users(), world.data.num_users());
  EXPECT_EQ(restored->TotalInteractions(), world.data.TotalInteractions());

  // Taxonomy structure.
  const data::Taxonomy& a = world.data.catalog.taxonomy();
  const data::Taxonomy& b = restored->catalog.taxonomy();
  ASSERT_EQ(a.num_categories(), b.num_categories());
  for (data::CategoryId c = 0; c < a.num_categories(); ++c) {
    EXPECT_EQ(a.parent(c), b.parent(c));
    EXPECT_EQ(a.name(c), b.name(c));
  }

  // Items.
  for (data::ItemIndex i = 0; i < world.data.num_items(); ++i) {
    const data::Item& x = world.data.catalog.item(i);
    const data::Item& y = restored->catalog.item(i);
    EXPECT_EQ(x.category, y.category);
    EXPECT_EQ(x.brand, y.brand);
    EXPECT_EQ(x.price, y.price);
    EXPECT_EQ(x.facet, y.facet);
  }

  // Histories, event by event.
  for (data::UserIndex u = 0; u < world.data.num_users(); ++u) {
    ASSERT_EQ(world.data.histories[u].size(), restored->histories[u].size());
    for (size_t e = 0; e < world.data.histories[u].size(); ++e) {
      const data::Interaction& x = world.data.histories[u][e];
      const data::Interaction& y = restored->histories[u][e];
      EXPECT_EQ(x.item, y.item);
      EXPECT_EQ(x.action, y.action);
      EXPECT_EQ(x.timestamp, y.timestamp);
    }
  }

  // The restored catalog is finalized (category index usable).
  EXPECT_EQ(restored->catalog.ItemsInCategory(1).size(),
            world.data.catalog.ItemsInCategory(1).size());
}

TEST(RetailerDataSerializationTest, DeterministicBytes) {
  data::RetailerWorld world = MakeWorld(5, 60);
  EXPECT_EQ(data::SerializeRetailerData(world.data),
            data::SerializeRetailerData(world.data));
}

TEST(RetailerDataSerializationTest, EstimateMatchesActual) {
  data::RetailerWorld world = MakeWorld(7, 150);
  std::string bytes = data::SerializeRetailerData(world.data);
  int64_t estimate = data::EstimateSerializedSize(world.data);
  EXPECT_NEAR(static_cast<double>(bytes.size()), estimate,
              0.02 * bytes.size() + 64);
}

TEST(RetailerDataSerializationTest, CorruptionRejectedNotCrashed) {
  data::RetailerWorld world = MakeWorld(9, 50);
  std::string bytes = data::SerializeRetailerData(world.data);
  // Truncations at many offsets.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{10}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(data::DeserializeRetailerData(bytes.substr(0, cut)).ok());
  }
  // Bit flips in the header region.
  for (size_t flip = 0; flip < 16; ++flip) {
    std::string mutated = bytes;
    mutated[flip] = static_cast<char>(mutated[flip] ^ 0x40);
    auto result = data::DeserializeRetailerData(mutated);
    // Either rejected or parsed to structurally valid data — never UB.
    if (result.ok()) {
      EXPECT_GE(result->num_items(), 0);
    }
  }
  // Trailing garbage.
  EXPECT_FALSE(data::DeserializeRetailerData(bytes + "x").ok());
}

// --- DataPlacementPlanner -----------------------------------------------------

struct PlacementFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 11;
    return config;
  }()};
  data::RetailerWorld r0 = generator.GenerateRetailer(0, 60);
  data::RetailerWorld r1 = generator.GenerateRetailer(1, 300);
  data::RetailerWorld r2 = generator.GenerateRetailer(2, 120);
  pipeline::RetailerRegistry registry;
  sfs::MemFileSystem fs;

  PlacementFixture() {
    registry.Upsert(&r0.data);
    registry.Upsert(&r1.data);
    registry.Upsert(&r2.data);
  }

  pipeline::DataPlacementPlanner::Options TwoCells() {
    pipeline::DataPlacementPlanner::Options options;
    options.cells = {"cell-a", "cell-b"};
    return options;
  }
};

TEST(DataPlacementTest, PlanBalancesWorkAcrossCells) {
  PlacementFixture f;
  pipeline::DataPlacementPlanner planner(&f.fs, f.TwoCells());
  auto plan = planner.PlanPlacement(f.registry);
  ASSERT_EQ(plan.home_cell.size(), 3u);
  ASSERT_EQ(plan.cell_work.size(), 2u);
  // The biggest retailer must not share its cell with both others.
  int64_t total = f.r0.data.TotalInteractions() +
                  f.r1.data.TotalInteractions() +
                  f.r2.data.TotalInteractions();
  for (const auto& [cell, work] : plan.cell_work) {
    EXPECT_LT(work, total);
  }
}

TEST(DataPlacementTest, MaterializeWritesShardsAndAccountsBytes) {
  PlacementFixture f;
  pipeline::DataPlacementPlanner planner(&f.fs, f.TwoCells());
  auto plan = planner.PlanPlacement(f.registry);
  sfs::FileTransferLedger ledger;
  ASSERT_TRUE(planner.Materialize(f.registry, plan, {}, &ledger).ok());
  // Shards exist in the planned cells and parse back.
  for (const auto& [retailer, cell] : plan.home_cell) {
    std::string path =
        pipeline::DataPlacementPlanner::ShardPath(cell, retailer);
    ASSERT_TRUE(f.fs.Exists(path));
    // Shards are written as checksummed frames; unwrap before parsing.
    StatusOr<std::string> shard = sfs::ReadChecksummedFile(&f.fs, path);
    ASSERT_TRUE(shard.ok());
    auto restored = data::DeserializeRetailerData(*shard);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->id, retailer);
  }
  // Initial ingest counts as transfer.
  EXPECT_EQ(ledger.transfer_count(), 3);
  EXPECT_GT(ledger.total_bytes(), 0);
  EXPECT_GT(planner.MigrationCost(ledger), 0.0);
}

TEST(DataPlacementTest, StableShardsNotRewritten) {
  PlacementFixture f;
  pipeline::DataPlacementPlanner planner(&f.fs, f.TwoCells());
  auto plan = planner.PlanPlacement(f.registry);
  sfs::FileTransferLedger ledger;
  ASSERT_TRUE(planner.Materialize(f.registry, plan, {}, &ledger).ok());
  ledger.Reset();
  // Second run with previous == plan: no transfers.
  std::map<data::RetailerId, std::string> previous(plan.home_cell.begin(),
                                                   plan.home_cell.end());
  ASSERT_TRUE(planner.Materialize(f.registry, plan, previous, &ledger).ok());
  EXPECT_EQ(ledger.transfer_count(), 0);
}

TEST(DataPlacementTest, RelocationDeletesStaleReplica) {
  PlacementFixture f;
  pipeline::DataPlacementPlanner planner(&f.fs, f.TwoCells());
  auto plan = planner.PlanPlacement(f.registry);
  sfs::FileTransferLedger ledger;
  ASSERT_TRUE(planner.Materialize(f.registry, plan, {}, &ledger).ok());

  // Force a relocation: pretend retailer 0's shard lived in the other cell.
  std::string current = plan.home_cell[0];
  std::string other = current == "cell-a" ? "cell-b" : "cell-a";
  ASSERT_TRUE(
      f.fs.Write(pipeline::DataPlacementPlanner::ShardPath(other, 0), "old")
          .ok());
  std::map<data::RetailerId, std::string> previous(plan.home_cell.begin(),
                                                   plan.home_cell.end());
  previous[0] = other;
  ledger.Reset();
  ASSERT_TRUE(planner.Materialize(f.registry, plan, previous, &ledger).ok());
  EXPECT_EQ(ledger.transfer_count(), 1);
  EXPECT_FALSE(
      f.fs.Exists(pipeline::DataPlacementPlanner::ShardPath(other, 0)));
}

}  // namespace
}  // namespace sigmund
