// Overload robustness (DESIGN.md §8): admission control primitives, the
// Frontend's shed/brownout/retry-budget integration, the LRU-bounded
// retailer state map, hedge budgets, canary sample exclusion, and the
// deterministic load harness.

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "data/world_generator.h"
#include "pipeline/canary.h"
#include "serving/admission.h"
#include "serving/frontend.h"
#include "serving/loadgen.h"
#include "serving/replicated_store.h"
#include "serving/store.h"

namespace sigmund {
namespace {

using pipeline::CanaryController;
using serving::AdaptiveConcurrencyLimiter;
using serving::AdmissionController;
using serving::Frontend;
using serving::RequestPriority;
using serving::RetryBudget;
using serving::ShedReason;
using serving::TokenBucket;

// --- TokenBucket -------------------------------------------------------------

TEST(TokenBucketTest, RefillsAtRateUpToBurst) {
  TokenBucket bucket(/*tokens_per_second=*/10.0, /*burst=*/5.0);
  // Burst drains...
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryTake(0));
  EXPECT_FALSE(bucket.TryTake(0));
  // ...150ms refills ~1.5 tokens: one take fits, a second does not...
  EXPECT_TRUE(bucket.TryTake(150000));
  EXPECT_FALSE(bucket.TryTake(150000));
  // ...and a long idle period caps at burst, not rate × time.
  EXPECT_TRUE(bucket.TryTake(100000000));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryTake(100000000));
  EXPECT_FALSE(bucket.TryTake(100000000));
}

TEST(TokenBucketTest, ZeroRateDisables) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryTake(0));
}

// --- RetryBudget -------------------------------------------------------------

TEST(RetryBudgetTest, WithdrawalsCappedByDepositsPlusReserve) {
  RetryBudget::Options options;
  options.ratio = 0.25;  // exactly representable: no FP drift in the test
  options.initial_tokens = 2.0;
  RetryBudget budget(options);
  // The reserve affords 2 retries cold.
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
  // 4 requests bank exactly one more token.
  for (int i = 0; i < 4; ++i) budget.RecordRequest();
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

TEST(RetryBudgetTest, TokensCapAtMax) {
  RetryBudget::Options options;
  options.ratio = 1.0;
  options.initial_tokens = 0.0;
  options.max_tokens = 3.0;
  RetryBudget budget(options);
  for (int i = 0; i < 100; ++i) budget.RecordRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
}

// --- AdaptiveConcurrencyLimiter ----------------------------------------------

TEST(AdaptiveLimiterTest, AimdOnLatencyVsTarget) {
  AdaptiveConcurrencyLimiter::Options options;
  options.initial_limit = 100;
  options.target_latency_micros = 1000;
  options.window = 4;
  options.ewma_alpha = 1.0;  // no smoothing: the test controls samples
  AdaptiveConcurrencyLimiter limiter(options);
  // A window under target: additive increase.
  for (int i = 0; i < 4; ++i) limiter.Record(500);
  EXPECT_EQ(limiter.limit(), 101);
  // A window over target: multiplicative decrease.
  for (int i = 0; i < 4; ++i) limiter.Record(5000);
  EXPECT_EQ(limiter.limit(), static_cast<int>(101 * 0.85));
}

TEST(AdaptiveLimiterTest, ClampsToBounds) {
  AdaptiveConcurrencyLimiter::Options options;
  options.initial_limit = 2;
  options.min_limit = 2;
  options.max_limit = 3;
  options.target_latency_micros = 1000;
  options.window = 1;
  AdaptiveConcurrencyLimiter limiter(options);
  for (int i = 0; i < 50; ++i) limiter.Record(100000);
  EXPECT_EQ(limiter.limit(), 2);
  for (int i = 0; i < 50; ++i) limiter.Record(10);
  EXPECT_EQ(limiter.limit(), 3);
}

TEST(AdaptiveLimiterTest, VegasQueueEstimate) {
  AdaptiveConcurrencyLimiter::Options options;
  options.initial_limit = 10;
  options.window = 1000;  // no adjustment during the test
  options.ewma_alpha = 1.0;
  AdaptiveConcurrencyLimiter limiter(options);
  limiter.Record(1000);  // min latency
  limiter.Record(2000);  // smoothed = 2000 → half the window is queue
  EXPECT_NEAR(limiter.EstimatedQueue(), 5.0, 1e-9);
}

// --- AdmissionController -----------------------------------------------------

AdmissionController::Options SmallController(int limit, int queue = 0) {
  AdmissionController::Options options;
  options.limiter.initial_limit = limit;
  options.limiter.min_limit = limit;
  options.limiter.max_limit = limit;
  options.queue_capacity = queue;
  return options;
}

TEST(AdmissionControllerTest, AdmitsUntilLimitThenSheds) {
  SimClock clock;
  obs::MetricRegistry metrics;
  AdmissionController controller(SmallController(2), &metrics, &clock);
  EXPECT_EQ(controller.Offer(1, RequestPriority::kUserFacing, 0, false)
                .outcome,
            AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(controller.Offer(1, RequestPriority::kUserFacing, 0, false)
                .outcome,
            AdmissionController::Outcome::kAdmitted);
  const AdmissionController::Admission shed =
      controller.Offer(1, RequestPriority::kUserFacing, 0, false);
  EXPECT_EQ(shed.outcome, AdmissionController::Outcome::kShed);
  EXPECT_EQ(shed.reason, ShedReason::kQueueFull);
  EXPECT_EQ(controller.in_flight(), 2);
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_shed_total",
                                  {{"priority", "user_facing"},
                                   {"reason", "queue_full"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue("serving_admitted_total",
                                  {{"priority", "user_facing"}}),
            2);
}

TEST(AdmissionControllerTest, WatermarksShedProbesBeforeCanariesBeforeUsers) {
  SimClock clock;
  AdmissionController controller(SmallController(10), nullptr, &clock);
  // 7/10 slots → occupancy 0.7: probes refused, canaries and users pass.
  for (int i = 0; i < 7; ++i) {
    ASSERT_EQ(
        controller.Offer(1, RequestPriority::kUserFacing, 0, false).outcome,
        AdmissionController::Outcome::kAdmitted);
  }
  EXPECT_EQ(
      controller.Offer(1, RequestPriority::kHealthProbe, 0, false).reason,
      ShedReason::kWatermark);
  EXPECT_EQ(
      controller.Offer(1, RequestPriority::kCanary, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
  // 9/10 → canaries refused too; user-facing still admitted to the brim.
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kUserFacing, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(controller.Offer(1, RequestPriority::kCanary, 0, false).reason,
            ShedReason::kWatermark);
  EXPECT_EQ(
      controller.Offer(1, RequestPriority::kUserFacing, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
}

TEST(AdmissionControllerTest, QueueDrainsInPriorityOrderOnRelease) {
  SimClock clock;
  AdmissionController controller(SmallController(1, /*queue=*/4), nullptr,
                                 &clock);
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kUserFacing, 0, true).outcome,
      AdmissionController::Outcome::kAdmitted);
  // Queue a probe first, then a user request (watermarks don't apply: a
  // probe offered at low occupancy may still queue).
  const AdmissionController::Admission probe =
      controller.Offer(1, RequestPriority::kHealthProbe, 0, true);
  ASSERT_EQ(probe.outcome, AdmissionController::Outcome::kQueued);
  const AdmissionController::Admission user =
      controller.Offer(2, RequestPriority::kUserFacing, 0, true);
  ASSERT_EQ(user.outcome, AdmissionController::Outcome::kQueued);
  // The freed slot goes to the user request despite the probe queueing
  // first.
  AdmissionController::Drained drained = controller.Release(1000);
  ASSERT_EQ(drained.admitted.size(), 1u);
  EXPECT_EQ(drained.admitted[0].id, user.id);
  EXPECT_EQ(drained.admitted[0].priority, RequestPriority::kUserFacing);
  drained = controller.Release(1000);
  ASSERT_EQ(drained.admitted.size(), 1u);
  EXPECT_EQ(drained.admitted[0].id, probe.id);
}

TEST(AdmissionControllerTest, FullQueueEvictsLowestPriorityWaiter) {
  SimClock clock;
  obs::MetricRegistry metrics;
  AdmissionController controller(SmallController(1, /*queue=*/2), &metrics,
                                 &clock);
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kUserFacing, 0, true).outcome,
      AdmissionController::Outcome::kAdmitted);
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kHealthProbe, 0, true).outcome,
      AdmissionController::Outcome::kQueued);
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kCanary, 0, true).outcome,
      AdmissionController::Outcome::kQueued);
  // Queue full. A user arrival evicts the queued probe (lowest class)...
  EXPECT_EQ(
      controller.Offer(2, RequestPriority::kUserFacing, 0, true).outcome,
      AdmissionController::Outcome::kQueued);
  EXPECT_EQ(metrics.Snapshot().CounterValue(
                "serving_shed_total", {{"priority", "health_probe"},
                                       {"reason", "queue_full"}}),
            1);
  // ...and a probe arrival sheds outright: with the plane this full
  // (occupancy 1.0) the probe watermark refuses it before the queue is
  // even consulted.
  EXPECT_EQ(
      controller.Offer(3, RequestPriority::kHealthProbe, 0, true).outcome,
      AdmissionController::Outcome::kShed);
}

TEST(AdmissionControllerTest, ExpiredWaitersAreShedOnDrain) {
  SimClock clock;
  AdmissionController controller(SmallController(1, /*queue=*/2), nullptr,
                                 &clock);
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kUserFacing, 0, true).outcome,
      AdmissionController::Outcome::kAdmitted);
  const AdmissionController::Admission waiting = controller.Offer(
      1, RequestPriority::kUserFacing, /*deadline_micros=*/500, true);
  ASSERT_EQ(waiting.outcome, AdmissionController::Outcome::kQueued);
  clock.AdvanceMicros(1000);  // past the waiter's deadline
  const AdmissionController::Drained drained = controller.Release(1000);
  EXPECT_TRUE(drained.admitted.empty());
  ASSERT_EQ(drained.shed.size(), 1u);
  EXPECT_EQ(drained.shed[0].id, waiting.id);
  EXPECT_EQ(drained.shed[0].shed_reason, ShedReason::kQueueDeadline);
}

TEST(AdmissionControllerTest, CodelShedsStandingQueue) {
  SimClock clock;
  AdmissionController::Options options = SmallController(1, /*queue=*/8);
  options.codel_target_micros = 100;
  options.codel_interval_micros = 1000;
  AdmissionController controller(options, nullptr, &clock);
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kUserFacing, 0, true).outcome,
      AdmissionController::Outcome::kAdmitted);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(
        controller.Offer(1, RequestPriority::kUserFacing, 0, true).outcome,
        AdmissionController::Outcome::kQueued);
  }
  // First drain past target starts the CoDel interval; sojourn stays
  // above target for a full interval, so the next drain sheds the head.
  clock.AdvanceMicros(500);
  AdmissionController::Drained drained = controller.Release(500);
  EXPECT_EQ(drained.admitted.size(), 1u);
  EXPECT_TRUE(drained.shed.empty());
  clock.AdvanceMicros(1500);
  drained = controller.Release(1500);
  ASSERT_EQ(drained.shed.size(), 1u);
  EXPECT_EQ(drained.shed[0].shed_reason, ShedReason::kCodel);
  EXPECT_EQ(drained.admitted.size(), 1u);
}

TEST(AdmissionControllerTest, RetailerRateLimitShedsUserTrafficOnly) {
  SimClock clock;
  AdmissionController::Options options = SmallController(100);
  options.retailer_tokens_per_second = 1.0;
  options.retailer_burst = 2.0;
  AdmissionController controller(options, nullptr, &clock);
  EXPECT_EQ(
      controller.Offer(7, RequestPriority::kUserFacing, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(
      controller.Offer(7, RequestPriority::kUserFacing, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(
      controller.Offer(7, RequestPriority::kUserFacing, 0, false).reason,
      ShedReason::kRateLimited);
  // Another retailer has its own bucket.
  EXPECT_EQ(
      controller.Offer(8, RequestPriority::kUserFacing, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
  // Probes don't consume (or get refused by) retailer tokens.
  EXPECT_EQ(
      controller.Offer(7, RequestPriority::kHealthProbe, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
}

TEST(AdmissionControllerTest, PressureRisesUnderSaturation) {
  SimClock clock;
  AdmissionController::Options options = SmallController(1);
  options.pressure_alpha = 0.5;
  AdmissionController controller(options, nullptr, &clock);
  EXPECT_DOUBLE_EQ(controller.Pressure(), 0.0);
  ASSERT_EQ(
      controller.Offer(1, RequestPriority::kUserFacing, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
  for (int i = 0; i < 20; ++i) {
    controller.Offer(1, RequestPriority::kUserFacing, 0, false);
  }
  EXPECT_GT(controller.Pressure(), 0.9);
}

// --- Frontend integration ----------------------------------------------------

Frontend::StoreLookup CountingLookup(int* calls) {
  return [calls](data::RetailerId, const core::Context&)
             -> StatusOr<std::vector<core::ScoredItem>> {
    ++*calls;
    return std::vector<core::ScoredItem>{{1, 2.0}, {2, 1.5}, {3, 1.0},
                                         {4, 0.5}, {5, 0.1}};
  };
}

serving::RecommendationRequest UserRequest(data::RetailerId retailer = 1) {
  serving::RecommendationRequest request;
  request.retailer = retailer;
  request.context = {{0, data::ActionType::kView}};
  return request;
}

// Pumps the controller's pressure EWMA to ~1.0 by saturating the plane
// and hammering it with refused offers, then frees ONE slot so the
// frontend request under test is admitted (browned out, not shed). With
// pressure_alpha=0.02 the single release leaves pressure at ~0.99.
void SaturatePressure(AdmissionController* controller) {
  int admitted = 0;
  while (controller->Offer(99, RequestPriority::kUserFacing, 0, false)
             .outcome == AdmissionController::Outcome::kAdmitted) {
    ++admitted;
  }
  ASSERT_GT(admitted, 0);
  for (int i = 0; i < 500; ++i) {
    controller->Offer(99, RequestPriority::kUserFacing, 0, false);
  }
  controller->Release(/*latency_micros=*/1000);
}

TEST(FrontendOverloadTest, ShedRequestsReturnResourceExhausted) {
  SimClock clock;
  obs::MetricRegistry metrics;
  AdmissionController controller(SmallController(1), &metrics, &clock);
  Frontend::Options options;
  options.admission = &controller;
  Frontend frontend(nullptr, nullptr, &metrics, &clock, options);
  int calls = 0;
  frontend.SetLookupForTesting(CountingLookup(&calls));

  // Fill the only slot from outside, so the frontend's request sheds.
  ASSERT_EQ(
      controller.Offer(9, RequestPriority::kUserFacing, 0, false).outcome,
      AdmissionController::Outcome::kAdmitted);
  auto response = frontend.Handle(UserRequest());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 0);  // the store was never touched
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_requests_total",
                                  {{"outcome", "shed"}, {"version", "0"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue("serving_shed_total",
                                  {{"priority", "user_facing"},
                                   {"reason", "queue_full"}}),
            1);
}

TEST(FrontendOverloadTest, AdmittedRequestsReleaseTheirSlot) {
  SimClock clock;
  AdmissionController controller(SmallController(4), nullptr, &clock);
  Frontend::Options options;
  options.admission = &controller;
  Frontend frontend(nullptr, nullptr, nullptr, &clock, options);
  int calls = 0;
  frontend.SetLookupForTesting(CountingLookup(&calls));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(frontend.Handle(UserRequest()).ok());
  }
  EXPECT_EQ(controller.in_flight(), 0);
  EXPECT_EQ(calls, 10);
}

TEST(FrontendOverloadTest, BrownoutRungsDegradeProgressively) {
  SimClock clock;
  AdmissionController::Options coptions = SmallController(2);
  coptions.pressure_alpha = 0.02;
  AdmissionController controller(coptions, nullptr, &clock);
  obs::MetricRegistry metrics;
  Frontend::Options options;
  options.admission = &controller;
  options.brownout_max_results = 2;
  Frontend frontend(nullptr, nullptr, &metrics, &clock, options);
  int calls = 0;
  frontend.SetLookupForTesting(CountingLookup(&calls));

  // Healthy: full results, rung 0; caches the last-known-good list.
  auto healthy = frontend.Handle(UserRequest());
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->brownout_rung, 0);
  EXPECT_EQ(healthy->items.size(), 5u);

  SaturatePressure(&controller);  // pressure → ~1.0: rung 3 territory
  auto browned = frontend.Handle(UserRequest());
  ASSERT_TRUE(browned.ok());
  EXPECT_EQ(browned->brownout_rung, 3);
  EXPECT_EQ(browned->source, serving::ServingSource::kBrownoutLastKnownGood);
  EXPECT_TRUE(browned->degraded);
  EXPECT_EQ(browned->items.size(), 2u);  // rung >= 1 shrinks max_results
  EXPECT_EQ(calls, 1);                   // rung 3 never touched the store
  EXPECT_EQ(metrics.Snapshot().CounterValue("serving_brownout_total",
                                            {{"rung", "3"}}),
            1);

  // A retailer with no cached list yet falls through to the store.
  // (Re-pump first: each served request's release decays the EWMA.)
  SaturatePressure(&controller);
  auto fresh = frontend.Handle(UserRequest(/*retailer=*/2));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->brownout_rung, 3);
  EXPECT_EQ(fresh->source, serving::ServingSource::kStore);
  EXPECT_EQ(calls, 2);
}

TEST(FrontendOverloadTest, BrownoutRungTwoSkipsCalibrationThresholding) {
  SimClock clock;
  AdmissionController::Options coptions = SmallController(2);
  coptions.pressure_alpha = 0.02;
  AdmissionController controller(coptions, nullptr, &clock);
  Frontend::Options options;
  options.admission = &controller;
  // Only rungs 1-2 reachable: rung 3 threshold out of reach.
  options.brownout_shrink_pressure = 0.1;
  options.brownout_skip_threshold_pressure = 0.5;
  options.brownout_serve_lkg_pressure = 1.1;
  options.brownout_max_results = 3;
  Frontend frontend(nullptr, nullptr, nullptr, &clock, options);
  int calls = 0;
  frontend.SetLookupForTesting(CountingLookup(&calls));

  SaturatePressure(&controller);
  serving::RecommendationRequest request = UserRequest();
  request.display_threshold = 0.99;  // would normally suppress items
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->brownout_rung, 2);
  // Rung 2: thresholding skipped entirely (nothing suppressed), results
  // still shrunk, store still consulted.
  EXPECT_EQ(response->suppressed_by_threshold, 0);
  EXPECT_EQ(response->items.size(), 3u);
  EXPECT_EQ(response->source, serving::ServingSource::kStore);
  EXPECT_EQ(calls, 1);
}

TEST(FrontendOverloadTest, LruBoundsRetailerStateMap) {
  obs::MetricRegistry metrics;
  Frontend::Options options;
  options.max_retailer_states = 2;
  Frontend frontend(nullptr, nullptr, &metrics, nullptr, options);
  int calls = 0;
  frontend.SetLookupForTesting(CountingLookup(&calls));

  EXPECT_TRUE(frontend.Handle(UserRequest(1)).ok());
  EXPECT_TRUE(frontend.Handle(UserRequest(2)).ok());
  EXPECT_EQ(frontend.NumRetailerStates(), 2);
  // Touch 1 so 2 becomes the LRU victim when 3 arrives.
  EXPECT_TRUE(frontend.Handle(UserRequest(1)).ok());
  EXPECT_TRUE(frontend.Handle(UserRequest(3)).ok());
  EXPECT_EQ(frontend.NumRetailerStates(), 2);
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_state_evictions_total", {}), 1);
  EXPECT_DOUBLE_EQ(snapshot.GaugeValue("serving_state_entries", {}), 2.0);

  // Retailer 2's cached fallback went with its state: a store failure for
  // 2 now has no last-known-good to serve, while 1 (still resident) does.
  // (Check 1 first — probing 2 re-creates its state and would evict 1.)
  frontend.SetLookupForTesting(
      [](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        return UnavailableError("store down");
      });
  auto resident = frontend.Handle(UserRequest(1));
  ASSERT_TRUE(resident.ok());
  EXPECT_EQ(resident->source, serving::ServingSource::kLastKnownGood);
  auto evicted = frontend.Handle(UserRequest(2));
  EXPECT_FALSE(evicted.ok());
}

TEST(FrontendOverloadTest, ClientRetriesSpendTheBudget) {
  obs::MetricRegistry metrics;
  Frontend::Options options;
  options.store_retries = 5;
  options.retry_budget.ratio = 0.0;  // nothing banked per request
  options.retry_budget.initial_tokens = 2.0;
  Frontend frontend(nullptr, nullptr, &metrics, nullptr, options);
  int calls = 0;
  frontend.SetLookupForTesting(
      [&calls](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        ++calls;
        return UnavailableError("transient");
      });
  // First request: 1 try + 2 budgeted retries, then the budget is dry.
  EXPECT_FALSE(frontend.Handle(UserRequest()).ok());
  EXPECT_EQ(calls, 3);
  // Second request: no tokens left → single attempt.
  EXPECT_FALSE(frontend.Handle(UserRequest()).ok());
  EXPECT_EQ(calls, 4);
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_client_retries_total", {}), 2);
  EXPECT_EQ(
      snapshot.CounterValue("serving_retry_budget_exhausted_total", {}), 2);
}

TEST(FrontendOverloadTest, ShedResponsesAreNotRetried) {
  // kResourceExhausted is not a retryable error: retrying into an
  // overloaded plane amplifies the overload.
  obs::MetricRegistry metrics;
  Frontend::Options options;
  options.store_retries = 5;
  options.retry_budget.initial_tokens = 100.0;
  Frontend frontend(nullptr, nullptr, &metrics, nullptr, options);
  int calls = 0;
  frontend.SetLookupForTesting(
      [&calls](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        ++calls;
        return ResourceExhaustedError("downstream shed");
      });
  EXPECT_FALSE(frontend.Handle(UserRequest()).ok());
  EXPECT_EQ(calls, 1);
}

TEST(FrontendOverloadTest, DeadlineOverrunRecordedOnResponseAndHistogram) {
  SimClock clock;
  obs::MetricRegistry metrics;
  Frontend::Options options;
  options.request_deadline_micros = 1000;
  Frontend frontend(nullptr, nullptr, &metrics, &clock, options);
  int calls = 0;
  // Prime a last-known-good list with a fast lookup.
  frontend.SetLookupForTesting(CountingLookup(&calls));
  ASSERT_TRUE(frontend.Handle(UserRequest()).ok());
  // Now a slow lookup: 2500 micros against a 1000-micro deadline.
  frontend.SetLookupForTesting(
      [&clock](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        clock.AdvanceMicros(2500);
        return std::vector<core::ScoredItem>{{1, 2.0}};
      });
  auto response = frontend.Handle(UserRequest());
  ASSERT_TRUE(response.ok());  // served from last-known-good
  EXPECT_EQ(response->source, serving::ServingSource::kLastKnownGood);
  EXPECT_EQ(response->overrun_micros, 1500);
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_deadline_exceeded_total", {}), 1);
  const auto* histogram =
      snapshot.FindHistogram("serving_deadline_overrun_micros", {});
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 1);
}

// --- Hedge budget ------------------------------------------------------------

TEST(HedgeBudgetTest, BudgetSuppressesHedgesPastTheRatio) {
  obs::MetricRegistry metrics;
  serving::ReplicatedStoreGroup::Options options;
  options.num_replicas = 2;
  options.hedged_reads = true;
  options.hedge_budget_ratio = 0.0;  // nothing banked: only the reserve
  options.hedge_budget_initial_tokens = 2.0;
  serving::ReplicatedStoreGroup group(options, &metrics);
  std::vector<core::ItemRecommendations> recs(1);
  recs[0].query = 0;
  recs[0].view_based = {{1, 1.0}};
  group.LoadRetailer(1, recs);

  const core::Context context{{0, data::ActionType::kView}};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(group.ServeContext(1, context).ok());
  }
  auto snapshot = metrics.Snapshot();
  // The 2-token reserve afforded 2 hedges; the rest were suppressed.
  EXPECT_EQ(snapshot.CounterValue("serving_hedged_reads_total", {}), 2);
  EXPECT_EQ(snapshot.CounterValue("serving_hedges_suppressed_total", {}), 3);
}

TEST(HedgeBudgetTest, NegativeRatioKeepsLegacyUnlimitedHedging) {
  obs::MetricRegistry metrics;
  serving::ReplicatedStoreGroup::Options options;
  options.num_replicas = 2;
  options.hedged_reads = true;
  serving::ReplicatedStoreGroup group(options, &metrics);
  std::vector<core::ItemRecommendations> recs(1);
  recs[0].query = 0;
  recs[0].view_based = {{1, 1.0}};
  group.LoadRetailer(1, recs);
  const core::Context context{{0, data::ActionType::kView}};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(group.ServeContext(1, context).ok());
  }
  auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_hedged_reads_total", {}), 5);
  EXPECT_EQ(snapshot.CounterValue("serving_hedges_suppressed_total", {}), 0);
}

// --- Canary overload exclusion (regression) ----------------------------------

struct CanaryOverloadFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 33;
    return config;
  }()};
  data::RetailerWorld world = generator.GenerateRetailer(0, 40);
  serving::RecommendationStore store;

  CanaryOverloadFixture() {
    std::vector<core::ItemRecommendations> batch(world.data.num_items());
    for (int i = 0; i < world.data.num_items(); ++i) {
      batch[i].query = i;
      batch[i].view_based = {{static_cast<data::ItemIndex>(
                                  (i + 1) % world.data.num_items()),
                              1.0}};
    }
    store.LoadRetailer(0, batch);   // active v1
    store.StageRetailer(0, batch);  // staged v2, identical quality
  }

  CanaryController::Options Options() {
    CanaryController::Options options;
    options.enabled = true;
    options.canary_fraction = 0.5;
    options.seed = 5;
    options.max_impressions = 400;
    options.oracle = [this](data::RetailerId) { return &world.truth; };
    return options;
  }
};

TEST(CanaryOverloadTest, OverloadShedsCountedAsSamplesWouldRollBack) {
  // The failure mode this PR closes, reconstructed: if canary-arm serves
  // hitting an overloaded plane were counted as clickless impressions,
  // a perfectly good batch would be rolled back.
  CanaryOverloadFixture f;
  CanaryController::Options options = f.Options();
  options.serve_hook = [&](data::RetailerId retailer,
                           const core::Context& context, int64_t version)
      -> CanaryController::CanaryServe {
    CanaryController::CanaryServe serve;
    if (version != 0) {
      // Canary arm shed, but miscounted as an ok empty serve (the old
      // behavior): an impression with no possible click.
      serve.status = OkStatus();
      return serve;
    }
    auto list = f.store.ServeContextAtVersion(retailer, context, 0);
    serve.status = list.status();
    if (list.ok()) serve.items = *list;
    return serve;
  };
  CanaryController controller(options, nullptr);
  const CanaryController::Outcome outcome =
      controller.Evaluate(0, f.store, 2, f.world.data, /*day=*/0);
  EXPECT_EQ(outcome.verdict, CanaryController::Verdict::kRolledBack);
}

TEST(CanaryOverloadTest, ShedAndDegradedServesAreExcludedFromArms) {
  // With the fix: the same overload is reported as kResourceExhausted,
  // the samples are excluded, and the good batch survives.
  CanaryOverloadFixture f;
  obs::MetricRegistry metrics;
  CanaryController::Options options = f.Options();
  int sheds = 0;
  options.serve_hook = [&](data::RetailerId retailer,
                           const core::Context& context, int64_t version)
      -> CanaryController::CanaryServe {
    CanaryController::CanaryServe serve;
    if (version != 0) {
      ++sheds;
      serve.status = ResourceExhaustedError("request shed: queue_full");
      return serve;
    }
    auto list = f.store.ServeContextAtVersion(retailer, context, 0);
    serve.status = list.status();
    if (list.ok()) serve.items = *list;
    return serve;
  };
  CanaryController controller(options, &metrics);
  const CanaryController::Outcome outcome =
      controller.Evaluate(0, f.store, 2, f.world.data, /*day=*/0);
  EXPECT_NE(outcome.verdict, CanaryController::Verdict::kRolledBack);
  EXPECT_EQ(outcome.canary_impressions, 0);
  EXPECT_GT(outcome.ignored_samples, 0);
  EXPECT_EQ(outcome.ignored_samples, sheds);
  EXPECT_EQ(metrics.Snapshot().CounterValue("canary_samples_ignored_total",
                                            {{"reason", "shed"}}),
            sheds);
}

TEST(CanaryOverloadTest, FallbackSourcedServesAreExcludedToo) {
  CanaryOverloadFixture f;
  obs::MetricRegistry metrics;
  CanaryController::Options options = f.Options();
  options.serve_hook = [&](data::RetailerId retailer,
                           const core::Context& context, int64_t version)
      -> CanaryController::CanaryServe {
    CanaryController::CanaryServe serve;
    auto list = f.store.ServeContextAtVersion(retailer, context, 0);
    serve.status = list.status();
    if (list.ok()) serve.items = *list;
    // Every canary-arm serve came from a fallback (brownout/LKG): it says
    // nothing about the staged batch.
    serve.degraded = version != 0;
    return serve;
  };
  CanaryController controller(options, &metrics);
  const CanaryController::Outcome outcome =
      controller.Evaluate(0, f.store, 2, f.world.data, /*day=*/0);
  EXPECT_NE(outcome.verdict, CanaryController::Verdict::kRolledBack);
  EXPECT_EQ(outcome.canary_impressions, 0);
  EXPECT_GT(outcome.ignored_samples, 0);
  EXPECT_GT(metrics.Snapshot().CounterValue("canary_samples_ignored_total",
                                            {{"reason", "degraded"}}),
            0);
}

// --- Load harness ------------------------------------------------------------

TEST(LoadGenTest, SameSeedRerunsAreByteIdentical) {
  serving::LoadGenOptions options;
  options.seed = 11;
  options.duration_seconds = 1.0;
  options.open_rps = 2000.0;
  options.probe_rps = 20.0;
  options.client_retries = 2;
  options.retry_budget_ratio = 0.1;
  options.admission.queue_capacity = 32;
  const serving::LoadGenReport a = serving::RunLoadGenerator(options);
  const serving::LoadGenReport b = serving::RunLoadGenerator(options);
  EXPECT_EQ(a.decision_hash, b.decision_hash);
  EXPECT_EQ(a.total_offered, b.total_offered);
  EXPECT_EQ(a.total_completed, b.total_completed);
  EXPECT_GT(a.total_completed, 0);

  options.seed = 12;  // a different seed must change the decision stream
  const serving::LoadGenReport c = serving::RunLoadGenerator(options);
  EXPECT_NE(a.decision_hash, c.decision_hash);
}

TEST(LoadGenTest, OverloadShedsProbesBeforeUsers) {
  serving::LoadGenOptions options;
  options.seed = 3;
  options.duration_seconds = 2.0;
  options.open_rps = 20000.0;  // far past the ~8000/s capacity
  options.probe_rps = 100.0;
  options.admission.queue_capacity = 32;
  const serving::LoadGenReport report = serving::RunLoadGenerator(options);
  const auto& probes = report.priorities[static_cast<int>(
      RequestPriority::kHealthProbe)];
  const auto& users = report.priorities[static_cast<int>(
      RequestPriority::kUserFacing)];
  EXPECT_GT(probes.shed, 0);
  EXPECT_GT(users.good, 0);
  // Strict ordering: every probe admission happened at lower occupancy
  // than the cheapest user-facing capacity shed.
  if (report.min_occupancy_user_shed <= 1.0) {
    EXPECT_LT(report.max_occupancy_probe_admitted,
              report.min_occupancy_user_shed);
  }
}

}  // namespace
}  // namespace sigmund
