#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/calibration.h"
#include "core/tuner.h"
#include "data/world_generator.h"

namespace sigmund::core {
namespace {

data::RetailerWorld MakeWorld(uint64_t seed = 3, int items = 100) {
  data::WorldConfig config;
  config.seed = seed;
  data::WorldGenerator generator(config);
  return generator.GenerateRetailer(0, items);
}

GridSpec SmallSpace() {
  GridSpec space;
  space.factors = {4, 8, 16};
  space.learning_rates = {0.3, 0.05, 0.005};
  space.lambdas_v = {0.3, 0.01};
  space.lambdas_vc = {0.01};
  space.sweep_taxonomy = false;
  space.num_epochs = 100;  // unused by the tuner's rung budgeting
  return space;
}

// --- SuccessiveHalving -----------------------------------------------------

TEST(SuccessiveHalvingTest, LeaderboardSortedAndComplete) {
  data::RetailerWorld world = MakeWorld();
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  TunerOptions options;
  options.initial_configs = 9;
  options.eta = 3;
  options.epochs_per_rung = 2;
  TunerOutcome outcome =
      SuccessiveHalving(world.data, split, SmallSpace(), options);
  EXPECT_EQ(outcome.leaderboard.size(), 9u);
  for (size_t i = 1; i < outcome.leaderboard.size(); ++i) {
    EXPECT_GE(outcome.leaderboard[i - 1].metrics.map_at_k,
              outcome.leaderboard[i].metrics.map_at_k);
  }
  EXPECT_GT(outcome.total_sgd_steps, 0);
  EXPECT_GE(outcome.rungs, 2);
}

TEST(SuccessiveHalvingTest, SurvivorsTrainMoreEpochs) {
  data::RetailerWorld world = MakeWorld(5);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  TunerOptions options;
  options.initial_configs = 9;
  options.eta = 3;
  options.epochs_per_rung = 2;
  TunerOutcome outcome =
      SuccessiveHalving(world.data, split, SmallSpace(), options);
  // The winner survived every rung; the tail was cut at rung 1.
  int max_epochs = 0, min_epochs = 1 << 30;
  for (const TrialResult& trial : outcome.leaderboard) {
    max_epochs = std::max(max_epochs, trial.stats.epochs_run);
    min_epochs = std::min(min_epochs, trial.stats.epochs_run);
  }
  EXPECT_EQ(min_epochs, options.epochs_per_rung);
  EXPECT_GE(max_epochs, options.epochs_per_rung * outcome.rungs);
  EXPECT_EQ(outcome.leaderboard.front().stats.epochs_run, max_epochs);
}

TEST(SuccessiveHalvingTest, SpendsFarLessThanFullGridBudget) {
  data::RetailerWorld world = MakeWorld(7);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  TunerOptions options;
  options.initial_configs = 9;
  options.eta = 3;
  options.epochs_per_rung = 2;
  TunerOutcome outcome =
      SuccessiveHalving(world.data, split, SmallSpace(), options);
  // Full grid at the survivor's depth would cost configs * rungs * epochs;
  // halving spends ~ configs * epochs * (1 + 1/eta + 1/eta^2 ...).
  TrainingData training_data(&split.train, world.data.num_items());
  int64_t full_grid_budget = 9LL * outcome.rungs *
                             options.epochs_per_rung *
                             training_data.num_positions();
  EXPECT_LT(outcome.total_sgd_steps, full_grid_budget * 2 / 3);
}

TEST(SuccessiveHalvingTest, SingleConfigDegeneratesGracefully) {
  data::RetailerWorld world = MakeWorld(9, 60);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  TunerOptions options;
  options.initial_configs = 1;
  options.epochs_per_rung = 1;
  GridSpec space = SmallSpace();
  space.factors = {8};
  space.learning_rates = {0.05};
  space.lambdas_v = {0.01};
  TunerOutcome outcome = SuccessiveHalving(world.data, split, space, options);
  EXPECT_EQ(outcome.leaderboard.size(), 1u);
  EXPECT_EQ(outcome.rungs, 1);
}

// --- ScoreCalibrator --------------------------------------------------------

TEST(ScoreCalibratorTest, RecoversPlantedSigmoid) {
  // Labels drawn from sigmoid(2s - 1): the fit should recover a ~ 2, b ~ -1.
  Rng rng(5);
  std::vector<double> scores;
  std::vector<bool> clicked;
  for (int n = 0; n < 20000; ++n) {
    double s = rng.UniformDouble(-3.0, 3.0);
    double p = 1.0 / (1.0 + std::exp(-(2.0 * s - 1.0)));
    scores.push_back(s);
    clicked.push_back(rng.Bernoulli(p));
  }
  StatusOr<ScoreCalibrator> calibrator = ScoreCalibrator::Fit(scores, clicked);
  ASSERT_TRUE(calibrator.ok());
  EXPECT_NEAR(calibrator->slope(), 2.0, 0.15);
  EXPECT_NEAR(calibrator->intercept(), -1.0, 0.12);
}

TEST(ScoreCalibratorTest, ProbabilityMonotoneWithPositiveSlope) {
  Rng rng(7);
  std::vector<double> scores;
  std::vector<bool> clicked;
  for (int n = 0; n < 2000; ++n) {
    double s = rng.UniformDouble(-2.0, 2.0);
    scores.push_back(s);
    clicked.push_back(rng.Bernoulli(s > 0 ? 0.7 : 0.2));
  }
  StatusOr<ScoreCalibrator> calibrator = ScoreCalibrator::Fit(scores, clicked);
  ASSERT_TRUE(calibrator.ok());
  EXPECT_GT(calibrator->slope(), 0.0);
  double previous = 0.0;
  for (double s = -3.0; s <= 3.0; s += 0.5) {
    double p = calibrator->Probability(s);
    EXPECT_GT(p, previous);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    previous = p;
  }
}

TEST(ScoreCalibratorTest, ThresholdDecision) {
  std::vector<double> scores = {-2, -1.5, -1, 1, 1.5, 2};
  std::vector<bool> clicked = {false, false, false, true, true, true};
  StatusOr<ScoreCalibrator> calibrator = ScoreCalibrator::Fit(scores, clicked);
  ASSERT_TRUE(calibrator.ok());
  EXPECT_TRUE(calibrator->ShouldDisplay(2.0, 0.5));
  EXPECT_FALSE(calibrator->ShouldDisplay(-2.0, 0.5));
}

TEST(ScoreCalibratorTest, RejectsDegenerateInputs) {
  EXPECT_EQ(ScoreCalibrator::Fit({1.0}, {true, false}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScoreCalibrator::Fit({1.0, 2.0}, {true, true}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      ScoreCalibrator::Fit({1.0, 2.0}, {false, false}).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(ScoreCalibratorTest, BetterLogLossThanUncalibratedBaseline) {
  Rng rng(11);
  std::vector<double> scores;
  std::vector<bool> clicked;
  for (int n = 0; n < 5000; ++n) {
    double s = rng.UniformDouble(-4.0, 4.0);
    double p = 1.0 / (1.0 + std::exp(-(0.5 * s + 1.0)));
    scores.push_back(s);
    clicked.push_back(rng.Bernoulli(p));
  }
  StatusOr<ScoreCalibrator> fitted = ScoreCalibrator::Fit(scores, clicked);
  ASSERT_TRUE(fitted.ok());
  // The calibrated model must beat the best constant predictor (base-rate
  // entropy) — i.e. it actually extracts signal from the score.
  double positives = 0;
  for (bool c : clicked) positives += c;
  double rate = positives / clicked.size();
  double base_loss =
      -(rate * std::log(rate) + (1 - rate) * std::log(1 - rate));
  EXPECT_LT(fitted->LogLoss(scores, clicked), base_loss - 0.05);
}

}  // namespace
}  // namespace sigmund::core
