// Kill-anywhere crash harness (DESIGN.md §13): a clean 3-retailer,
// 3-day run is recorded once — including a poisoned batch and a poisoned
// retrieval index so both canary-rollback seams are live — and then the
// whole scenario is replayed once per instrumented kill-point, with the
// simulated coordinator process dying at exactly that point, a fresh
// process recovering from the surviving filesystem, and the run carrying
// on to the end. Every replay must converge to the clean run's bytes:
// identical durable files (snapshots included), identical version
// chains, identical post-crash daily reports, zero failed serves from
// already-active versions, and no leaked staged versions or partials.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "common/crash_point.h"
#include "common/metrics.h"
#include "data/world_generator.h"
#include "pipeline/config_record.h"
#include "pipeline/service.h"
#include "retrieval/artifact.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::pipeline {
namespace {

constexpr int kRetailers = 3;
constexpr int kDays = 3;

// Items ranked by mean true affinity over the retailer's users, worst
// first: the head of this ranking is what a poisoned batch serves.
std::vector<core::ScoredItem> WorstItems(const data::RetailerWorld& world,
                                         int count) {
  std::vector<std::pair<double, data::ItemIndex>> scored;
  for (int item = 0; item < world.data.num_items(); ++item) {
    double sum = 0.0;
    for (int user = 0; user < world.data.num_users(); ++user) {
      sum += world.truth.Affinity(user, item);
    }
    scored.emplace_back(sum, static_cast<data::ItemIndex>(item));
  }
  std::sort(scored.begin(), scored.end());
  std::vector<core::ScoredItem> list;
  double score = 1.0;
  for (int i = 0; i < count && i < static_cast<int>(scored.size()); ++i) {
    list.push_back({scored[i].second, score});
    score -= 0.05;
  }
  return list;
}

// SFS decorator that poisons reads of exactly one path (the versioned
// batch copy the rollout stages), replacing every recommendation list
// with the globally least-liked items and re-framing the checksums.
// Stateless by design: unlike a write-verify-aware poisoner, its
// behavior cannot depend on how far a crashed process got, so reference
// and crash-replay runs read identical bytes.
class PoisonTargetFileSystem : public sfs::SharedFileSystem {
 public:
  PoisonTargetFileSystem(sfs::SharedFileSystem* base, std::string target,
                         std::vector<core::ScoredItem> poison)
      : base_(base), target_(std::move(target)), poison_(std::move(poison)) {}

  Status Write(const std::string& path, const std::string& data) override {
    return base_->Write(path, data);
  }
  StatusOr<std::string> Read(const std::string& path) const override {
    StatusOr<std::string> blob = base_->Read(path);
    if (!blob.ok() || path != target_) return blob;
    return PoisonBlob(*blob);
  }
  Status Delete(const std::string& path) override {
    return base_->Delete(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  StatusOr<std::vector<std::string>> List(
      const std::string& prefix) const override {
    return base_->List(prefix);
  }
  StatusOr<int64_t> FileSize(const std::string& path) const override {
    return base_->FileSize(path);
  }

 private:
  std::string PoisonBlob(const std::string& stored) const {
    const bool framed = LooksLikeChecksummedFrame(stored);
    std::string payload = stored;
    if (framed) {
      StatusOr<std::string> unwrapped = ReadChecksummedFrame(stored);
      if (!unwrapped.ok()) return stored;
      payload = *unwrapped;
    }
    std::string out;
    size_t start = 0;
    while (start < payload.size()) {
      size_t end = payload.find('\n', start);
      if (end == std::string::npos) end = payload.size();
      StatusOr<core::ItemRecommendations> recs =
          core::ItemRecommendations::Deserialize(
              payload.substr(start, end - start));
      if (recs.ok()) {
        recs->view_based = poison_;
        recs->purchase_based = poison_;
        recs->view_based_late = poison_;
        out += recs->Serialize();
        out += '\n';
      }
      start = end + 1;
    }
    return framed ? WriteChecksummedFrame(out) : out;
  }

  sfs::SharedFileSystem* base_;
  std::string target_;
  std::vector<core::ScoredItem> poison_;
};

struct Outcome {
  // Per-day report strings; "" when the day's report was lost to a crash
  // after the day had durably committed (the one artifact a post-commit
  // crash legitimately loses).
  std::vector<std::string> reports;
  std::vector<DailyReport> report_structs;
  // Per-day active-version trails per plane.
  std::vector<std::map<data::RetailerId, int64_t>> store_versions;
  std::vector<std::map<data::RetailerId, int64_t>> index_versions;
  // Final durable bytes, ledger day-logs excluded (the journal records
  // *how* the day ran — a recovered day legitimately appends a different
  // trail; everything else, control-state snapshots included, must
  // match).
  std::map<std::string, std::string> files;
  std::vector<std::string> sequence;  // kill-points hit, in order
  int crashes = 0;
  int crash_day = -1;
  int64_t failed_serves = 0;
  int64_t units_skipped = 0;
};

// Runs the whole scenario, crashing at the `crash_at`-th kill-point hit
// (1-based; 0 = never). The crash abandons the service object mid-stage
// — in-memory state dies, the shared filesystem survives — and a fresh
// service recovers and resumes.
Outcome RunScenario(int64_t crash_at) {
  Outcome outcome;
  data::WorldConfig config;
  config.seed = 29;
  data::WorldGenerator generator(config);
  std::vector<data::RetailerWorld> worlds;
  worlds.push_back(generator.GenerateRetailer(0, 60));
  worlds.push_back(generator.GenerateRetailer(1, 50));
  worlds.push_back(generator.GenerateRetailer(2, 70));

  sfs::MemFileSystem base;
  // Retailer 1's day-1 staged copy (its second version) is poisoned:
  // intact checksums, catastrophic content — only the live canary can
  // catch it, and the rollback/discard seams go under crash test.
  PoisonTargetFileSystem fs(&base, RecommendationVersionPath(1, 2),
                            WorstItems(worlds[1], 5));
  SimClock clock;
  CrashInjector injector;
  if (crash_at > 0) injector.ArmGlobal(crash_at);

  int current_day = 0;
  auto make_options = [&] {
    SigmundService::Options options;
    options.sweep.grid.factors = {4, 8};
    options.sweep.grid.lambdas_v = {0.1, 0.01};
    options.sweep.grid.lambdas_vc = {0.01};
    options.sweep.grid.sweep_taxonomy = false;
    options.sweep.grid.sweep_brand = false;
    options.sweep.grid.num_epochs = 3;
    options.sweep.incremental_top_k = 2;
    options.training.num_map_tasks = 4;
    options.training.max_parallel_tasks = 2;
    options.training.checkpoint_interval_seconds = 0.0;
    options.inference.inference.top_k = 5;
    options.dataqual.enabled = true;
    options.retrieval.enabled = true;
    // Small worlds need a dense index for the degraded-build canary to
    // see the damage: probe every list and serve enough neighbors that
    // the negated vectors actually surface the worst items.
    options.retrieval.ann.num_lists = 8;
    options.retrieval.reader.top_k = 5;
    options.retrieval.reader.nprobe = 4;
    options.canary.enabled = true;
    options.canary.canary_fraction = 0.5;
    options.canary.min_relative_ctr = 0.8;
    // The day-1 degraded index serves mediocre rather than catastrophic
    // lists (z ~ -3.2 over the full canary run on these small worlds), so
    // the sequential test needs a slightly lower boundary than the 4.0
    // default to call it; the poisoned batch fails by a mile either way.
    options.canary.early_stop_z = 3.0;
    options.canary.seed = 11;
    // Enough simulated traffic that even the small retailers' arms clear
    // the canary's noise floor.
    options.canary.max_impressions = 2400;
    options.canary.oracle = [&worlds](data::RetailerId id) {
      return &worlds[id].truth;
    };
    // Degrade retailer 2's day-1 index build: the ANN plane ranks the
    // model's worst items first, the retrieval canary rolls it back, and
    // the index discard seams go under crash test too.
    options.retrieval.build_hook_for_testing =
        [&current_day](data::RetailerId id,
                       retrieval::IndexArtifact* artifact) {
          if (current_day == 1 && id == 2) {
            for (float& v : artifact->context_vectors) v = -v;
          }
        };
    options.ledger.enabled = true;
    options.clock = &clock;
    options.crash = &injector;
    return options;
  };

  auto boot = [&] {
    auto service = std::make_unique<SigmundService>(&fs, make_options());
    StatusOr<SigmundService::RecoveryReport> recovered =
        service->RecoverDay();
    EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
    for (data::RetailerWorld& world : worlds) {
      service->UpsertRetailer(&world.data);
    }
    return service;
  };

  std::unique_ptr<SigmundService> service = boot();
  for (int day = 0; day < kDays; ++day) {
    if (day > 0) {
      for (data::RetailerWorld& world : worlds) {
        data::AdvanceOneDay(generator, &world, /*new_items=*/2,
                            /*seed=*/500 + day);
      }
    }
    current_day = day;
    for (data::RetailerWorld& world : worlds) {
      service->UpsertRetailer(&world.data);
    }
    bool day_done = false;
    while (!day_done) {
      try {
        StatusOr<DailyReport> report = service->RunDaily();
        EXPECT_TRUE(report.ok())
            << "day " << day << ": " << report.status().ToString();
        if (!report.ok()) return outcome;
        outcome.units_skipped += report->replay_units_skipped;
        outcome.reports.push_back(report->ToString());
        outcome.report_structs.push_back(*std::move(report));
        day_done = true;
      } catch (const CrashException& e) {
        ++outcome.crashes;
        outcome.crash_day = day;
        // The process died at e.point. A fresh process recovers from the
        // surviving filesystem.
        service = boot();
        // Availability through the crash: every already-active version
        // must serve immediately after recovery.
        for (data::RetailerId id = 0; id < kRetailers; ++id) {
          if (service->store().RetailerVersion(id) > 0 &&
              !service->store()
                   .Lookup(id, 0, serving::RecommendationKind::kViewBased)
                   .ok()) {
            ++outcome.failed_serves;
          }
        }
        if (service->days_run() > day) {
          // The crash landed after the day's snapshot commit: the day is
          // durably complete, only its report died with the process.
          outcome.reports.push_back("");
          outcome.report_structs.emplace_back();
          day_done = true;
        }
      }
    }
    std::map<data::RetailerId, int64_t> store_versions, index_versions;
    for (data::RetailerId id = 0; id < kRetailers; ++id) {
      store_versions[id] = service->store().RetailerVersion(id);
      index_versions[id] = service->retrieval_reader()->RetailerVersion(id);
      if (!service->store()
               .Lookup(id, 0, serving::RecommendationKind::kViewBased)
               .ok()) {
        ++outcome.failed_serves;
      }
    }
    outcome.store_versions.push_back(std::move(store_versions));
    outcome.index_versions.push_back(std::move(index_versions));
  }

  outcome.sequence = injector.Sequence();
  StatusOr<std::vector<std::string>> paths = base.List("");
  EXPECT_TRUE(paths.ok());
  if (paths.ok()) {
    const std::string ledger_prefix =
        make_options().ledger.ledger.dir + "/";
    for (const std::string& path : *paths) {
      if (path.compare(0, ledger_prefix.size(), ledger_prefix) == 0) {
        continue;
      }
      StatusOr<std::string> bytes = base.Read(path);
      outcome.files[path] = bytes.ok() ? *bytes : "<unreadable>";
    }
  }
  return outcome;
}

void ExpectSameFiles(const Outcome& clean, const Outcome& crashed,
                     const std::string& label) {
  for (const auto& [path, bytes] : clean.files) {
    auto it = crashed.files.find(path);
    if (it == crashed.files.end()) {
      ADD_FAILURE() << label << ": missing file " << path;
    } else if (it->second != bytes) {
      ADD_FAILURE() << label << ": bytes differ for " << path << " ("
                    << bytes.size() << " vs " << it->second.size() << ")";
    }
  }
  for (const auto& [path, bytes] : crashed.files) {
    if (clean.files.find(path) == clean.files.end()) {
      ADD_FAILURE() << label << ": leaked file " << path << " ("
                    << bytes.size() << " bytes)";
    }
  }
}

TEST(RecoveryChaosTest, KillAnywhereConvergesToCleanRunBytes) {
  const Outcome clean = RunScenario(/*crash_at=*/0);
  ASSERT_EQ(clean.crashes, 0);
  ASSERT_EQ(clean.reports.size(), static_cast<size_t>(kDays));
  ASSERT_EQ(clean.failed_serves, 0);
  ASSERT_FALSE(clean.files.empty());
  ASSERT_FALSE(clean.sequence.empty());
  std::printf("[chaos] kill sweep: %zu scenarios\n", clean.sequence.size());

  // The scenario must actually exercise both rollback planes, or the
  // discard seams would silently drop out of the kill sweep.
  EXPECT_EQ(clean.report_structs[1].canary_rollbacks, 1);
  EXPECT_EQ(clean.report_structs[1].retrieval_rollbacks, 1);
  auto hit = [&](const char* point) {
    return std::count(clean.sequence.begin(), clean.sequence.end(),
                      std::string(point));
  };
  EXPECT_GT(hit("day.start"), 0);
  EXPECT_GT(hit("train.done"), 0);
  EXPECT_GT(hit("batch.intent"), 0);
  EXPECT_GT(hit("batch.activated"), 0);
  EXPECT_GT(hit("batch.discarded"), 0);
  EXPECT_GT(hit("index.discarded"), 0);
  EXPECT_GT(hit("day.snapshot_committed"), 0);
  EXPECT_GT(hit("day.complete"), 0);

  // Kill the run at every instrumented point, once per point.
  for (size_t i = 1; i <= clean.sequence.size(); ++i) {
    const std::string label = StrFormat(
        "kill %zu/%zu at %s", i, clean.sequence.size(),
        clean.sequence[i - 1].c_str());
    SCOPED_TRACE(label);
    const Outcome crashed = RunScenario(static_cast<int64_t>(i));
    ASSERT_EQ(crashed.crashes, 1);
    EXPECT_EQ(crashed.failed_serves, 0);
    ExpectSameFiles(clean, crashed, label);
    EXPECT_EQ(crashed.store_versions, clean.store_versions);
    EXPECT_EQ(crashed.index_versions, clean.index_versions);
    ASSERT_EQ(crashed.reports.size(), static_cast<size_t>(kDays));
    for (int day = 0; day < kDays; ++day) {
      if (day == crashed.crash_day) continue;  // recovered=1 / lost report
      EXPECT_EQ(crashed.reports[day], clean.reports[day])
          << "day " << day << " report diverged";
    }
  }
}

// Clean cold start with the ledger disabled still sweeps `*.tmp`
// partials — the startup GC is not tied to ledger mode.
TEST(RecoveryChaosTest, StartupGcSweepsPartialsWithoutLedger) {
  sfs::MemFileSystem fs;
  ASSERT_TRUE(fs.Write("recommendations/r0.v000002.tmp", "partial").ok());
  ASSERT_TRUE(fs.Write("retrieval/r1.v000001.tmp", "partial").ok());
  ASSERT_TRUE(fs.Write("recommendations/r0", "committed").ok());

  SigmundService::Options options;  // ledger disabled
  SigmundService service(&fs, options);
  StatusOr<SigmundService::RecoveryReport> recovered = service.RecoverDay();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->resumed);
  EXPECT_EQ(recovered->tmp_files_swept, 2);
  EXPECT_FALSE(fs.Exists("recommendations/r0.v000002.tmp"));
  EXPECT_FALSE(fs.Exists("retrieval/r1.v000001.tmp"));
  EXPECT_TRUE(fs.Exists("recommendations/r0"));
  EXPECT_EQ(service.metrics()->Snapshot().CounterValue(
                "pipeline_orphans_gc_total", {{"kind", "tmp"}}),
            2);
}

// A ledger-enabled cold start on an empty filesystem is a no-op
// recovery: nothing swept, nothing resumed, day counter at zero.
TEST(RecoveryChaosTest, ColdStartRecoveryIsNoop) {
  sfs::MemFileSystem fs;
  SigmundService::Options options;
  options.ledger.enabled = true;
  SigmundService service(&fs, options);
  StatusOr<SigmundService::RecoveryReport> recovered = service.RecoverDay();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->resumed);
  EXPECT_EQ(recovered->day, 0);
  EXPECT_EQ(recovered->snapshot_day, -1);
  EXPECT_EQ(recovered->tmp_files_swept, 0);
  EXPECT_EQ(recovered->versions_rehydrated, 0);
  EXPECT_EQ(service.days_run(), 0);
}

}  // namespace
}  // namespace sigmund::pipeline
