// Cross-cutting property sweeps (TEST_P): invariants that must hold for
// every model architecture and every world shape, not just the defaults
// the unit tests use.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/candidate_selector.h"
#include "core/grid_search.h"
#include "core/inference.h"
#include "data/serialization.h"
#include "data/world_generator.h"

namespace sigmund {
namespace {

// --- Model round trip across architectures -----------------------------------

// (factors, use_taxonomy, use_brand, use_price)
using Arch = std::tuple<int, bool, bool, bool>;

class ModelArchTest : public ::testing::TestWithParam<Arch> {};

TEST_P(ModelArchTest, SerializeRoundTripAndScoreParity) {
  auto [factors, taxonomy, brand, price] = GetParam();
  data::WorldConfig config;
  config.seed = 3;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 80);

  core::HyperParams params;
  params.num_factors = factors;
  params.use_taxonomy = taxonomy;
  params.use_brand = brand;
  params.use_price = price;
  core::BprModel model(&world.data.catalog, params);
  Rng rng(7);
  model.InitRandom(&rng);

  StatusOr<core::BprModel> restored =
      core::BprModel::Deserialize(model.Serialize(), &world.data.catalog);
  ASSERT_TRUE(restored.ok());
  std::vector<float> user_vec(factors);
  model.UserEmbedding({{1, data::ActionType::kView},
                       {2, data::ActionType::kCart}},
                      user_vec.data());
  for (data::ItemIndex i = 0; i < world.data.num_items(); i += 7) {
    EXPECT_NEAR(restored->Score(user_vec.data(), i),
                model.Score(user_vec.data(), i), 1e-7);
  }
}

TEST_P(ModelArchTest, TrainingStaysFiniteAndMetricsBounded) {
  auto [factors, taxonomy, brand, price] = GetParam();
  data::WorldConfig config;
  config.seed = 11;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 80);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);

  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params.num_factors = factors;
  request.params.use_taxonomy = taxonomy;
  request.params.use_brand = brand;
  request.params.use_price = price;
  request.params.num_epochs = 3;
  StatusOr<core::TrainOutput> output = core::TrainOneModel(request);
  ASSERT_TRUE(output.ok());
  for (int r = 0; r < output->model.item_embeddings().rows(); ++r) {
    for (int k = 0; k < factors; ++k) {
      ASSERT_TRUE(std::isfinite(output->model.item_embeddings().row(r)[k]));
    }
  }
  EXPECT_GE(output->metrics.map_at_k, 0.0);
  EXPECT_LE(output->metrics.map_at_k, 1.0);
  EXPECT_GE(output->metrics.auc, 0.0);
  EXPECT_LE(output->metrics.auc, 1.0);
  EXPECT_GE(output->metrics.mean_rank, 1.0);
  // MAP <= recall@k always (AP <= 1 per hit).
  EXPECT_LE(output->metrics.map_at_k, output->metrics.recall_at_k + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ModelArchTest,
    ::testing::Values(Arch{1, false, false, false},
                      Arch{4, true, false, false},
                      Arch{8, false, true, true},
                      Arch{16, true, true, true},
                      Arch{64, true, false, true}));

// --- World shapes -------------------------------------------------------------

// (seed, items, taxonomy_depth, bundles_per_item)
using Shape = std::tuple<uint64_t, int, int, int>;

class WorldShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(WorldShapeTest, ShardRoundTripExactlyPreservesData) {
  auto [seed, items, depth, bundles] = GetParam();
  data::WorldConfig config;
  config.seed = seed;
  config.taxonomy_depth = depth;
  config.bundles_per_item = bundles;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, items);

  std::string bytes = data::SerializeRetailerData(world.data);
  StatusOr<data::RetailerData> restored =
      data::DeserializeRetailerData(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_items(), world.data.num_items());
  EXPECT_EQ(restored->TotalInteractions(), world.data.TotalInteractions());
  // Popularity vectors (a full-content proxy) identical.
  EXPECT_EQ(restored->ItemPopularity(), world.data.ItemPopularity());
  // Double round trip is byte-stable.
  EXPECT_EQ(data::SerializeRetailerData(*restored), bytes);
}

TEST_P(WorldShapeTest, CandidateSelectionAlwaysValidAndDeterministic) {
  auto [seed, items, depth, bundles] = GetParam();
  data::WorldConfig config;
  config.seed = seed;
  config.taxonomy_depth = depth;
  config.bundles_per_item = bundles;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, items);

  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      world.data.histories, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      world.data.histories, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  core::CandidateSelector::Options options;
  for (data::ItemIndex i = 0; i < world.data.num_items();
       i += std::max(1, world.data.num_items() / 15)) {
    auto a = selector.ViewBased(i, options);
    auto b = selector.ViewBased(i, options);
    EXPECT_EQ(a, b);  // deterministic
    for (data::ItemIndex candidate : a) {
      ASSERT_GE(candidate, 0);
      ASSERT_LT(candidate, world.data.num_items());
    }
    auto purchase = selector.PurchaseBased(i, options);
    for (data::ItemIndex candidate : purchase) {
      ASSERT_GE(candidate, 0);
      ASSERT_LT(candidate, world.data.num_items());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WorldShapeTest,
    ::testing::Values(Shape{1, 40, 2, 0}, Shape{2, 150, 3, 0},
                      Shape{3, 150, 3, 2}, Shape{4, 400, 4, 1},
                      Shape{5, 60, 1, 3}));

// --- Grid search invariants ----------------------------------------------------

class GridSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridSeedTest, GridIsDeduplicatedAndWithinCap) {
  data::WorldConfig config;
  config.seed = GetParam();
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 60);
  core::GridSpec spec;
  spec.factors = {4, 8, 16};
  spec.lambdas_v = {0.1, 0.01};
  spec.lambdas_vc = {0.1, 0.01};
  spec.learning_rates = {0.1, 0.01};
  spec.max_configs = 20;
  auto grid = core::BuildGrid(spec, world.data.catalog, GetParam());
  EXPECT_LE(grid.size(), 20u);
  // No duplicate configurations.
  std::set<std::string> seen;
  for (const core::HyperParams& params : grid) {
    EXPECT_TRUE(seen.insert(params.Serialize()).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridSeedTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace sigmund
