// Longitudinal integration test: the whole service run for five
// consecutive days with daily data arrival, catalog churn, retailer
// sign-ups, a periodic full-sweep restart and the quality guardrail
// active — the closest this repo gets to the paper's production life.

#include <deque>

#include <gtest/gtest.h>

#include "data/world_generator.h"
#include "pipeline/service.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::pipeline {
namespace {

TEST(LongitudinalTest, FiveDaysOfProduction) {
  data::WorldConfig config;
  config.seed = 71;
  data::WorldGenerator generator(config);
  // deque: the registry borrows pointers into this container, so
  // growth must not relocate existing elements.
  std::deque<data::RetailerWorld> worlds;
  worlds.push_back(generator.GenerateRetailer(0, 60));
  worlds.push_back(generator.GenerateRetailer(1, 150));

  sfs::MemFileSystem fs;
  SigmundService::Options options;
  options.sweep.grid.factors = {8, 16};
  options.sweep.grid.lambdas_v = {0.1, 0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 4;
  options.sweep.incremental_top_k = 2;
  options.training.num_map_tasks = 4;
  options.training.max_parallel_tasks = 2;
  options.training.checkpoint_interval_seconds = 60.0;
  options.training.simulated_seconds_per_step = 0.05;
  options.training.preemption_prob_per_epoch = 0.1;
  options.full_sweep_every_days = 3;
  options.guard_quality = true;

  SigmundService service(&fs, options);
  for (data::RetailerWorld& world : worlds) {
    service.UpsertRetailer(&world.data);
  }

  std::vector<DailyReport> reports;
  for (int day = 0; day < 5; ++day) {
    // Data arrives and catalogs churn every day after the first.
    if (day > 0) {
      for (data::RetailerWorld& world : worlds) {
        data::AdvanceOneDay(generator, &world, /*new_items=*/3,
                            1000 + day * 10 + world.data.id);
        service.UpsertRetailer(&world.data);
      }
    }
    // A retailer signs up on day 2.
    if (day == 2) {
      worlds.push_back(generator.GenerateRetailer(2, 40));
      service.UpsertRetailer(&worlds.back().data);
    }
    StatusOr<DailyReport> report = service.RunDaily();
    ASSERT_TRUE(report.ok()) << "day " << day;
    reports.push_back(*report);
  }

  // Day 0: full sweep over 2 retailers -> 2 * 4 configs.
  EXPECT_TRUE(reports[0].full_sweep);
  EXPECT_EQ(reports[0].models_trained, 8);
  // Day 1: incremental, top-2 each.
  EXPECT_FALSE(reports[1].full_sweep);
  EXPECT_EQ(reports[1].models_trained, 4);
  // Day 2: incremental + new retailer's full grid.
  EXPECT_FALSE(reports[2].full_sweep);
  EXPECT_EQ(reports[2].new_retailers, 1);
  EXPECT_EQ(reports[2].models_trained, 2 * 2 + 4);
  // Day 3: periodic full-sweep restart over 3 retailers.
  EXPECT_TRUE(reports[3].full_sweep);
  EXPECT_EQ(reports[3].models_trained, 12);
  // Day 4: incremental again.
  EXPECT_FALSE(reports[4].full_sweep);
  EXPECT_EQ(reports[4].models_trained, 6);

  // Serving stayed consistent throughout: every retailer is loaded with
  // its latest catalog size, and versions moved daily (no guardrail
  // hold-back expected on healthy data, but tolerate at most a couple).
  EXPECT_EQ(service.store().num_retailers(), 3);
  int64_t total_items = 0;
  for (const data::RetailerWorld& world : worlds) {
    total_items += world.data.num_items();
  }
  int64_t holds = 0;
  for (const DailyReport& report : reports) {
    holds += report.quality_regressions;
  }
  if (holds == 0) {
    EXPECT_EQ(service.store().num_items(), total_items);
  }
  EXPECT_LE(holds, 2);
  EXPECT_GE(service.store().RetailerVersion(0), 4);

  // Quality did not collapse over the week: the last day's mean best MAP
  // is within a reasonable band of the first full sweep's.
  EXPECT_GT(reports[4].mean_best_map, 0.3 * reports[0].mean_best_map);

  // Preemptions happened and every one was recovered.
  int64_t preemptions = 0, restores = 0;
  for (const DailyReport& report : reports) {
    preemptions += report.preemptions;
    restores += report.restored_from_checkpoint;
  }
  EXPECT_GT(preemptions, 0);
  // A preemption before the first checkpoint restarts from scratch, so
  // restores <= preemptions; most preemptions should recover though.
  EXPECT_GT(restores, 0);
  EXPECT_LE(restores, preemptions);
}

}  // namespace
}  // namespace sigmund::pipeline
