#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"

#include "data/world_generator.h"
#include "pipeline/inference_job.h"
#include "pipeline/sweep.h"
#include "pipeline/training_job.h"
#include "sfs/mem_filesystem.h"
#include "sfs/reliable_io.h"

namespace sigmund::pipeline {
namespace {

struct JobFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 19;
    return config;
  }()};
  data::RetailerWorld r0 = generator.GenerateRetailer(0, 60);
  data::RetailerWorld r1 = generator.GenerateRetailer(1, 120);
  RetailerRegistry registry;
  sfs::MemFileSystem fs;

  JobFixture() {
    registry.Upsert(&r0.data);
    registry.Upsert(&r1.data);
  }

  std::vector<ConfigRecord> SmallPlan() {
    SweepPlanner::Options options;
    options.grid.factors = {4, 8};
    options.grid.lambdas_v = {0.01};
    options.grid.lambdas_vc = {0.01};
    options.grid.sweep_taxonomy = false;
    options.grid.sweep_brand = false;
    options.grid.num_epochs = 3;
    options.shuffle = true;
    SweepPlanner planner(options);
    return planner.PlanFullSweep(registry);
  }

  static TrainingJob::Options FastTraining() {
    TrainingJob::Options options;
    options.num_map_tasks = 4;
    options.max_parallel_tasks = 2;
    options.checkpoint_interval_seconds = 0.0;  // off unless a test enables
    return options;
  }
};

TEST(TrainingJobTest, TrainsEveryRecordAndWritesModels) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  TrainingJob job(&f.fs, &f.registry, JobFixture::FastTraining());
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), plan.size());
  for (const ConfigRecord& record : *results) {
    EXPECT_TRUE(record.trained);
    EXPECT_GE(record.map_at_10, 0.0);
    EXPECT_GT(record.epochs_run, 0);
    EXPECT_GT(record.sgd_steps, 0);
    EXPECT_TRUE(f.fs.Exists(record.model_path));
    // Model bytes parse against the retailer catalog.
    const data::Catalog* catalog =
        record.retailer == 0 ? &f.r0.data.catalog : &f.r1.data.catalog;
    StatusOr<std::string> bytes =
        sfs::ReadChecksummedFile(&f.fs, record.model_path);
    ASSERT_TRUE(bytes.ok());
    EXPECT_TRUE(core::BprModel::Deserialize(*bytes, catalog).ok());
  }
  EXPECT_EQ(job.stats().models_trained.load(),
            static_cast<int64_t>(plan.size()));
  // No checkpoints requested, none written.
  EXPECT_EQ(job.stats().checkpoints_written.load(), 0);
}

TEST(TrainingJobTest, CheckpointsWrittenOnSimulatedInterval) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  TrainingJob::Options options = JobFixture::FastTraining();
  options.checkpoint_interval_seconds = 60.0;
  // Make one epoch take ~100 simulated seconds so every epoch checkpoints.
  options.simulated_seconds_per_step = 100.0 / 400.0;
  TrainingJob job(&f.fs, &f.registry, options);
  ASSERT_TRUE(job.Run(plan).ok());
  EXPECT_GT(job.stats().checkpoints_written.load(), 0);
  // Checkpoints are GCed after each successful model commit.
  EXPECT_TRUE(f.fs.List("checkpoints/")->empty());
}

TEST(TrainingJobTest, MidTrainingPreemptionRecoversViaCheckpoints) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  for (ConfigRecord& record : plan) record.params.num_epochs = 6;

  TrainingJob::Options options = JobFixture::FastTraining();
  options.preemption_prob_per_epoch = 0.3;
  options.checkpoint_interval_seconds = 1.0;
  options.simulated_seconds_per_step = 1.0;  // checkpoint every epoch
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  for (const ConfigRecord& record : *results) {
    EXPECT_TRUE(record.trained);
    EXPECT_EQ(record.epochs_run, 6);
  }
  EXPECT_GT(job.stats().preemptions.load(), 0);
  EXPECT_EQ(job.stats().restored_from_checkpoint.load(),
            job.stats().preemptions.load());
}

// --- Lease-churn training (preemptible cells).

// Serializes results for byte-comparison between runs.
std::string Fingerprint(const std::vector<ConfigRecord>& results) {
  std::string out;
  for (const ConfigRecord& record : results) {
    out += record.Serialize();
    out += '\n';
  }
  return out;
}

TEST(TrainingJobTest, ChurnEvictsWithGraceCheckpointsAndFinishes) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  for (ConfigRecord& record : plan) record.params.num_epochs = 6;

  TrainingJob::Options options = JobFixture::FastTraining();
  options.simulated_seconds_per_step = 1.0;  // 1 epoch ~ data size seconds
  // Aggressive churn: mean inter-eviction well under a model's training
  // time. The grace window spans a whole epoch, so the boundary check
  // always catches the notice in time for a final checkpoint.
  options.churn.preemption_rate_per_hour = 30.0;
  options.churn.eviction_grace_seconds = 1e6;
  options.churn.escalate_after_evictions = 4;
  options.churn.seed = 5;
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), plan.size());
  for (const ConfigRecord& record : *results) {
    EXPECT_TRUE(record.trained);
    EXPECT_EQ(record.epochs_run, 6);
    EXPECT_TRUE(f.fs.Exists(record.model_path));
  }
  EXPECT_GT(job.stats().evictions.load(), 0);
  // Every eviction was caught in the grace window -> flushed a final
  // checkpoint and resumed from it (no hard evictions).
  EXPECT_EQ(job.stats().eviction_grace_checkpoints.load(),
            job.stats().evictions.load());
  EXPECT_EQ(job.stats().hard_evictions.load(), 0);
  EXPECT_EQ(job.stats().restored_from_checkpoint.load(),
            job.stats().evictions.load());
  // Checkpoint GC still ran after each successful commit.
  EXPECT_TRUE(f.fs.List("checkpoints/")->empty());
}

TEST(TrainingJobTest, ZeroGraceMeansHardEvictionsButTrainingSurvives) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  for (ConfigRecord& record : plan) record.params.num_epochs = 4;

  TrainingJob::Options options = JobFixture::FastTraining();
  options.simulated_seconds_per_step = 1.0;
  options.checkpoint_interval_seconds = 1.0;  // periodic safety net
  options.churn.preemption_rate_per_hour = 30.0;
  options.churn.eviction_grace_seconds = 0.0;  // notice always missed
  options.churn.escalate_after_evictions = 3;
  options.churn.seed = 11;
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  for (const ConfigRecord& record : *results) {
    EXPECT_TRUE(record.trained);
    EXPECT_EQ(record.epochs_run, 4);
  }
  EXPECT_GT(job.stats().evictions.load(), 0);
  EXPECT_EQ(job.stats().eviction_grace_checkpoints.load(), 0);
  EXPECT_EQ(job.stats().hard_evictions.load(),
            job.stats().evictions.load());
}

TEST(TrainingJobTest, RelentlessChurnEscalatesTasksToRegularPriority) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  for (ConfigRecord& record : plan) record.params.num_epochs = 4;

  TrainingJob::Options options = JobFixture::FastTraining();
  options.simulated_seconds_per_step = 1.0;
  // Mean inter-eviction far below one epoch: every lease is revoked at
  // the first boundary check, so without escalation nothing would finish
  // before the preemption budget ran out.
  options.churn.preemption_rate_per_hour = 36000.0;
  options.churn.eviction_grace_seconds = 1e6;
  options.churn.escalate_after_evictions = 2;
  options.churn.seed = 13;
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  for (const ConfigRecord& record : *results) {
    EXPECT_TRUE(record.trained);
    EXPECT_EQ(record.epochs_run, 4);
    // Escalation (not budget exhaustion) is what saved these models.
    EXPECT_FALSE(record.degraded);
  }
  EXPECT_GT(job.stats().priority_escalations.load(), 0);
  EXPECT_EQ(job.stats().preemption_budget_exhausted.load(), 0);
}

TEST(TrainingJobTest, ChurnTrainingIsDeterministic) {
  auto run = [] {
    JobFixture f;
    std::vector<ConfigRecord> plan = f.SmallPlan();
    for (ConfigRecord& record : plan) record.params.num_epochs = 5;
    TrainingJob::Options options = JobFixture::FastTraining();
    options.simulated_seconds_per_step = 1.0;
    options.checkpoint_interval_seconds = 2.0;
    options.churn.preemption_rate_per_hour = 30.0;
    options.churn.eviction_grace_seconds = 1e6;
    options.churn.restart_overhead_seconds = 30.0;
    options.churn.seed = 17;
    TrainingJob job(&f.fs, &f.registry, options);
    StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
    EXPECT_TRUE(results.ok());
    return std::make_pair(Fingerprint(*results),
                          job.stats().evictions.load());
  };
  auto [first, first_evictions] = run();
  auto [second, second_evictions] = run();
  // Byte-identical outputs and identical churn history across reruns:
  // eviction schedules depend only on (seed, task key, incarnation),
  // never on thread interleaving.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_evictions, second_evictions);
  EXPECT_GT(first_evictions, 0);
}

TEST(TrainingJobTest, PreemptionBudgetExhaustionMarksRecordsDegraded) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  for (ConfigRecord& record : plan) record.params.num_epochs = 6;

  TrainingJob::Options options = JobFixture::FastTraining();
  options.preemption_prob_per_epoch = 1.0;  // every epoch tries to kill
  options.preemption_budget = 2;
  options.checkpoint_interval_seconds = 1.0;
  options.simulated_seconds_per_step = 1.0;  // checkpoint every epoch
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  for (const ConfigRecord& record : *results) {
    // Injection stops once the budget is gone, so training completes —
    // but the record carries the degraded flag downstream.
    EXPECT_TRUE(record.trained);
    EXPECT_TRUE(record.degraded);
    EXPECT_EQ(record.epochs_run, 6);
  }
  EXPECT_EQ(job.stats().preemption_budget_exhausted.load(),
            static_cast<int64_t>(plan.size()));
  EXPECT_EQ(job.stats().degraded_records.load(),
            static_cast<int64_t>(plan.size()));
}

TEST(TrainingJobTest, DeadlineStopsTrainingButCommitsPartialModel) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  for (ConfigRecord& record : plan) record.params.num_epochs = 8;

  TrainingJob::Options options = JobFixture::FastTraining();
  options.simulated_seconds_per_step = 1.0;  // 1 epoch ~ data size seconds
  // Deadline inside the training run: a few epochs fit, eight do not.
  options.per_model_deadline_seconds = 700.0;
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  int degraded = 0;
  for (const ConfigRecord& record : *results) {
    EXPECT_TRUE(record.trained);
    EXPECT_TRUE(f.fs.Exists(record.model_path));  // availability held
    if (record.degraded) {
      ++degraded;
      EXPECT_LT(record.epochs_run, 8);
      EXPECT_GT(record.epochs_run, 0);
    }
  }
  EXPECT_GT(degraded, 0);
  EXPECT_GT(job.stats().deadline_exceeded.load(), 0);
  EXPECT_EQ(job.stats().degraded_records.load(), degraded);
}

TEST(TrainingJobTest, MapTaskFailuresRetrySuccessfully) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  TrainingJob::Options options = JobFixture::FastTraining();
  options.map_task_failure_prob = 0.4;
  options.max_attempts_per_task = 30;
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), plan.size());
  EXPECT_GT(job.stats().mapreduce.map_failures, 0);
}

TEST(TrainingJobTest, ReduceTaskFailuresRetrySuccessfully) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  TrainingJob::Options options = JobFixture::FastTraining();
  options.reduce_task_failure_prob = 0.4;
  options.max_attempts_per_task = 30;
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), plan.size());
  EXPECT_GT(job.stats().mapreduce.reduce_failures, 0);
  // Failed attempts discard their buffers: output is still exactly-once.
  std::set<std::string> keys;
  for (const ConfigRecord& record : *results) {
    EXPECT_TRUE(keys.insert(record.Key()).second);
  }
}

TEST(TrainingJobTest, ReduceTaskAttemptExhaustionFailsJob) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  TrainingJob::Options options = JobFixture::FastTraining();
  options.reduce_task_failure_prob = 1.0;  // every attempt killed
  options.max_attempts_per_task = 3;
  TrainingJob job(&f.fs, &f.registry, options);
  StatusOr<std::vector<ConfigRecord>> results = job.Run(plan);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(job.stats().mapreduce.reduce_attempts, 3);
  EXPECT_EQ(job.stats().mapreduce.reduce_failures, 3);
}

TEST(TrainingJobTest, WarmStartRecordUsesStoredModel) {
  JobFixture f;
  std::vector<ConfigRecord> plan = f.SmallPlan();
  TrainingJob job1(&f.fs, &f.registry, JobFixture::FastTraining());
  StatusOr<std::vector<ConfigRecord>> day1 = job1.Run(plan);
  ASSERT_TRUE(day1.ok());

  // Incremental: re-train the same configs warm-started, one epoch.
  std::vector<ConfigRecord> incremental = *day1;
  for (ConfigRecord& record : incremental) {
    record.warm_start = true;
    record.trained = false;
    record.params.num_epochs = 1;
  }
  TrainingJob job2(&f.fs, &f.registry, JobFixture::FastTraining());
  StatusOr<std::vector<ConfigRecord>> day2 = job2.Run(incremental);
  ASSERT_TRUE(day2.ok());

  // Warm-started single-epoch models should be at least comparable to the
  // fully-trained day-1 models (they started from them).
  std::map<std::string, double> day1_map, day2_map;
  for (const ConfigRecord& record : *day1) {
    day1_map[record.Key()] = record.map_at_10;
  }
  double mean1 = 0, mean2 = 0;
  for (const ConfigRecord& record : *day2) {
    mean1 += day1_map[record.Key()];
    mean2 += record.map_at_10;
  }
  EXPECT_GT(mean2, 0.5 * mean1);
}

TEST(TrainingJobTest, MissingRetailerFailsJob) {
  JobFixture f;
  ConfigRecord record;
  record.retailer = 99;
  record.model_path = ModelPath(99, 0);
  TrainingJob job(&f.fs, &f.registry, JobFixture::FastTraining());
  EXPECT_EQ(job.Run({record}).status().code(), StatusCode::kNotFound);
}

// --- InferenceJob -----------------------------------------------------------

class InferenceFixture : public JobFixture {
 public:
  InferenceFixture() {
    // Train one model per retailer and promote it to best.
    SweepPlanner::Options options;
    options.grid.factors = {8};
    options.grid.lambdas_v = {0.01};
    options.grid.lambdas_vc = {0.01};
    options.grid.sweep_taxonomy = false;
    options.grid.sweep_brand = false;
    options.grid.num_epochs = 3;
    SweepPlanner planner(options);
    TrainingJob job(&fs, &registry, FastTraining());
    auto results = job.Run(planner.PlanFullSweep(registry));
    SIGCHECK(results.ok());
    for (const ConfigRecord& record : *results) {
      auto bytes = fs.Read(record.model_path);
      SIGCHECK(bytes.ok());
      SIGCHECK_OK(fs.Write(BestModelPath(record.retailer), *bytes));
    }
  }
};

TEST(InferenceJobTest, MaterializesEveryItemOfEveryRetailer) {
  InferenceFixture f;
  InferenceJob::Options options;
  options.inference.top_k = 5;
  InferenceJob job(&f.fs, &f.registry, options);
  auto results = job.Run({0, 1});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].size(), 60u);
  EXPECT_EQ((*results)[1].size(), 120u);
  EXPECT_EQ(job.stats().items_scored.load(), 180);
  // Recommendation files persisted.
  EXPECT_TRUE(f.fs.Exists(RecommendationPath(0)));
  EXPECT_TRUE(f.fs.Exists(RecommendationPath(1)));
}

TEST(InferenceJobTest, ModelLoadsBoundedBySplitBoundaries) {
  InferenceFixture f;
  InferenceJob::Options options;
  options.map_tasks_per_cell = 3;
  InferenceJob job(&f.fs, &f.registry, options);
  ASSERT_TRUE(job.Run({0, 1}).ok());
  // Each map task loads a model at most (1 + #retailer boundaries in its
  // split) times: total <= retailers + map_tasks - 1... with contiguous
  // per-retailer input, loads <= retailers + tasks.
  EXPECT_GE(job.stats().model_loads.load(), 2);
  EXPECT_LE(job.stats().model_loads.load(), 2 + 3);
}

TEST(InferenceJobTest, CellWeightsReflectBinPacking) {
  InferenceFixture f;
  InferenceJob::Options options;
  options.num_cells = 2;
  InferenceJob job(&f.fs, &f.registry, options);
  ASSERT_TRUE(job.Run({0, 1}).ok());
  ASSERT_EQ(job.stats().cell_weights.size(), 2u);
  // FFD: big retailer (120) alone in one cell, small (60) in the other.
  double a = job.stats().cell_weights[0];
  double b = job.stats().cell_weights[1];
  EXPECT_DOUBLE_EQ(std::max(a, b), 120.0);
  EXPECT_DOUBLE_EQ(std::min(a, b), 60.0);
}

TEST(InferenceJobTest, MissingBestModelFails) {
  JobFixture f;  // no best models written
  InferenceJob job(&f.fs, &f.registry, {});
  EXPECT_FALSE(job.Run({0}).ok());
}


TEST(InferenceJobTest, MapFailuresRetriedWithExactlyOnceOutput) {
  InferenceFixture f;
  InferenceJob::Options options;
  options.inference.top_k = 5;
  options.map_tasks_per_cell = 4;
  options.map_task_failure_prob = 0.4;
  options.max_attempts_per_task = 30;
  InferenceJob job(&f.fs, &f.registry, options);
  auto results = job.Run({0, 1});
  ASSERT_TRUE(results.ok());
  // Exactly one recommendation record per item despite retries.
  EXPECT_EQ((*results)[0].size(), 60u);
  EXPECT_EQ((*results)[1].size(), 120u);
  std::set<data::ItemIndex> seen;
  for (const core::ItemRecommendations& recs : (*results)[0]) {
    EXPECT_TRUE(seen.insert(recs.query).second);
  }
}

TEST(InferenceJobTest, RecommendationsParseAndRespectTopK) {
  InferenceFixture f;
  InferenceJob::Options options;
  options.inference.top_k = 4;
  InferenceJob job(&f.fs, &f.registry, options);
  auto results = job.Run({0});
  ASSERT_TRUE(results.ok());
  for (const core::ItemRecommendations& recs : (*results)[0]) {
    EXPECT_LE(recs.view_based.size(), 4u);
    EXPECT_LE(recs.purchase_based.size(), 4u);
    for (const core::ScoredItem& item : recs.view_based) {
      EXPECT_GE(item.item, 0);
      EXPECT_LT(item.item, 60);
      EXPECT_NE(item.item, recs.query);
    }
  }
}

}  // namespace
}  // namespace sigmund::pipeline
