#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "core/ab_experiment.h"
#include "data/world_generator.h"
#include "serving/frontend.h"

namespace sigmund {
namespace {

using data::ActionType;

core::ItemRecommendations MakeRecs(data::ItemIndex query) {
  core::ItemRecommendations recs;
  recs.query = query;
  recs.view_based = {{1, 2.0}, {2, 0.5}, {3, -1.0}};
  recs.purchase_based = {{4, 1.0}};
  recs.view_based_late = {{5, 1.5}};
  return recs;
}

void LoadStore(serving::RecommendationStore* store) {
  store->LoadRetailer(1, {MakeRecs(0)});
}

core::ScoreCalibrator IdentityCalibrator() {
  // Fit on clean separable data: positive scores click, negatives don't.
  std::vector<double> scores = {-2, -1, 1, 2};
  std::vector<bool> clicked = {false, false, true, true};
  auto calibrator = core::ScoreCalibrator::Fit(scores, clicked);
  SIGCHECK(calibrator.ok());
  return *calibrator;
}

TEST(FrontendTest, BasicRequestServesViewBased) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->items.size(), 3u);
  EXPECT_EQ(response->items[0].item, 1);
  EXPECT_EQ(response->funnel, core::FunnelStage::kEarly);
  EXPECT_FALSE(response->post_purchase);
  EXPECT_EQ(response->suppressed_by_threshold, 0);
}

TEST(FrontendTest, PostPurchaseAndLateFunnelRouting) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kConversion}};
  auto post = frontend.Handle(request);
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->post_purchase);
  EXPECT_EQ(post->items[0].item, 4);

  request.context = {{0, ActionType::kView}, {0, ActionType::kView}};
  auto late = frontend.Handle(request);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->funnel, core::FunnelStage::kLate);
  EXPECT_EQ(late->items[0].item, 5);  // late-funnel variant
}

TEST(FrontendTest, MaxResultsTruncates) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  request.max_results = 2;
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->items.size(), 2u);
}

TEST(FrontendTest, ThresholdSuppressesWeakItems) {
  serving::RecommendationStore store;
  LoadStore(&store);
  core::ScoreCalibrator calibrator = IdentityCalibrator();
  serving::Frontend frontend(&store, &calibrator);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  request.display_threshold = 0.5;
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  // Scores 2.0 and 0.5 pass the 0.5 probability bar; -1.0 is suppressed.
  EXPECT_EQ(response->items.size(), 2u);
  EXPECT_EQ(response->suppressed_by_threshold, 1);
  for (const core::ScoredItem& item : response->items) {
    EXPECT_GE(calibrator.Probability(item.score), 0.5);
  }
}

TEST(FrontendTest, ThresholdIgnoredWithoutCalibrator) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  request.display_threshold = 0.99;
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->items.size(), 3u);
}

TEST(FrontendTest, InvalidRequestsRejected) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  EXPECT_EQ(frontend.Handle(request).status().code(),
            StatusCode::kInvalidArgument);  // empty context
  request.context = {{0, ActionType::kView}};
  request.max_results = 0;
  EXPECT_EQ(frontend.Handle(request).status().code(),
            StatusCode::kInvalidArgument);
  request.max_results = 5;
  request.retailer = 9;  // unknown
  EXPECT_EQ(frontend.Handle(request).status().code(),
            StatusCode::kNotFound);
}

// --- Batch-version labeling ---------------------------------------------------

TEST(FrontendTest, ResponsesCarryTheServingBatchVersion) {
  serving::RecommendationStore store;
  LoadStore(&store);
  obs::MetricRegistry metrics;
  serving::Frontend frontend(&store, nullptr, &metrics);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};

  auto v1 = frontend.Handle(request);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->batch_version, 1);

  // After a batch cutover the label follows the active version, so
  // per-request counters split cleanly by serving batch.
  store.LoadRetailer(1, {MakeRecs(0)});
  auto v2 = frontend.Handle(request);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->batch_version, 2);

  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue(
                "serving_requests_total",
                {{"outcome", "ok"}, {"version", "1"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue(
                "serving_requests_total",
                {{"outcome", "ok"}, {"version", "2"}}),
            1);
  // The unlabeled view still aggregates across versions.
  EXPECT_EQ(snapshot.CounterValue("serving_requests_total",
                                  {{"outcome", "ok"}}),
            2);
}

TEST(FrontendTest, FallbacksLabelTheVersionTheyActuallyServe) {
  serving::RecommendationStore store;
  LoadStore(&store);
  obs::MetricRegistry metrics;
  serving::Frontend frontend(&store, nullptr, &metrics);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};

  // Populate the last-known-good cache at version 1, then break the store.
  ASSERT_TRUE(frontend.Handle(request).ok());
  frontend.SetLookupForTesting([](data::RetailerId, const core::Context&) {
    return StatusOr<std::vector<core::ScoredItem>>(
        UnavailableError("store down"));
  });

  // The LKG rung serves version 1's cached list and says so — even though
  // the store's active version has moved on to 2 underneath.
  store.LoadRetailer(1, {MakeRecs(0)});
  auto lkg = frontend.Handle(request);
  ASSERT_TRUE(lkg.ok());
  EXPECT_EQ(lkg->source, serving::ServingSource::kLastKnownGood);
  EXPECT_EQ(lkg->batch_version, 1);

  // The popularity rung serves no batch at all: version 0.
  serving::Frontend bare(&store, nullptr, &metrics);
  bare.SetLookupForTesting([](data::RetailerId, const core::Context&) {
    return StatusOr<std::vector<core::ScoredItem>>(
        UnavailableError("store down"));
  });
  bare.SetPopularityFallback(1, {{7, 1.0}});
  auto popularity = bare.Handle(request);
  ASSERT_TRUE(popularity.ok());
  EXPECT_EQ(popularity->source, serving::ServingSource::kPopularity);
  EXPECT_EQ(popularity->batch_version, 0);

  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue(
                "serving_fallbacks_total",
                {{"source", "last_known_good"}, {"version", "1"}}),
            1);
  EXPECT_EQ(snapshot.CounterValue(
                "serving_fallbacks_total",
                {{"source", "popularity"}, {"version", "0"}}),
            1);
}

// --- Frontend degradation ladder ---------------------------------------------

serving::RecommendationRequest ViewRequest() {
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  return request;
}

TEST(FrontendDegradationTest, LastKnownGoodServedAfterStoreFailure) {
  serving::RecommendationStore store;
  LoadStore(&store);
  obs::MetricRegistry metrics;
  SimClock clock;
  serving::Frontend frontend(&store, nullptr, &metrics, &clock);

  // A healthy request populates the last-known-good cache.
  auto healthy = frontend.Handle(ViewRequest());
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->degraded);
  EXPECT_EQ(healthy->source, serving::ServingSource::kStore);

  // Now the store starts failing; the frontend replays the cached list.
  frontend.SetLookupForTesting([](data::RetailerId, const core::Context&) {
    return StatusOr<std::vector<core::ScoredItem>>(
        UnavailableError("store down"));
  });
  auto degraded = frontend.Handle(ViewRequest());
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->source, serving::ServingSource::kLastKnownGood);
  ASSERT_EQ(degraded->items.size(), healthy->items.size());
  EXPECT_EQ(degraded->items[0].item, healthy->items[0].item);
  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_fallbacks_total",
                                  {{"source", "last_known_good"}}),
            1);
}

TEST(FrontendDegradationTest, PopularityIsTheLastRungBeforeError) {
  serving::RecommendationStore store;
  serving::Frontend frontend(&store, nullptr);
  frontend.SetLookupForTesting([](data::RetailerId, const core::Context&) {
    return StatusOr<std::vector<core::ScoredItem>>(
        UnavailableError("store down"));
  });
  // No last-known-good and no popularity list: the error surfaces.
  EXPECT_EQ(frontend.Handle(ViewRequest()).status().code(),
            StatusCode::kUnavailable);
  // With a popularity list installed the ladder catches the failure.
  frontend.SetPopularityFallback(1, {{7, 1.0}, {8, 0.5}});
  auto response = frontend.Handle(ViewRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->source, serving::ServingSource::kPopularity);
  ASSERT_EQ(response->items.size(), 2u);
  EXPECT_EQ(response->items[0].item, 7);
}

TEST(FrontendDegradationTest, BreakerTripsShortCircuitsAndRecovers) {
  serving::RecommendationStore store;
  obs::MetricRegistry metrics;
  SimClock clock;
  serving::Frontend::Options options;
  options.breaker_failure_threshold = 3;
  options.breaker_open_seconds = 30.0;
  serving::Frontend frontend(&store, nullptr, &metrics, &clock, options);
  frontend.SetPopularityFallback(1, {{7, 1.0}});

  int lookup_calls = 0;
  bool lookup_healthy = false;
  frontend.SetLookupForTesting(
      [&](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        ++lookup_calls;
        if (!lookup_healthy) return UnavailableError("store down");
        return std::vector<core::ScoredItem>{{1, 2.0}};
      });

  // Three consecutive failures trip the breaker.
  for (int n = 0; n < 3; ++n) {
    auto r = frontend.Handle(ViewRequest());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->source, serving::ServingSource::kPopularity);
  }
  EXPECT_EQ(lookup_calls, 3);
  EXPECT_TRUE(frontend.BreakerOpen(1));

  // While open, requests never reach the store.
  auto shorted = frontend.Handle(ViewRequest());
  ASSERT_TRUE(shorted.ok());
  EXPECT_TRUE(shorted->degraded);
  EXPECT_EQ(lookup_calls, 3);

  // After the cooldown a half-open probe goes through; its success
  // closes the breaker again.
  clock.AdvanceSeconds(31.0);
  lookup_healthy = true;
  auto probe = frontend.Handle(ViewRequest());
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->degraded);
  EXPECT_EQ(probe->source, serving::ServingSource::kStore);
  EXPECT_EQ(lookup_calls, 4);
  EXPECT_FALSE(frontend.BreakerOpen(1));

  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_breaker_trips_total", {}), 1);
  EXPECT_EQ(snapshot.CounterValue("serving_breaker_short_circuits_total", {}),
            1);
}

TEST(FrontendDegradationTest, SlowLookupPastDeadlineFallsBack) {
  serving::RecommendationStore store;
  obs::MetricRegistry metrics;
  SimClock clock;
  serving::Frontend::Options options;
  options.request_deadline_micros = 1000;
  serving::Frontend frontend(&store, nullptr, &metrics, &clock, options);
  frontend.SetPopularityFallback(1, {{7, 1.0}});

  // The lookup "takes" 5ms of simulated time — well past the 1ms
  // deadline — and still returns a list; the frontend must discard it.
  frontend.SetLookupForTesting(
      [&clock](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        clock.AdvanceMicros(5000);
        return std::vector<core::ScoredItem>{{1, 2.0}};
      });
  auto response = frontend.Handle(ViewRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->degraded);
  EXPECT_EQ(response->source, serving::ServingSource::kPopularity);
  obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("serving_deadline_exceeded_total", {}), 1);
}

// --- AbExperiment ------------------------------------------------------------

struct AbFixture {
  data::RetailerWorld world;

  AbFixture()
      : world([] {
          data::WorldConfig config;
          config.seed = 9;
          data::WorldGenerator generator(config);
          return generator.GenerateRetailer(0, 120);
        }()) {}

  // Policy recommending each user's true-affinity top items.
  core::AbExperiment::Arm OraclePolicy() {
    return {"oracle", [this](data::UserIndex u, data::ItemIndex) {
              std::vector<data::ItemIndex> items(world.data.num_items());
              for (int i = 0; i < world.data.num_items(); ++i) items[i] = i;
              std::partial_sort(
                  items.begin(), items.begin() + 10, items.end(),
                  [this, u](data::ItemIndex a, data::ItemIndex b) {
                    return world.truth.Affinity(u, a) >
                           world.truth.Affinity(u, b);
                  });
              items.resize(10);
              return items;
            }};
  }

  core::AbExperiment::Arm RandomPolicy() {
    return {"random", [this](data::UserIndex u, data::ItemIndex) {
              Rng rng(u * 31 + 7);
              std::vector<data::ItemIndex> items;
              for (int n = 0; n < 10; ++n) {
                items.push_back(static_cast<data::ItemIndex>(
                    rng.Uniform(world.data.num_items())));
              }
              return items;
            }};
  }
};

TEST(AbExperimentTest, OracleBeatsRandomSignificantly) {
  AbFixture f;
  core::AbExperiment::Options options;
  options.rounds_per_user = 5;
  options.ctr.click_bias = 2.0;
  core::AbExperiment::Outcome outcome = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.RandomPolicy(), f.OraclePolicy(),
      options);
  EXPECT_GT(outcome.treatment.Ctr(), outcome.control.Ctr());
  EXPECT_TRUE(outcome.SignificantAt95());
  EXPECT_GT(outcome.z_score, 1.96);
  EXPECT_GT(outcome.RelativeLift(), 0.1);
}

TEST(AbExperimentTest, IdenticalArmsNotSignificant) {
  AbFixture f;
  core::AbExperiment::Options options;
  options.rounds_per_user = 3;
  core::AbExperiment::Outcome outcome = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.OraclePolicy(), f.OraclePolicy(),
      options);
  EXPECT_FALSE(outcome.SignificantAt95());
  EXPECT_NEAR(outcome.RelativeLift(), 0.0, 0.1);
}

TEST(AbExperimentTest, StickyAssignmentSplitsTraffic) {
  AbFixture f;
  core::AbExperiment::Options options;
  options.rounds_per_user = 1;
  core::AbExperiment::Outcome outcome = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.RandomPolicy(), f.OraclePolicy(),
      options);
  int64_t total = outcome.control.impressions + outcome.treatment.impressions;
  EXPECT_GT(total, 0);
  // Roughly balanced split.
  EXPECT_NEAR(static_cast<double>(outcome.control.impressions) / total, 0.5,
              0.15);
  // Deterministic: same seed, same outcome.
  core::AbExperiment::Outcome again = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.RandomPolicy(), f.OraclePolicy(),
      options);
  EXPECT_EQ(again.control.clicks, outcome.control.clicks);
  EXPECT_EQ(again.treatment.clicks, outcome.treatment.clicks);
}

}  // namespace
}  // namespace sigmund
