#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/ab_experiment.h"
#include "data/world_generator.h"
#include "serving/frontend.h"

namespace sigmund {
namespace {

using data::ActionType;

core::ItemRecommendations MakeRecs(data::ItemIndex query) {
  core::ItemRecommendations recs;
  recs.query = query;
  recs.view_based = {{1, 2.0}, {2, 0.5}, {3, -1.0}};
  recs.purchase_based = {{4, 1.0}};
  recs.view_based_late = {{5, 1.5}};
  return recs;
}

void LoadStore(serving::RecommendationStore* store) {
  store->LoadRetailer(1, {MakeRecs(0)});
}

core::ScoreCalibrator IdentityCalibrator() {
  // Fit on clean separable data: positive scores click, negatives don't.
  std::vector<double> scores = {-2, -1, 1, 2};
  std::vector<bool> clicked = {false, false, true, true};
  auto calibrator = core::ScoreCalibrator::Fit(scores, clicked);
  SIGCHECK(calibrator.ok());
  return *calibrator;
}

TEST(FrontendTest, BasicRequestServesViewBased) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->items.size(), 3u);
  EXPECT_EQ(response->items[0].item, 1);
  EXPECT_EQ(response->funnel, core::FunnelStage::kEarly);
  EXPECT_FALSE(response->post_purchase);
  EXPECT_EQ(response->suppressed_by_threshold, 0);
}

TEST(FrontendTest, PostPurchaseAndLateFunnelRouting) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kConversion}};
  auto post = frontend.Handle(request);
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->post_purchase);
  EXPECT_EQ(post->items[0].item, 4);

  request.context = {{0, ActionType::kView}, {0, ActionType::kView}};
  auto late = frontend.Handle(request);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->funnel, core::FunnelStage::kLate);
  EXPECT_EQ(late->items[0].item, 5);  // late-funnel variant
}

TEST(FrontendTest, MaxResultsTruncates) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  request.max_results = 2;
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->items.size(), 2u);
}

TEST(FrontendTest, ThresholdSuppressesWeakItems) {
  serving::RecommendationStore store;
  LoadStore(&store);
  core::ScoreCalibrator calibrator = IdentityCalibrator();
  serving::Frontend frontend(&store, &calibrator);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  request.display_threshold = 0.5;
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  // Scores 2.0 and 0.5 pass the 0.5 probability bar; -1.0 is suppressed.
  EXPECT_EQ(response->items.size(), 2u);
  EXPECT_EQ(response->suppressed_by_threshold, 1);
  for (const core::ScoredItem& item : response->items) {
    EXPECT_GE(calibrator.Probability(item.score), 0.5);
  }
}

TEST(FrontendTest, ThresholdIgnoredWithoutCalibrator) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  request.context = {{0, ActionType::kView}};
  request.display_threshold = 0.99;
  auto response = frontend.Handle(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->items.size(), 3u);
}

TEST(FrontendTest, InvalidRequestsRejected) {
  serving::RecommendationStore store;
  LoadStore(&store);
  serving::Frontend frontend(&store, nullptr);
  serving::RecommendationRequest request;
  request.retailer = 1;
  EXPECT_EQ(frontend.Handle(request).status().code(),
            StatusCode::kInvalidArgument);  // empty context
  request.context = {{0, ActionType::kView}};
  request.max_results = 0;
  EXPECT_EQ(frontend.Handle(request).status().code(),
            StatusCode::kInvalidArgument);
  request.max_results = 5;
  request.retailer = 9;  // unknown
  EXPECT_EQ(frontend.Handle(request).status().code(),
            StatusCode::kNotFound);
}

// --- AbExperiment ------------------------------------------------------------

struct AbFixture {
  data::RetailerWorld world;

  AbFixture()
      : world([] {
          data::WorldConfig config;
          config.seed = 9;
          data::WorldGenerator generator(config);
          return generator.GenerateRetailer(0, 120);
        }()) {}

  // Policy recommending each user's true-affinity top items.
  core::AbExperiment::Arm OraclePolicy() {
    return {"oracle", [this](data::UserIndex u, data::ItemIndex) {
              std::vector<data::ItemIndex> items(world.data.num_items());
              for (int i = 0; i < world.data.num_items(); ++i) items[i] = i;
              std::partial_sort(
                  items.begin(), items.begin() + 10, items.end(),
                  [this, u](data::ItemIndex a, data::ItemIndex b) {
                    return world.truth.Affinity(u, a) >
                           world.truth.Affinity(u, b);
                  });
              items.resize(10);
              return items;
            }};
  }

  core::AbExperiment::Arm RandomPolicy() {
    return {"random", [this](data::UserIndex u, data::ItemIndex) {
              Rng rng(u * 31 + 7);
              std::vector<data::ItemIndex> items;
              for (int n = 0; n < 10; ++n) {
                items.push_back(static_cast<data::ItemIndex>(
                    rng.Uniform(world.data.num_items())));
              }
              return items;
            }};
  }
};

TEST(AbExperimentTest, OracleBeatsRandomSignificantly) {
  AbFixture f;
  core::AbExperiment::Options options;
  options.rounds_per_user = 5;
  options.ctr.click_bias = 2.0;
  core::AbExperiment::Outcome outcome = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.RandomPolicy(), f.OraclePolicy(),
      options);
  EXPECT_GT(outcome.treatment.Ctr(), outcome.control.Ctr());
  EXPECT_TRUE(outcome.SignificantAt95());
  EXPECT_GT(outcome.z_score, 1.96);
  EXPECT_GT(outcome.RelativeLift(), 0.1);
}

TEST(AbExperimentTest, IdenticalArmsNotSignificant) {
  AbFixture f;
  core::AbExperiment::Options options;
  options.rounds_per_user = 3;
  core::AbExperiment::Outcome outcome = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.OraclePolicy(), f.OraclePolicy(),
      options);
  EXPECT_FALSE(outcome.SignificantAt95());
  EXPECT_NEAR(outcome.RelativeLift(), 0.0, 0.1);
}

TEST(AbExperimentTest, StickyAssignmentSplitsTraffic) {
  AbFixture f;
  core::AbExperiment::Options options;
  options.rounds_per_user = 1;
  core::AbExperiment::Outcome outcome = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.RandomPolicy(), f.OraclePolicy(),
      options);
  int64_t total = outcome.control.impressions + outcome.treatment.impressions;
  EXPECT_GT(total, 0);
  // Roughly balanced split.
  EXPECT_NEAR(static_cast<double>(outcome.control.impressions) / total, 0.5,
              0.15);
  // Deterministic: same seed, same outcome.
  core::AbExperiment::Outcome again = core::AbExperiment::Run(
      f.world, f.world.data.histories, f.RandomPolicy(), f.OraclePolicy(),
      options);
  EXPECT_EQ(again.control.clicks, outcome.control.clicks);
  EXPECT_EQ(again.treatment.clicks, outcome.treatment.clicks);
}

}  // namespace
}  // namespace sigmund
