#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/candidate_selector.h"
#include "core/hybrid.h"
#include "core/inference.h"
#include "data/world_generator.h"

namespace sigmund::core {
namespace {

using data::ActionType;
using data::Interaction;

struct Fixture {
  data::RetailerWorld world;
  CooccurrenceModel cooccurrence;
  RepurchaseEstimator repurchase;
  CandidateSelector selector;
  BprModel model;
  InferenceEngine engine;

  explicit Fixture(int items = 150, uint64_t seed = 3)
      : world([&] {
          data::WorldConfig config;
          config.seed = seed;
          data::WorldGenerator generator(config);
          return generator.GenerateRetailer(0, items);
        }()),
        cooccurrence(CooccurrenceModel::Build(world.data.histories,
                                              world.data.num_items(), {})),
        repurchase(RepurchaseEstimator::Build(world.data.histories,
                                              world.data.catalog, {})),
        selector(&world.data.catalog, &cooccurrence, &repurchase),
        model(&world.data.catalog, [] {
          HyperParams params;
          params.num_factors = 8;
          return params;
        }()),
        engine(&model, &selector) {
    Rng rng(7);
    model.InitRandom(&rng);
  }
};

// --- RepurchaseEstimator ------------------------------------------------

TEST(RepurchaseEstimatorTest, DetectsRepeatPurchaseCategory) {
  data::Taxonomy taxonomy;
  data::CategoryId diapers = taxonomy.AddCategory("diapers", taxonomy.root());
  data::CategoryId tvs = taxonomy.AddCategory("tvs", taxonomy.root());
  data::Catalog catalog(std::move(taxonomy));
  catalog.AddItem(data::Item{diapers, 0, 20.0, 0});  // item 0
  catalog.AddItem(data::Item{tvs, 0, 900.0, 0});     // item 1
  catalog.Finalize();

  // 6 users repeat-buy diapers every ~7 days; buy a TV once.
  std::vector<std::vector<Interaction>> histories;
  for (int u = 0; u < 6; ++u) {
    std::vector<Interaction> h;
    for (int repeat = 0; repeat < 3; ++repeat) {
      h.push_back({u, 0, ActionType::kConversion,
                   static_cast<int64_t>(repeat) * 7 * 86400});
    }
    h.push_back({u, 1, ActionType::kConversion, 40 * 86400});
    histories.push_back(std::move(h));
  }
  RepurchaseEstimator estimator =
      RepurchaseEstimator::Build(histories, catalog, {});
  EXPECT_TRUE(estimator.IsRepurchasable(diapers));
  EXPECT_FALSE(estimator.IsRepurchasable(tvs));
  EXPECT_NEAR(estimator.MeanDaysBetween(diapers), 7.0, 0.01);
  EXPECT_EQ(estimator.CountRepurchasable(), 1);
}

TEST(RepurchaseEstimatorTest, MinBuyersGuard) {
  data::Taxonomy taxonomy;
  data::CategoryId c = taxonomy.AddCategory("c", taxonomy.root());
  data::Catalog catalog(std::move(taxonomy));
  catalog.AddItem(data::Item{c, 0, 1.0, 0});
  catalog.Finalize();
  // Only 2 buyers (below min_buyers=5), both repeat.
  std::vector<std::vector<Interaction>> histories = {
      {{0, 0, ActionType::kConversion, 0},
       {0, 0, ActionType::kConversion, 86400}},
      {{1, 0, ActionType::kConversion, 0},
       {1, 0, ActionType::kConversion, 86400}},
  };
  RepurchaseEstimator estimator =
      RepurchaseEstimator::Build(histories, catalog, {});
  EXPECT_FALSE(estimator.IsRepurchasable(c));
}

// --- CandidateSelector ----------------------------------------------------

TEST(CandidateSelectorTest, ViewBasedExcludesQueryAndDedups) {
  Fixture f;
  CandidateSelector::Options options;
  for (data::ItemIndex i = 0; i < 20; ++i) {
    auto candidates = f.selector.ViewBased(i, options);
    std::set<data::ItemIndex> unique(candidates.begin(), candidates.end());
    EXPECT_EQ(unique.size(), candidates.size());
    EXPECT_EQ(unique.count(i), 0u);
    EXPECT_LE(candidates.size(),
              static_cast<size_t>(options.max_candidates));
  }
}

TEST(CandidateSelectorTest, ColdItemFallsBackToTaxonomy) {
  Fixture f;
  // Find an item with no co-view neighbors.
  data::ItemIndex cold = data::kInvalidItem;
  for (data::ItemIndex i = 0; i < f.world.data.num_items(); ++i) {
    if (f.cooccurrence.CoViewed(i).empty()) {
      cold = i;
      break;
    }
  }
  if (cold == data::kInvalidItem) GTEST_SKIP() << "no cold item in world";
  auto candidates = f.selector.ViewBased(cold, {});
  // Fallback must produce same-taxonomy-neighborhood candidates if the
  // category has siblings.
  for (data::ItemIndex c : candidates) {
    EXPECT_LE(f.world.data.catalog.LcaDistance(cold, c), 2);
  }
}

TEST(CandidateSelectorTest, ViewCandidatesGrowWithK) {
  Fixture f;
  CandidateSelector::Options k1;
  k1.view_lca_k = 1;
  k1.max_candidates = 100000;
  CandidateSelector::Options k3;
  k3.view_lca_k = 3;
  k3.max_candidates = 100000;
  int64_t total_k1 = 0, total_k3 = 0;
  for (data::ItemIndex i = 0; i < 30; ++i) {
    total_k1 += f.selector.ViewBased(i, k1).size();
    total_k3 += f.selector.ViewBased(i, k3).size();
  }
  EXPECT_GT(total_k3, total_k1);
}

TEST(CandidateSelectorTest, PurchaseBasedRemovesSubstitutes) {
  Fixture f;
  CandidateSelector::Options options;
  for (data::ItemIndex i = 0; i < 30; ++i) {
    data::CategoryId category = f.world.data.catalog.item(i).category;
    if (f.repurchase.IsRepurchasable(category)) continue;
    auto candidates = f.selector.PurchaseBased(i, options);
    for (data::ItemIndex c : candidates) {
      // lca_1(i) (same category) removed.
      EXPECT_GT(f.world.data.catalog.LcaDistance(i, c), 1)
          << "item " << i << " candidate " << c;
    }
  }
}

TEST(CandidateSelectorTest, LateFunnelFiltersFacets) {
  Fixture f;
  CandidateSelector::Options late;
  late.late_funnel = true;
  for (data::ItemIndex i = 0; i < 20; ++i) {
    auto candidates = f.selector.ViewBased(i, late);
    int32_t facet = f.world.data.catalog.item(i).facet;
    for (data::ItemIndex c : candidates) {
      EXPECT_EQ(f.world.data.catalog.item(c).facet, facet);
    }
  }
}

TEST(CandidateSelectorTest, MaxCandidatesCap) {
  Fixture f;
  CandidateSelector::Options tiny;
  tiny.max_candidates = 7;
  for (data::ItemIndex i = 0; i < 20; ++i) {
    EXPECT_LE(f.selector.ViewBased(i, tiny).size(), 7u);
    EXPECT_LE(f.selector.PurchaseBased(i, tiny).size(), 7u);
  }
}

// --- InferenceEngine -----------------------------------------------------

TEST(InferenceEngineTest, RankCandidatesSortedDescending) {
  Fixture f;
  std::vector<data::ItemIndex> candidates;
  for (data::ItemIndex i = 0; i < 50; ++i) candidates.push_back(i);
  auto ranked = f.engine.RankCandidates(
      Context{{3, ActionType::kView}}, candidates, 10);
  ASSERT_EQ(ranked.size(), 10u);
  for (size_t k = 1; k < ranked.size(); ++k) {
    EXPECT_GE(ranked[k - 1].score, ranked[k].score);
  }
}

TEST(InferenceEngineTest, TopKSmallerThanCandidates) {
  Fixture f;
  std::vector<data::ItemIndex> candidates = {1, 2, 3};
  auto ranked = f.engine.RankCandidates(Context{{0, ActionType::kView}},
                                        candidates, 10);
  EXPECT_EQ(ranked.size(), 3u);
}

TEST(InferenceEngineTest, RecommendForItemFillsBothLists) {
  Fixture f;
  InferenceEngine::Options options;
  options.top_k = 5;
  auto recs = f.engine.RecommendForItem(4, options);
  EXPECT_EQ(recs.query, 4);
  EXPECT_LE(recs.view_based.size(), 5u);
  EXPECT_LE(recs.purchase_based.size(), 5u);
}

TEST(InferenceEngineTest, MaterializeAllCoversCatalogAndMatchesThreaded) {
  Fixture f(80);
  InferenceEngine::Options options;
  options.top_k = 5;
  auto single = f.engine.MaterializeAll(options);
  options.num_threads = 3;
  auto threaded = f.engine.MaterializeAll(options);
  ASSERT_EQ(single.size(), static_cast<size_t>(f.world.data.num_items()));
  ASSERT_EQ(threaded.size(), single.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].query, threaded[i].query);
    ASSERT_EQ(single[i].view_based.size(), threaded[i].view_based.size());
    for (size_t k = 0; k < single[i].view_based.size(); ++k) {
      EXPECT_EQ(single[i].view_based[k].item, threaded[i].view_based[k].item);
    }
  }
}

TEST(InferenceEngineTest, CandidateListIsSubsetOfFullScanUniverse) {
  // Candidate-based top-k scores never exceed full-scan top-k scores.
  Fixture f(100);
  InferenceEngine::Options options;
  options.top_k = 5;
  for (data::ItemIndex i = 0; i < 10; ++i) {
    auto fast = f.engine.RecommendForItem(i, options);
    auto full = f.engine.RecommendForItemFullScan(i, 5);
    if (!fast.view_based.empty() && !full.view_based.empty()) {
      EXPECT_LE(fast.view_based[0].score, full.view_based[0].score + 1e-9);
    }
  }
}

TEST(ItemRecommendationsTest, SerializeRoundTrip) {
  ItemRecommendations recs;
  recs.query = 42;
  recs.view_based = {{1, 0.5}, {2, -0.25}};
  recs.purchase_based = {{7, 1.75}};
  StatusOr<ItemRecommendations> parsed =
      ItemRecommendations::Deserialize(recs.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->query, 42);
  ASSERT_EQ(parsed->view_based.size(), 2u);
  EXPECT_EQ(parsed->view_based[0].item, 1);
  EXPECT_NEAR(parsed->view_based[1].score, -0.25, 1e-9);
  ASSERT_EQ(parsed->purchase_based.size(), 1u);
  EXPECT_EQ(parsed->purchase_based[0].item, 7);
}

TEST(ItemRecommendationsTest, EmptyListsRoundTrip) {
  ItemRecommendations recs;
  recs.query = 0;
  StatusOr<ItemRecommendations> parsed =
      ItemRecommendations::Deserialize(recs.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->view_based.empty());
  EXPECT_TRUE(parsed->purchase_based.empty());
}

TEST(ItemRecommendationsTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ItemRecommendations::Deserialize("junk").ok());
  EXPECT_FALSE(ItemRecommendations::Deserialize("a|b|c").ok());
  EXPECT_FALSE(ItemRecommendations::Deserialize("1|x:y|").ok());
}

// --- HybridRecommender ----------------------------------------------------

TEST(HybridRecommenderTest, HeadUsesCooccurrenceTailUsesFactorization) {
  Fixture f(200, 21);
  HybridRecommender hybrid(&f.cooccurrence, &f.engine);
  HybridRecommender::Options options;
  options.top_k = 5;
  options.min_pair_count = 2;

  auto by_pop = f.cooccurrence.ItemsByPopularity();
  data::ItemIndex head = by_pop.front();
  data::ItemIndex tail = by_pop.back();

  auto head_recs = hybrid.ViewBased(head, options);
  auto tail_recs = hybrid.ViewBased(tail, options);

  // Head item's first recs come from co-occurrence (if it has trusted
  // neighbors, they match the top of the co-view list).
  if (!f.cooccurrence.CoViewed(head).empty() &&
      f.cooccurrence.CoViewed(head)[0].count >= options.min_pair_count) {
    ASSERT_FALSE(head_recs.empty());
    EXPECT_EQ(head_recs[0].item, f.cooccurrence.CoViewed(head)[0].item);
  }
  // Tail item still gets recommendations (factorization backfill).
  EXPECT_FALSE(tail_recs.empty());
}

TEST(HybridRecommenderTest, CoverageBeatsPureCooccurrence) {
  Fixture f(200, 22);
  HybridRecommender hybrid(&f.cooccurrence, &f.engine);
  HybridRecommender::Options options;
  options.top_k = 5;
  options.min_pair_count = 2;

  std::vector<std::vector<ScoredItem>> coocc_lists, hybrid_lists;
  for (data::ItemIndex i = 0; i < f.world.data.num_items(); ++i) {
    std::vector<ScoredItem> coocc;
    for (const auto& neighbor : f.cooccurrence.CoViewed(i)) {
      if (neighbor.count >= options.min_pair_count) {
        coocc.push_back({neighbor.item, neighbor.score});
      }
      if (static_cast<int>(coocc.size()) >= options.top_k) break;
    }
    coocc_lists.push_back(std::move(coocc));
    hybrid_lists.push_back(hybrid.ViewBased(i, options));
  }
  double coocc_coverage = HybridRecommender::Coverage(coocc_lists, 5);
  double hybrid_coverage = HybridRecommender::Coverage(hybrid_lists, 5);
  EXPECT_GT(hybrid_coverage, coocc_coverage);
}

TEST(HybridRecommenderTest, NoDuplicatesInCombinedList) {
  Fixture f(150, 23);
  HybridRecommender hybrid(&f.cooccurrence, &f.engine);
  HybridRecommender::Options options;
  options.top_k = 8;
  for (data::ItemIndex i = 0; i < 30; ++i) {
    auto recs = hybrid.ViewBased(i, options);
    std::set<data::ItemIndex> unique;
    for (const auto& r : recs) unique.insert(r.item);
    EXPECT_EQ(unique.size(), recs.size());
  }
}

}  // namespace
}  // namespace sigmund::core
