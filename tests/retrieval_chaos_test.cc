// Chaos acceptance for the online retrieval plane: a serving replica dies
// in the middle of the staggered batch cutover while the ANN A/B arm is
// live behind the Frontend. Every request must keep succeeding — answered
// by the materialized survivors or the retrieval plane, never an error —
// and the entire scenario must be byte-identical across reruns.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "data/world_generator.h"
#include "pipeline/service.h"
#include "serving/frontend.h"
#include "serving/replicated_store.h"
#include "sfs/mem_filesystem.h"

namespace sigmund {
namespace {

using data::ActionType;

struct ChaosFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 29;
    return config;
  }()};
  std::vector<data::RetailerWorld> worlds = {
      generator.GenerateRetailer(0, 50), generator.GenerateRetailer(1, 90)};

  pipeline::SigmundService::Options Options() const {
    pipeline::SigmundService::Options options;
    options.sweep.grid.factors = {4, 8};
    options.sweep.grid.lambdas_v = {0.1, 0.01};
    options.sweep.grid.lambdas_vc = {0.01};
    options.sweep.grid.sweep_taxonomy = false;
    options.sweep.grid.sweep_brand = false;
    options.sweep.grid.num_epochs = 3;
    options.sweep.incremental_top_k = 2;
    options.training.num_map_tasks = 4;
    options.training.max_parallel_tasks = 2;
    options.training.checkpoint_interval_seconds = 0.0;
    options.inference.inference.top_k = 5;
    options.serving.num_replicas = 3;
    options.canary.enabled = true;
    options.canary.canary_fraction = 0.5;
    options.canary.min_relative_ctr = 0.5;
    options.canary.early_stop_z = 4.0;
    options.canary.seed = 11;
    options.canary.oracle = [this](data::RetailerId id) {
      return &worlds[id].truth;
    };
    options.retrieval.enabled = true;
    options.retrieval.ann.num_lists = 8;
    options.retrieval.reader.top_k = 5;
    options.retrieval.reader.nprobe = 4;
    return options;
  }
};

// Everything a scenario run leaves behind, for rerun comparison.
struct ScenarioResult {
  bool all_ok = false;
  std::vector<std::string> reports;
  std::map<data::RetailerId, int64_t> store_versions;
  std::map<data::RetailerId, int64_t> index_versions;
  std::string served_fingerprint;
  int64_t serves_materialized = 0;
  int64_t serves_retrieval = 0;
  int64_t failed_serves = 0;
  int64_t total_serves = 0;
};

TEST(RetrievalChaosTest, ReplicaDiesMidCutoverWithAnnArmLive) {
  ChaosFixture f;

  auto run_scenario = [&]() {
    ScenarioResult result;
    sfs::MemFileSystem fs;
    SimClock clock;
    pipeline::SigmundService::Options options = f.Options();
    options.clock = &clock;
    pipeline::SigmundService service(&fs, options);
    service.UpsertRetailer(&f.worlds[0].data);
    service.UpsertRetailer(&f.worlds[1].data);
    serving::ReplicatedStoreGroup* group = service.store_group();

    // The full serving plane: replicated materialized store behind the
    // Frontend, with half of eligible traffic on the ANN arm.
    obs::MetricRegistry metrics;
    serving::Frontend::Options fopts;
    fopts.retrieval_store = service.retrieval_reader();
    fopts.retrieval_ab_fraction = 0.5;
    serving::Frontend frontend(group, nullptr, &metrics, &clock, fopts);

    auto serve_everything = [&] {
      for (data::RetailerId id : {0, 1}) {
        for (data::ItemIndex item = 0; item < 10; ++item) {
          serving::RecommendationRequest request;
          request.retailer = id;
          request.user = static_cast<data::UserIndex>(item * 7 + id);
          request.context = {{item, ActionType::kView}};
          StatusOr<serving::RecommendationResponse> response =
              frontend.Handle(request);
          ++result.total_serves;
          if (!response.ok() || response->items.empty()) {
            ++result.failed_serves;
            continue;
          }
          if (response->source == serving::ServingSource::kOnlineRetrieval) {
            ++result.serves_retrieval;
          } else {
            ++result.serves_materialized;
          }
          for (const core::ScoredItem& scored : response->items) {
            result.served_fingerprint +=
                StrFormat("%d/%d:%d ", id, request.user, scored.item);
          }
        }
      }
    };

    // Day 1: batches fan out to all replicas and every retailer's ANN
    // index builds, passes the retrieval canary, and activates.
    StatusOr<pipeline::DailyReport> day1 = service.RunDaily();
    if (!day1.ok()) {
      ADD_FAILURE() << day1.status().ToString();
      return result;
    }
    result.reports.push_back(day1->ToString());
    serve_everything();

    // Day 2's chaos: replica 2 dies while drained for the staggered
    // cutover — with the ANN arm still live and traffic flowing.
    group->SetCutoverHookForTesting(
        [&](data::RetailerId /*retailer*/, int replica) {
          if (replica == 2 && group->ReplicaAlive(2)) {
            group->KillReplica(2);
          }
          serve_everything();  // survivors + ANN plane absorb the drain
        });
    StatusOr<pipeline::DailyReport> day2 = service.RunDaily();
    if (!day2.ok()) {
      ADD_FAILURE() << day2.status().ToString();
      return result;
    }
    result.reports.push_back(day2->ToString());
    serve_everything();

    for (data::RetailerId id : {0, 1}) {
      result.store_versions[id] = service.store().RetailerVersion(id);
      result.index_versions[id] =
          service.retrieval_reader()->RetailerVersion(id);
    }
    result.all_ok = true;
    return result;
  };

  ScenarioResult a = run_scenario();
  ASSERT_TRUE(a.all_ok);

  // Not a single request failed — not during the clean day, not during
  // the drain-plus-death cutover, not after.
  EXPECT_EQ(a.failed_serves, 0);
  EXPECT_GT(a.total_serves, 0);
  // Both planes actually served: the A/B split put traffic on the ANN
  // path while the materialized plane kept the rest.
  EXPECT_GT(a.serves_retrieval, 0);
  EXPECT_GT(a.serves_materialized, 0);
  // Day 2 completed the rollout on the survivors: stores and indexes
  // both advanced to v2 despite the dead replica.
  for (data::RetailerId id : {0, 1}) {
    EXPECT_EQ(a.store_versions[id], 2) << "retailer " << id;
    EXPECT_EQ(a.index_versions[id], 2) << "retailer " << id;
  }

  // The whole scenario — reports, versions, every served item on both
  // planes — reruns byte-identically.
  ScenarioResult b = run_scenario();
  ASSERT_TRUE(b.all_ok);
  EXPECT_EQ(a.reports, b.reports);
  EXPECT_EQ(a.store_versions, b.store_versions);
  EXPECT_EQ(a.index_versions, b.index_versions);
  EXPECT_EQ(a.served_fingerprint, b.served_fingerprint);
  EXPECT_EQ(a.serves_retrieval, b.serves_retrieval);
  EXPECT_EQ(a.serves_materialized, b.serves_materialized);
}

}  // namespace
}  // namespace sigmund
