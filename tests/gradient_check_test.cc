// Finite-difference validation of the BPR SGD update: the analytic
// gradients implemented in BprTrainer must match numerical derivatives of
// the BPR loss for every parameter table (item, context, taxonomy, brand,
// price). This pins down the hierarchical-additive chain rule (§III-B of
// the paper) far more tightly than any behavioural test.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/negative_sampler.h"
#include "core/trainer.h"
#include "data/catalog.h"

namespace sigmund::core {
namespace {

// Small fixed catalog with all feature types present.
struct GradWorld {
  data::Catalog catalog;

  GradWorld() {
    data::Taxonomy taxonomy;
    data::CategoryId a = taxonomy.AddCategory("a", taxonomy.root());
    data::CategoryId b = taxonomy.AddCategory("b", taxonomy.root());
    data::CategoryId a1 = taxonomy.AddCategory("a1", a);
    catalog = data::Catalog(std::move(taxonomy));
    catalog.AddItem(data::Item{a1, 0, 10.0, 0});  // item 0
    catalog.AddItem(data::Item{a1, 1, 20.0, 0});  // item 1
    catalog.AddItem(data::Item{b, 0, 500.0, 1});  // item 2
    catalog.AddItem(data::Item{b, data::kUnknownBrand, 0.0, 1});  // item 3
    catalog.Finalize();
  }
};

HyperParams GradParams() {
  HyperParams params;
  params.num_factors = 5;
  params.use_taxonomy = true;
  params.use_brand = true;
  params.use_price = true;
  params.use_adagrad = false;  // plain SGD: update = lr * gradient exactly
  params.learning_rate = 1e-3;
  params.lambda_v = 0.0;  // no regularization: pure BPR loss gradient
  params.lambda_vc = 0.0;
  params.context_decay = 0.7;
  return params;
}

// Static empties used by CheckTable (the trainer's data/sampler are not
// exercised by Step()).
const std::vector<std::vector<data::Interaction>> kEmptyHistories;
const UniformSampler kSampler;

// BPR loss of (context, i, j) under the current model.
double ExampleLoss(const BprModel& model, const Context& context,
                   data::ItemIndex i, data::ItemIndex j) {
  std::vector<float> u(model.dim()), phi_i(model.dim()), phi_j(model.dim());
  model.UserEmbedding(context, u.data());
  model.ItemRepresentation(i, phi_i.data());
  model.ItemRepresentation(j, phi_j.data());
  double x = 0;
  for (int k = 0; k < model.dim(); ++k) x += u[k] * (phi_i[k] - phi_j[k]);
  return std::log1p(std::exp(-x));
}

// For each parameter the Step() call touched, verify
//   delta_param == -lr * dLoss/dparam   (within finite-difference error)
// by comparing the applied update against a central difference.
void CheckTable(const GradWorld& world, const Context& context,
                data::ItemIndex i, data::ItemIndex j,
                std::function<EmbeddingMatrix&(BprModel&)> table, int row) {
  HyperParams params = GradParams();
  const double lr = params.learning_rate;
  const double eps = 1e-3;

  for (int k = 0; k < params.num_factors; ++k) {
    // Fresh deterministic model per coordinate.
    BprModel model(&world.catalog, params);
    Rng rng(99);
    model.InitRandom(&rng);

    // Numerical gradient by central difference.
    float* param = table(model).row(row) + k;
    const float original = *param;
    *param = original + static_cast<float>(eps);
    double loss_plus = ExampleLoss(model, context, i, j);
    *param = original - static_cast<float>(eps);
    double loss_minus = ExampleLoss(model, context, i, j);
    *param = original;
    double numerical = (loss_plus - loss_minus) / (2 * eps);

    // Applied update from one SGD step.
    TrainingData dummy(&kEmptyHistories, world.catalog.num_items());
    BprTrainer trainer(&model, &dummy, &kSampler);
    trainer.Step(context, i, j, nullptr);
    double applied = static_cast<double>(*param) - original;

    // Gradient *descent*: applied ~= -lr * dLoss/dparam.
    EXPECT_NEAR(applied, -lr * numerical, lr * (std::abs(numerical) * 0.05 +
                                                1e-4))
        << "row " << row << " dim " << k;
  }
}

TEST(GradientCheckTest, ItemEmbeddingPositive) {
  GradWorld world;
  Context context = {{2, data::ActionType::kView},
                     {3, data::ActionType::kSearch}};
  CheckTable(world, context, 0, 1,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.item_embeddings();
             },
             /*row=*/0);
}

TEST(GradientCheckTest, ItemEmbeddingNegative) {
  GradWorld world;
  Context context = {{2, data::ActionType::kView}};
  CheckTable(world, context, 0, 1,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.item_embeddings();
             },
             /*row=*/1);
}

TEST(GradientCheckTest, ContextEmbedding) {
  GradWorld world;
  Context context = {{2, data::ActionType::kView},
                     {3, data::ActionType::kSearch}};
  CheckTable(world, context, 0, 1,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.context_embeddings();
             },
             /*row=*/2);
  CheckTable(world, context, 0, 1,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.context_embeddings();
             },
             /*row=*/3);
}

TEST(GradientCheckTest, TaxonomyEmbeddingNonShared) {
  GradWorld world;
  Context context = {{2, data::ActionType::kView}};
  // Items 0 (category a1) vs 2 (category b): category b's row (id 2) is
  // only on the negative side.
  CheckTable(world, context, 0, 2,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.taxonomy_embeddings();
             },
             /*row=*/2);
  // a1's row (id 3) only on the positive side.
  CheckTable(world, context, 0, 2,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.taxonomy_embeddings();
             },
             /*row=*/3);
}

TEST(GradientCheckTest, SharedAncestorHasZeroGradient) {
  GradWorld world;
  Context context = {{2, data::ActionType::kView}};
  // Items 0 and 1 share the full taxonomy path: the shared category rows
  // cancel in x = <u, phi_i - phi_j>, so their true gradient is zero.
  CheckTable(world, context, 0, 1,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.taxonomy_embeddings();
             },
             /*row=*/3);  // a1, shared by both items
  CheckTable(world, context, 0, 1,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.taxonomy_embeddings();
             },
             /*row=*/0);  // root, shared by everything
}

TEST(GradientCheckTest, BrandEmbedding) {
  GradWorld world;
  Context context = {{3, data::ActionType::kView}};
  // Items 1 (brand 1) vs 2 (brand 0).
  CheckTable(world, context, 1, 2,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.brand_embeddings();
             },
             /*row=*/1);
  CheckTable(world, context, 1, 2,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.brand_embeddings();
             },
             /*row=*/0);
}

TEST(GradientCheckTest, PriceEmbedding) {
  GradWorld world;
  Context context = {{3, data::ActionType::kView}};
  // Items 0 ($10) vs 2 ($500) live in different price buckets.
  int bucket0 = data::PriceBucket(10.0, data::kDefaultPriceBuckets);
  int bucket2 = data::PriceBucket(500.0, data::kDefaultPriceBuckets);
  ASSERT_NE(bucket0, bucket2);
  CheckTable(world, context, 0, 2,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.price_embeddings();
             },
             bucket0);
  CheckTable(world, context, 0, 2,
             [](BprModel& m) -> EmbeddingMatrix& {
               return m.price_embeddings();
             },
             bucket2);
}

}  // namespace
}  // namespace sigmund::core
