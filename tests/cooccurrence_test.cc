#include <gtest/gtest.h>

#include "core/cooccurrence.h"
#include "data/world_generator.h"

namespace sigmund::core {
namespace {

using data::ActionType;
using data::Interaction;

// Three users; items 0..4. Users 0 and 1 view {0,1} together in one
// session; user 2 views 2 then (after a long gap) 3. Users 0 and 1 buy
// {0, 4} together.
std::vector<std::vector<Interaction>> FixedHistories() {
  return {
      {{0, 0, ActionType::kView, 100},
       {0, 1, ActionType::kView, 160},
       {0, 0, ActionType::kConversion, 220},
       {0, 4, ActionType::kConversion, 280}},
      {{1, 0, ActionType::kView, 100},
       {1, 1, ActionType::kView, 130},
       {1, 0, ActionType::kConversion, 200},
       {1, 4, ActionType::kConversion, 260}},
      {{2, 2, ActionType::kView, 100},
       {2, 3, ActionType::kView, 100 + 7200}},  // separate session
  };
}

TEST(CooccurrenceTest, CoViewCountsWithinSession) {
  CooccurrenceModel model =
      CooccurrenceModel::Build(FixedHistories(), 5, {});
  EXPECT_GE(model.CoViewCount(0, 1), 2);  // both users
  EXPECT_EQ(model.CoViewCount(0, 1), model.CoViewCount(1, 0));  // symmetric
  EXPECT_EQ(model.CoViewCount(0, 2), 0);
}

TEST(CooccurrenceTest, SessionGapSplitsCoViews) {
  CooccurrenceModel model =
      CooccurrenceModel::Build(FixedHistories(), 5, {});
  // Items 2 and 3 viewed 2h apart -> different sessions -> no co-view.
  EXPECT_EQ(model.CoViewCount(2, 3), 0);

  CooccurrenceModel::Options wide;
  wide.session_gap_seconds = 10000;
  CooccurrenceModel merged =
      CooccurrenceModel::Build(FixedHistories(), 5, wide);
  EXPECT_EQ(merged.CoViewCount(2, 3), 1);
}

TEST(CooccurrenceTest, CoBuyCounts) {
  CooccurrenceModel model =
      CooccurrenceModel::Build(FixedHistories(), 5, {});
  EXPECT_EQ(model.CoBuyCount(0, 4), 2);
  EXPECT_EQ(model.CoBuyCount(4, 0), 2);
  EXPECT_EQ(model.CoBuyCount(0, 1), 0);  // 1 never bought
}

TEST(CooccurrenceTest, NeighborsSortedAndCapped) {
  data::WorldConfig config;
  config.seed = 9;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 150);
  CooccurrenceModel::Options options;
  options.max_neighbors = 5;
  CooccurrenceModel model = CooccurrenceModel::Build(
      world.data.histories, world.data.num_items(), options);
  for (data::ItemIndex i = 0; i < world.data.num_items(); ++i) {
    const auto& neighbors = model.CoViewed(i);
    EXPECT_LE(neighbors.size(), 5u);
    for (size_t k = 1; k < neighbors.size(); ++k) {
      EXPECT_GE(neighbors[k - 1].score, neighbors[k].score);
    }
    for (const auto& neighbor : neighbors) {
      EXPECT_NE(neighbor.item, i);
      EXPECT_GT(neighbor.count, 0);
    }
  }
}

TEST(CooccurrenceTest, PmiPositiveForAssociatedPairs) {
  CooccurrenceModel model =
      CooccurrenceModel::Build(FixedHistories(), 5, {});
  EXPECT_GT(model.Pmi(0, 1), 0.0);
  EXPECT_LT(model.Pmi(0, 2), -100.0);  // never co-occurred
}

TEST(CooccurrenceTest, MinCountFiltersWeakPairs) {
  CooccurrenceModel::Options strict;
  strict.min_count = 3;
  CooccurrenceModel model =
      CooccurrenceModel::Build(FixedHistories(), 5, strict);
  // 0-1 co-viewed twice < 3 -> filtered from neighbor lists (raw counts
  // remain queryable).
  EXPECT_TRUE(model.CoViewed(0).empty() ||
              model.CoViewed(0)[0].count >= 3);
  EXPECT_GE(model.CoViewCount(0, 1), 2);
}

TEST(CooccurrenceTest, ItemsByPopularityDescending) {
  CooccurrenceModel model =
      CooccurrenceModel::Build(FixedHistories(), 5, {});
  std::vector<data::ItemIndex> items = model.ItemsByPopularity();
  ASSERT_EQ(items.size(), 5u);
  for (size_t k = 1; k < items.size(); ++k) {
    EXPECT_GE(model.view_counts()[items[k - 1]],
              model.view_counts()[items[k]]);
  }
  EXPECT_EQ(items[0], 0);  // item 0 has 4 events
}

TEST(CooccurrenceTest, WindowBoundsPairGeneration) {
  // One long session of 20 distinct items with window 2: each item pairs
  // with at most its 2 predecessors.
  std::vector<std::vector<Interaction>> histories(1);
  for (int i = 0; i < 20; ++i) {
    histories[0].push_back({0, i, ActionType::kView, 100 + i * 10});
  }
  CooccurrenceModel::Options options;
  options.window = 2;
  CooccurrenceModel model = CooccurrenceModel::Build(histories, 20, options);
  EXPECT_GT(model.CoViewCount(5, 6), 0);
  EXPECT_GT(model.CoViewCount(5, 7), 0);
  EXPECT_EQ(model.CoViewCount(5, 8), 0);  // outside window
}

}  // namespace
}  // namespace sigmund::core
