#include <cmath>

#include <gtest/gtest.h>

#include "core/wrmf.h"
#include "data/world_generator.h"

namespace sigmund::core {
namespace {

data::RetailerWorld MakeWorld(uint64_t seed = 3, int items = 120) {
  data::WorldConfig config;
  config.seed = seed;
  config.mean_sessions_per_user = 4.0;
  data::WorldGenerator generator(config);
  return generator.GenerateRetailer(0, items);
}

TEST(WrmfStrengthTest, MonotoneInActionTier) {
  EXPECT_LT(WrmfStrength(data::ActionType::kView),
            WrmfStrength(data::ActionType::kSearch));
  EXPECT_LT(WrmfStrength(data::ActionType::kSearch),
            WrmfStrength(data::ActionType::kCart));
  EXPECT_LT(WrmfStrength(data::ActionType::kCart),
            WrmfStrength(data::ActionType::kConversion));
}

TEST(WrmfTest, DimensionsMatchData) {
  data::RetailerWorld world = MakeWorld();
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 8;
  config.iterations = 2;
  WrmfModel model =
      WrmfModel::Train(split.train, world.data.num_items(), config);
  EXPECT_EQ(model.num_users(), world.data.num_users());
  EXPECT_EQ(model.num_items(), world.data.num_items());
  EXPECT_EQ(model.dim(), 8);
}

TEST(WrmfTest, AlsIterationsDecreaseObjective) {
  // ALS is a block-coordinate-descent method: the confidence-weighted
  // objective must be non-increasing per sweep.
  data::RetailerWorld world = MakeWorld(7, 80);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 8;
  double previous = 1e300;
  for (int iterations = 1; iterations <= 4; ++iterations) {
    config.iterations = iterations;
    WrmfModel model =
        WrmfModel::Train(split.train, world.data.num_items(), config);
    double objective = model.Objective(split.train);
    EXPECT_LT(objective, previous + 1e-6) << "iterations=" << iterations;
    previous = objective;
  }
}

TEST(WrmfTest, ObservedItemsScoreHigherThanUnobserved) {
  data::RetailerWorld world = MakeWorld(11, 100);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 12;
  config.iterations = 8;
  WrmfModel model =
      WrmfModel::Train(split.train, world.data.num_items(), config);

  Rng rng(5);
  double observed = 0, unobserved = 0;
  int64_t n = 0;
  for (data::UserIndex u = 0; u < world.data.num_users(); ++u) {
    std::unordered_set<data::ItemIndex> seen;
    for (const data::Interaction& event : split.train[u]) {
      seen.insert(event.item);
    }
    for (data::ItemIndex item : seen) {
      observed += model.Score(u, item);
      data::ItemIndex other =
          static_cast<data::ItemIndex>(rng.Uniform(world.data.num_items()));
      if (seen.count(other) > 0) continue;
      unobserved += model.Score(u, other);
      ++n;
    }
  }
  ASSERT_GT(n, 100);
  EXPECT_GT(observed / n, unobserved / n + 0.1);
}

TEST(WrmfTest, LearnsToRankHeldOutItems) {
  data::RetailerWorld world = MakeWorld(13, 120);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 12;
  config.iterations = 8;
  WrmfModel model =
      WrmfModel::Train(split.train, world.data.num_items(), config);
  MetricSet metrics = model.EvaluateHoldout(split.train, split.holdout, 10);
  EXPECT_GT(metrics.num_examples, 0);
  EXPECT_GT(metrics.auc, 0.6);
  EXPECT_GT(metrics.map_at_k, 0.01);
}

TEST(WrmfTest, FoldInApproximatesTrainedUserFactor) {
  data::RetailerWorld world = MakeWorld(17, 100);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 8;
  config.iterations = 6;
  WrmfModel model =
      WrmfModel::Train(split.train, world.data.num_items(), config);

  // Fold in an existing user's history: the result should be exactly the
  // user's trained factor (same least-squares problem).
  data::UserIndex u = 0;
  for (data::UserIndex candidate = 0; candidate < world.data.num_users();
       ++candidate) {
    if (split.train[candidate].size() >= 3) {
      u = candidate;
      break;
    }
  }
  std::vector<float> folded = model.FoldInUser(split.train[u]);
  for (int k = 0; k < model.dim(); ++k) {
    EXPECT_NEAR(folded[k], model.user_factor(u)[k], 1e-4);
  }
}

TEST(WrmfTest, DeterministicForSeed) {
  data::RetailerWorld world = MakeWorld(19, 60);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 6;
  config.iterations = 3;
  WrmfModel a = WrmfModel::Train(split.train, world.data.num_items(), config);
  WrmfModel b = WrmfModel::Train(split.train, world.data.num_items(), config);
  for (int i = 0; i < world.data.num_items(); ++i) {
    for (int k = 0; k < 6; ++k) {
      EXPECT_EQ(a.item_factor(i)[k], b.item_factor(i)[k]);
    }
  }
}

TEST(WrmfTest, AllFactorsFinite) {
  data::RetailerWorld world = MakeWorld(23, 90);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 16;
  config.iterations = 5;
  config.alpha = 40.0;
  WrmfModel model =
      WrmfModel::Train(split.train, world.data.num_items(), config);
  for (int i = 0; i < model.num_items(); ++i) {
    for (int k = 0; k < model.dim(); ++k) {
      EXPECT_TRUE(std::isfinite(model.item_factor(i)[k]));
    }
  }
  for (int u = 0; u < model.num_users(); ++u) {
    for (int k = 0; k < model.dim(); ++k) {
      EXPECT_TRUE(std::isfinite(model.user_factor(u)[k]));
    }
  }
}

// Regularization sweep: larger lambda shrinks factor norms.
class WrmfLambdaTest : public ::testing::TestWithParam<double> {};

TEST_P(WrmfLambdaTest, TrainsStably) {
  data::RetailerWorld world = MakeWorld(29, 70);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  WrmfModel::Config config;
  config.num_factors = 8;
  config.iterations = 3;
  config.lambda = GetParam();
  WrmfModel model =
      WrmfModel::Train(split.train, world.data.num_items(), config);
  MetricSet metrics = model.EvaluateHoldout(split.train, split.holdout, 10);
  EXPECT_GE(metrics.auc, 0.0);
  EXPECT_LE(metrics.auc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, WrmfLambdaTest,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0));

}  // namespace
}  // namespace sigmund::core
