// Chaos-grade end-to-end test: the full daily pipeline (sweep → training
// MapReduce → model selection → inference MapReduce → store batch load)
// runs over a filesystem that injects transient errors and torn writes on
// every operation class, while the MapReduce layer kills whole map and
// reduce task attempts. The pipeline must not only survive — it must
// produce recommendations byte-identical to a fault-free run with the
// same seeds, because every fault class is either retried (transient
// kUnavailable), healed (torn writes caught by write-side read-back
// verification), or re-executed deterministically (killed tasks).

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/slo.h"
#include "data/world_generator.h"
#include "pipeline/checkpoint.h"
#include "pipeline/service.h"
#include "serving/frontend.h"
#include "sfs/fault_injection.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::pipeline {
namespace {

// Small sweep so the test stays fast: 2 retailers x 4 configs.
SigmundService::Options BaseOptions() {
  SigmundService::Options options;
  options.sweep.grid.factors = {4, 8};
  options.sweep.grid.lambdas_v = {0.1, 0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 3;
  options.sweep.incremental_top_k = 2;
  options.training.num_map_tasks = 4;
  options.training.max_parallel_tasks = 2;
  // Checkpointing and preemption off: killed tasks re-run from scratch,
  // and per-record training is deterministic, so a chaos run stays
  // byte-equivalent to a fault-free run. (Corrupt-checkpoint recovery is
  // covered directly below and in pipeline_test.)
  options.training.checkpoint_interval_seconds = 0.0;
  options.inference.inference.top_k = 5;
  return options;
}

// The acceptance bar from the issue: >=5% transient errors on every
// operation class, >=2% torn writes, >=10% map and reduce task failures.
sfs::FaultProfile ChaosProfile() {
  sfs::FaultProfile profile;
  profile.read_error_prob = 0.05;
  profile.write_error_prob = 0.05;
  profile.rename_error_prob = 0.05;
  profile.delete_error_prob = 0.05;
  profile.list_error_prob = 0.05;
  profile.torn_write_prob = 0.10;
  profile.seed = 2024;
  return profile;
}

SigmundService::Options ChaosOptions(const sfs::FaultCounters* counters) {
  SigmundService::Options options = BaseOptions();
  options.training.map_task_failure_prob = 0.15;
  options.training.reduce_task_failure_prob = 0.30;
  options.training.max_attempts_per_task = 30;
  options.inference.map_task_failure_prob = 0.15;
  options.inference.max_attempts_per_task = 30;
  RetryPolicy generous;
  generous.max_attempts = 10;
  options.sfs_retry = generous;
  options.training.sfs_retry = generous;
  options.inference.sfs_retry = generous;
  options.injected_faults = counters;
  return options;
}

struct ChaosFixture {
  data::WorldGenerator generator{[] {
    data::WorldConfig config;
    config.seed = 29;
    return config;
  }()};
  data::RetailerWorld r0 = generator.GenerateRetailer(0, 50);
  data::RetailerWorld r1 = generator.GenerateRetailer(1, 90);
};

TEST(ChaosTest, DailyRunSurvivesChaosAndMatchesFaultFreeRun) {
  ChaosFixture f;

  // Fault-free reference run, two days (full sweep + incremental).
  sfs::MemFileSystem clean_fs;
  SigmundService clean_service(&clean_fs, BaseOptions());
  clean_service.UpsertRetailer(&f.r0.data);
  clean_service.UpsertRetailer(&f.r1.data);
  StatusOr<DailyReport> clean_day1 = clean_service.RunDaily();
  ASSERT_TRUE(clean_day1.ok()) << clean_day1.status().ToString();
  StatusOr<DailyReport> clean_day2 = clean_service.RunDaily();
  ASSERT_TRUE(clean_day2.ok()) << clean_day2.status().ToString();

  // Chaos run: same seeds, same data, hostile filesystem.
  sfs::MemFileSystem base_fs;
  sfs::FaultInjectingFileSystem chaos_fs(&base_fs, ChaosProfile());
  SigmundService chaos_service(&chaos_fs,
                               ChaosOptions(&chaos_fs.counters()));
  chaos_service.UpsertRetailer(&f.r0.data);
  chaos_service.UpsertRetailer(&f.r1.data);
  StatusOr<DailyReport> chaos_day1 = chaos_service.RunDaily();
  ASSERT_TRUE(chaos_day1.ok()) << chaos_day1.status().ToString();
  StatusOr<DailyReport> chaos_day2 = chaos_service.RunDaily();
  ASSERT_TRUE(chaos_day2.ok()) << chaos_day2.status().ToString();

  // The chaos actually happened and the report shows it.
  EXPECT_GT(chaos_fs.counters().total(), 0);
  EXPECT_GT(chaos_fs.counters().torn_writes.load(), 0);
  const int64_t faults =
      chaos_day1->faults_injected + chaos_day2->faults_injected;
  const int64_t retries = chaos_day1->sfs_retries + chaos_day2->sfs_retries;
  const int64_t corruptions =
      chaos_day1->corruptions_detected + chaos_day2->corruptions_detected;
  const int64_t healed =
      chaos_day1->corruptions_healed + chaos_day2->corruptions_healed;
  EXPECT_EQ(faults, chaos_fs.counters().total());
  EXPECT_GT(retries, 0);
  EXPECT_GT(corruptions, 0);
  EXPECT_GT(healed, 0);
  EXPECT_GT(chaos_day1->map_failures + chaos_day2->map_failures, 0);
  EXPECT_GT(chaos_day1->reduce_failures + chaos_day2->reduce_failures, 0);

  // Every fault was masked: the chaos run is equivalent to the clean one.
  EXPECT_EQ(chaos_day1->models_trained, clean_day1->models_trained);
  EXPECT_EQ(chaos_day2->models_trained, clean_day2->models_trained);
  EXPECT_DOUBLE_EQ(chaos_day1->mean_best_map, clean_day1->mean_best_map);
  EXPECT_DOUBLE_EQ(chaos_day2->mean_best_map, clean_day2->mean_best_map);
  EXPECT_EQ(chaos_day1->quality_regressions, clean_day1->quality_regressions);
  EXPECT_EQ(chaos_day2->quality_regressions, clean_day2->quality_regressions);

  // The served state matches exactly: same store shape, and the durable
  // recommendation batches are byte-identical (read through the raw base
  // filesystem — healing must have left intact bytes on "disk").
  EXPECT_EQ(chaos_service.store().num_retailers(),
            clean_service.store().num_retailers());
  EXPECT_EQ(chaos_service.store().num_items(),
            clean_service.store().num_items());
  for (data::RetailerId id : {0, 1}) {
    StatusOr<std::string> clean_blob = clean_fs.Read(RecommendationPath(id));
    StatusOr<std::string> chaos_blob = base_fs.Read(RecommendationPath(id));
    ASSERT_TRUE(clean_blob.ok());
    ASSERT_TRUE(chaos_blob.ok());
    EXPECT_EQ(*chaos_blob, *clean_blob) << "retailer " << id;
    EXPECT_EQ(chaos_service.store().RetailerVersion(id),
              clean_service.store().RetailerVersion(id));
  }

  // And serving works off the chaos-built store.
  auto clean_recs = clean_service.store().ServeContext(
      0, {{3, data::ActionType::kView}});
  auto chaos_recs = chaos_service.store().ServeContext(
      0, {{3, data::ActionType::kView}});
  ASSERT_TRUE(clean_recs.ok());
  ASSERT_TRUE(chaos_recs.ok());
  ASSERT_EQ(chaos_recs->size(), clean_recs->size());
  for (size_t i = 0; i < clean_recs->size(); ++i) {
    EXPECT_EQ((*chaos_recs)[i].item, (*clean_recs)[i].item);
    EXPECT_DOUBLE_EQ((*chaos_recs)[i].score, (*clean_recs)[i].score);
  }
}

// Observability must be purely passive: the same chaos day run with an
// external registry + SimClock tracer — and the fault injector live-wired
// into the registry — leaves every durable byte identical to the plain
// chaos run, and the registry deltas agree with both the report and the
// injector's own counters.
TEST(ChaosTest, ExternalObservabilityNeverPerturbsResults) {
  ChaosFixture f;

  // Run A: service-owned observability (the default).
  sfs::MemFileSystem base_a;
  sfs::FaultInjectingFileSystem fs_a(&base_a, ChaosProfile());
  SigmundService service_a(&fs_a, ChaosOptions(&fs_a.counters()));
  service_a.UpsertRetailer(&f.r0.data);
  service_a.UpsertRetailer(&f.r1.data);
  StatusOr<DailyReport> day_a = service_a.RunDaily();
  ASSERT_TRUE(day_a.ok()) << day_a.status().ToString();

  // Run B: identical seeds and data, external everything.
  sfs::MemFileSystem base_b;
  sfs::FaultInjectingFileSystem fs_b(&base_b, ChaosProfile());
  obs::MetricRegistry registry;
  SimClock clock;
  obs::Tracer tracer(&clock);
  SigmundService::Options options = ChaosOptions(&fs_b.counters());
  options.metrics = &registry;
  options.tracer = &tracer;
  options.clock = &clock;
  // SLO engine wired into run B only: evaluation happens after each run
  // over a snapshot, so it must not move a single byte of output.
  obs::SloObjective map_failures;
  map_failures.name = "map_reliability";
  map_failures.total_counter = "mapreduce_task_attempts_total";
  map_failures.bad_counter = "mapreduce_task_failures_total";
  map_failures.objective = 0.5;  // chaos run: generous budget
  obs::SloEngine::Options slo_options;
  slo_options.objectives.push_back(map_failures);
  obs::SloEngine slo(slo_options, &registry);
  options.slo = &slo;
  SigmundService service_b(&fs_b, options);
  fs_b.SetMetrics(&registry);  // live per-op fault counting
  service_b.UpsertRetailer(&f.r0.data);
  service_b.UpsertRetailer(&f.r1.data);
  StatusOr<DailyReport> day_b = service_b.RunDaily();
  ASSERT_TRUE(day_b.ok()) << day_b.status().ToString();

  // Identical fault draws, byte-identical durable recommendations.
  EXPECT_GT(fs_b.counters().total(), 0);
  EXPECT_EQ(fs_b.counters().total(), fs_a.counters().total());
  for (data::RetailerId id : {0, 1}) {
    StatusOr<std::string> blob_a = base_a.Read(RecommendationPath(id));
    StatusOr<std::string> blob_b = base_b.Read(RecommendationPath(id));
    ASSERT_TRUE(blob_a.ok());
    ASSERT_TRUE(blob_b.ok());
    EXPECT_EQ(*blob_b, *blob_a) << "retailer " << id;
  }
  EXPECT_EQ(day_b->models_trained, day_a->models_trained);
  EXPECT_DOUBLE_EQ(day_b->mean_best_map, day_a->mean_best_map);

  // The registry tells the same story as the report, with no double
  // counting between live per-op fault counters and the end-of-run
  // mirror.
  obs::RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("sfs_faults_injected_total"),
            fs_b.counters().total());
  EXPECT_EQ(day_b->faults_injected, fs_b.counters().total());
  EXPECT_EQ(day_b->faults_injected, day_a->faults_injected);
  EXPECT_EQ(snapshot.CounterValue("sfs_retries_total"), day_b->sfs_retries);
  EXPECT_EQ(snapshot.CounterValue("sfs_corruptions_detected_total"),
            day_b->corruptions_detected);
  EXPECT_EQ(snapshot.CounterValue("mapreduce_task_failures_total",
                                  {{"phase", "map"}}),
            day_b->map_failures);
  EXPECT_EQ(day_b->sfs_retries, day_a->sfs_retries);

  // A machine-readable profile came out of the chaos day too.
  EXPECT_FALSE(day_b->profile_json.empty());
  EXPECT_NE(day_b->profile_json.find("\"run_daily/day0\""),
            std::string::npos);

  // The SLO engine observed the chaos day (post-run evaluation) and its
  // verdict rode along in the report without perturbing any output above.
  EXPECT_FALSE(day_b->slo_json.empty());
  EXPECT_NE(day_b->slo_json.find("\"map_reliability\""), std::string::npos);
  EXPECT_NE(day_b->profile_json.find("\"slo\""), std::string::npos);
}

// Direct acceptance criterion: a torn checkpoint write must never crash
// the pipeline or silently corrupt a model.
TEST(ChaosTest, TornCheckpointWritesNeverCorruptRestore) {
  data::WorldConfig config;
  config.seed = 3;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 60);
  core::HyperParams params;
  params.num_factors = 4;
  core::BprModel model(&world.data.catalog, params);
  Rng rng(1);
  model.InitRandom(&rng);

  // Every write torn: the write-side verify refuses to commit garbage —
  // ForceCheckpoint fails with kDataLoss, and Restore still reports a
  // clean "no checkpoint" instead of handing back a broken model.
  {
    sfs::MemFileSystem base;
    sfs::FaultProfile profile;
    profile.torn_write_prob = 1.0;
    sfs::FaultInjectingFileSystem fs(&base, profile);
    SimClock clock;
    CheckpointManager manager(&fs, &clock, "ck/r0", 1.0);
    Status status = manager.ForceCheckpoint(model, 1);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
    EXPECT_EQ(manager.Restore(&world.data.catalog).status().code(),
              StatusCode::kNotFound);
  }

  // Half the writes torn: checkpointing heals through it, and what lands
  // on disk restores the exact model.
  {
    sfs::MemFileSystem base;
    sfs::FaultProfile profile;
    profile.torn_write_prob = 0.5;
    profile.seed = 5;
    sfs::FaultInjectingFileSystem fs(&base, profile);
    SimClock clock;
    sfs::ReliableIoCounters io;
    CheckpointManager manager(&fs, &clock, "ck/r0", 1.0, RetryPolicy{}, &io);
    for (int epoch = 1; epoch <= 4; ++epoch) {
      ASSERT_TRUE(manager.ForceCheckpoint(model, epoch).ok());
    }
    EXPECT_GT(fs.counters().torn_writes.load(), 0);
    EXPECT_GT(io.corruptions_detected.load(), 0);
    EXPECT_GT(io.corruptions_healed.load(), 0);
    EXPECT_LE(io.corruptions_healed.load(), io.corruptions_detected.load());
    StatusOr<CheckpointManager::Restored> restored =
        manager.Restore(&world.data.catalog);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->epoch, 4);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(restored->model.item_embeddings().row(0)[k],
                model.item_embeddings().row(0)[k]);
    }
  }
}

// --- Lease churn chaos -------------------------------------------------------

// Aggressive machine churn on top of the SFS fault profile: with
// simulated_seconds_per_step = 1.0 an epoch spans hundreds of simulated
// seconds, so a 30-preemptions/hour schedule (mean inter-eviction 120 s)
// revokes nearly every machine at least once per epoch. The huge grace
// window means every revocation is caught at an epoch boundary with time
// to flush a final checkpoint, and the low escalation threshold forces
// repeatedly-evicted tasks onto regular-priority machines.
SigmundService::Options ChurnChaosOptions(const sfs::FaultCounters* counters) {
  SigmundService::Options options = ChaosOptions(counters);
  options.training.checkpoint_interval_seconds = 240.0;
  options.training.simulated_seconds_per_step = 1.0;
  options.training.churn.preemption_rate_per_hour = 30.0;
  options.training.churn.eviction_grace_seconds = 1e6;
  options.training.churn.escalate_after_evictions = 2;
  options.training.churn.seed = 77;
  return options;
}

// What one 3-day churn-chaos run leaves behind, for cross-run comparison.
struct ChurnRunResult {
  bool all_ok = false;
  std::vector<std::string> reports;           // DailyReport::ToString per day
  std::map<data::RetailerId, std::string> blobs;  // durable rec batches
  std::map<data::RetailerId, int64_t> versions;
  int64_t evictions = 0;
  int64_t grace_checkpoints = 0;
  int64_t hard_evictions = 0;
  int64_t escalations = 0;
  int64_t budget_exhausted = 0;
  std::string day1_profile;
};

TEST(ChaosTest, ThreeDayChurnChaosKeepsFullCoverageAndIsDeterministic) {
  ChaosFixture f;

  auto run_three_days = [&f]() {
    ChurnRunResult result;
    sfs::MemFileSystem base;
    sfs::FaultInjectingFileSystem chaos_fs(&base, ChaosProfile());
    SimClock clock;
    SigmundService::Options options =
        ChurnChaosOptions(&chaos_fs.counters());
    options.clock = &clock;  // deterministic wall timings in the report
    SigmundService service(&chaos_fs, options);
    service.UpsertRetailer(&f.r0.data);
    service.UpsertRetailer(&f.r1.data);
    for (int day = 0; day < 3; ++day) {
      StatusOr<DailyReport> report = service.RunDaily();
      if (!report.ok()) {
        ADD_FAILURE() << "day " << day << ": " << report.status().ToString();
        return result;
      }
      result.reports.push_back(report->ToString());
      result.evictions += report->evictions;
      result.grace_checkpoints += report->eviction_grace_checkpoints;
      result.hard_evictions += report->hard_evictions;
      result.escalations += report->priority_escalations;
      result.budget_exhausted += report->preemption_budget_exhausted;
      if (day == 0) result.day1_profile = report->profile_json;
    }
    for (data::RetailerId id : {0, 1}) {
      result.versions[id] = service.store().RetailerVersion(id);
      StatusOr<std::string> blob = base.Read(RecommendationPath(id));
      if (blob.ok()) result.blobs[id] = *blob;
    }
    result.all_ok = true;
    return result;
  };

  ChurnRunResult a = run_three_days();
  ASSERT_TRUE(a.all_ok);

  // 100% retailer coverage: churn never cost a retailer its batch.
  for (data::RetailerId id : {0, 1}) {
    EXPECT_GT(a.versions[id], 0) << "retailer " << id;
    EXPECT_FALSE(a.blobs[id].empty()) << "retailer " << id;
  }

  // The churn actually bit, and the counters tell a coherent story:
  // every revocation was caught inside the (huge) grace window, at least
  // one grace-window checkpoint was flushed, at least one task escalated
  // to regular priority, and nobody burned through the preemption budget.
  EXPECT_GT(a.evictions, 0);
  EXPECT_GE(a.grace_checkpoints, 1);
  EXPECT_LE(a.grace_checkpoints, a.evictions);
  EXPECT_EQ(a.hard_evictions, 0);
  EXPECT_GE(a.escalations, 1);
  EXPECT_EQ(a.budget_exhausted, 0);
  EXPECT_NE(a.reports[0].find("churn: evictions="), std::string::npos);

  // The new counters surface in the machine-readable run profile.
  for (const char* counter :
       {"training_evictions_total", "training_eviction_grace_checkpoints_total",
        "training_priority_escalations_total",
        "mapreduce_backup_attempts_total"}) {
    EXPECT_NE(a.day1_profile.find(counter), std::string::npos) << counter;
  }

  // Byte-identical rerun: same seeds, same churn schedule, same faults —
  // same reports, same durable recommendation bytes.
  ChurnRunResult b = run_three_days();
  ASSERT_TRUE(b.all_ok);
  ASSERT_EQ(b.reports.size(), a.reports.size());
  for (size_t day = 0; day < a.reports.size(); ++day) {
    EXPECT_EQ(b.reports[day], a.reports[day]) << "day " << day;
  }
  EXPECT_EQ(b.blobs, a.blobs);
  EXPECT_EQ(b.versions, a.versions);
}

// Degradation ladder, end to end: models stopped by the per-model
// deadline are committed anyway (availability) but their retailers are
// marked degraded, and from day 2 on a degraded retailer keeps serving
// its previous batch instead of loading the rushed one. Serving-side
// breaker trips and fallbacks recorded between runs surface in the next
// day's report.
TEST(ChaosTest, DeadlineDegradedRetailersKeepServingPreviousBatch) {
  ChaosFixture f;
  sfs::MemFileSystem fs;  // no SFS faults: isolate the deadline ladder
  SimClock clock;
  SigmundService::Options options = BaseOptions();
  options.training.checkpoint_interval_seconds = 60.0;
  options.training.simulated_seconds_per_step = 1.0;
  // An epoch spans >= num_positions simulated seconds, so every model
  // blows this budget at its first epoch boundary.
  options.training.per_model_deadline_seconds = 10.0;
  options.clock = &clock;
  SigmundService service(&fs, options);
  service.UpsertRetailer(&f.r0.data);
  service.UpsertRetailer(&f.r1.data);

  StatusOr<DailyReport> day1 = service.RunDaily();
  ASSERT_TRUE(day1.ok()) << day1.status().ToString();
  // Day 1: everyone degraded, but with no previous batch a degraded
  // model still beats an empty store — full coverage from day one.
  EXPECT_GT(day1->deadline_exceeded, 0);
  EXPECT_EQ(day1->degraded_retailers, 2);
  ASSERT_EQ(service.store().RetailerVersion(0), 1);
  ASSERT_EQ(service.store().RetailerVersion(1), 1);
  auto day1_served = service.store().ServeContext(
      0, {{3, data::ActionType::kView}});
  ASSERT_TRUE(day1_served.ok());

  // Between the runs, serving traffic hits a failing store path: the
  // breaker (threshold 1) trips on the first error and the popularity
  // rung serves the request. Both counters land in the shared registry.
  serving::Frontend::Options frontend_options;
  frontend_options.breaker_failure_threshold = 1;
  serving::Frontend frontend(&service.store(), nullptr, service.metrics(),
                             &clock, frontend_options);
  frontend.SetPopularityFallback(0, {{1, 1.0}});
  frontend.SetLookupForTesting([](data::RetailerId, const core::Context&) {
    return StatusOr<std::vector<core::ScoredItem>>(
        UnavailableError("store down"));
  });
  serving::RecommendationRequest request;
  request.retailer = 0;
  request.context = {{0, data::ActionType::kView}};
  auto fallback = frontend.Handle(request);
  ASSERT_TRUE(fallback.ok());
  EXPECT_TRUE(fallback->degraded);

  StatusOr<DailyReport> day2 = service.RunDaily();
  ASSERT_TRUE(day2.ok()) << day2.status().ToString();
  EXPECT_EQ(day2->degraded_retailers, 2);
  // Degraded retailers with a previous batch keep it: the store version
  // never advanced and serving still answers with day 1's list.
  EXPECT_EQ(service.store().RetailerVersion(0), 1);
  EXPECT_EQ(service.store().RetailerVersion(1), 1);
  auto day2_served = service.store().ServeContext(
      0, {{3, data::ActionType::kView}});
  ASSERT_TRUE(day2_served.ok());
  ASSERT_EQ(day2_served->size(), day1_served->size());
  for (size_t i = 0; i < day1_served->size(); ++i) {
    EXPECT_EQ((*day2_served)[i].item, (*day1_served)[i].item);
  }
  // The serving-health counters recorded between runs show up in the
  // day-2 report (cumulative snapshot values).
  EXPECT_GE(day2->breaker_trips, 1);
  EXPECT_GE(day2->fallbacks_served, 1);
  EXPECT_NE(day2->ToString().find("degraded_retailers=2"),
            std::string::npos);
}

// The inference MapReduce is speculation-safe (its mapper only reads
// models), so turning speculative backups on under full chaos must not
// change a single durable byte — first-commit-wins plus deterministic
// mappers give exactly-once output either way.
TEST(ChaosTest, SpeculativeInferenceUnderChaosMatchesRetryOnly) {
  ChaosFixture f;

  auto run_one_day = [&f](bool speculate) {
    std::map<data::RetailerId, std::string> blobs;
    sfs::MemFileSystem base;
    sfs::FaultInjectingFileSystem chaos_fs(&base, ChaosProfile());
    SigmundService::Options options = ChaosOptions(&chaos_fs.counters());
    options.inference.speculative_backups = speculate;
    SigmundService service(&chaos_fs, options);
    service.UpsertRetailer(&f.r0.data);
    service.UpsertRetailer(&f.r1.data);
    StatusOr<DailyReport> day = service.RunDaily();
    if (!day.ok()) {
      ADD_FAILURE() << day.status().ToString();
      return blobs;
    }
    for (data::RetailerId id : {0, 1}) {
      StatusOr<std::string> blob = base.Read(RecommendationPath(id));
      if (blob.ok()) blobs[id] = *blob;
    }
    return blobs;
  };

  std::map<data::RetailerId, std::string> retry_only = run_one_day(false);
  std::map<data::RetailerId, std::string> speculative = run_one_day(true);
  ASSERT_EQ(retry_only.size(), 2u);
  EXPECT_EQ(speculative, retry_only);
}

}  // namespace
}  // namespace sigmund::pipeline
