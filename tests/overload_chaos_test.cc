// Overload chaos: hammers one Frontend from many threads while the
// circuit breaker flaps between open/half-open, the admission controller
// admits and releases, and the LRU cap churns retailer states — the three
// mutating paths under Frontend::mu_ plus the controller's own lock, all
// racing. Runs under the `chaos` ctest label, so the CI ASan/TSan lanes
// pick it up; TSan is the real assertion here.
//
// Also smoke-runs the million-user load harness at a small scale and
// checks the same-seed determinism contract end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "serving/admission.h"
#include "serving/frontend.h"
#include "serving/loadgen.h"

namespace sigmund {
namespace {

using serving::AdmissionController;
using serving::Frontend;
using serving::RequestPriority;

TEST(OverloadChaosTest, ConcurrentHandleUnderBreakerLimiterAndLru) {
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 2000;
  constexpr int kRetailers = 64;
  constexpr int kStateCap = 16;

  obs::MetricRegistry metrics;
  AdmissionController::Options coptions;
  coptions.limiter.initial_limit = 4;
  coptions.limiter.min_limit = 2;
  coptions.limiter.max_limit = 16;
  coptions.limiter.window = 8;
  // RealClock: actual wall time drives breaker cooldowns and bucket
  // refills, so thread interleaving (not a scripted SimClock) decides
  // when the breaker half-opens.
  AdmissionController controller(coptions, &metrics, nullptr);

  Frontend::Options options;
  options.admission = &controller;
  options.max_retailer_states = kStateCap;
  options.breaker_failure_threshold = 3;
  options.breaker_open_seconds = 0.0005;  // flaps open -> half-open fast
  options.store_retries = 2;
  options.retry_budget.ratio = 0.2;
  Frontend frontend(nullptr, nullptr, &metrics, nullptr, options);

  // The lookup itself races: every 7th call fails, so breakers trip,
  // half-open probes go through, and the retry budget is spent — all
  // while other threads serve fine and churn the LRU.
  std::atomic<int64_t> lookups{0};
  frontend.SetLookupForTesting(
      [&lookups](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        const int64_t n = lookups.fetch_add(1, std::memory_order_relaxed);
        if (n % 7 == 6) return UnavailableError("injected store failure");
        return std::vector<core::ScoredItem>{{1, 2.0}, {2, 1.0}};
      });

  std::atomic<int64_t> ok{0}, shed{0}, failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        serving::RecommendationRequest request;
        // Thread-skewed retailer choice keeps the LRU evicting hot.
        request.retailer = (t * 31 + i * 7) % kRetailers;
        request.context = {{0, data::ActionType::kView}};
        if (i % 17 == 0) request.priority = RequestPriority::kHealthProbe;
        auto response = frontend.Handle(request);
        if (response.ok()) {
          ++ok;
        } else if (response.status().code() ==
                   StatusCode::kResourceExhausted) {
          ++shed;
        } else {
          ++failed;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Liveness + conservation: every admitted request released its slot,
  // every request got exactly one outcome, the LRU held its cap.
  EXPECT_EQ(controller.in_flight(), 0);
  EXPECT_EQ(ok + shed + failed,
            static_cast<int64_t>(kThreads) * kRequestsPerThread);
  EXPECT_GT(ok.load(), 0);
  EXPECT_LE(frontend.NumRetailerStates(), kStateCap);
  EXPECT_GE(controller.concurrency_limit(), coptions.limiter.min_limit);
  EXPECT_LE(controller.concurrency_limit(), coptions.limiter.max_limit);
}

TEST(OverloadChaosTest, LoadHarnessOverloadSmoke) {
  // A compressed e21: a few simulated seconds at 3x capacity with flash
  // crowd, retry pressure and probes. Checks the harness's headline
  // invariants (admission keeps goodput alive, probes shed first, reruns
  // are byte-identical) without the bench's full duration.
  serving::LoadGenOptions options;
  options.seed = 77;
  options.duration_seconds = 3.0;
  options.num_retailers = 50;
  options.open_rps = 24000.0;  // ~3x the 8k/s service capacity
  options.closed_users = 2000;
  options.think_seconds = 1.0;
  options.probe_rps = 50.0;
  options.canary_rps = 50.0;
  options.flash_at_seconds = 1.0;
  options.flash_duration_seconds = 0.5;
  options.flash_factor = 2.0;
  options.client_retries = 2;
  options.retry_budget_ratio = 0.1;
  options.admission.queue_capacity = 64;
  options.admission.limiter.max_limit = 2048;

  const serving::LoadGenReport report = serving::RunLoadGenerator(options);
  const auto& users =
      report.priorities[static_cast<int>(RequestPriority::kUserFacing)];
  const auto& probes =
      report.priorities[static_cast<int>(RequestPriority::kHealthProbe)];
  EXPECT_GT(report.total_offered, 0);
  EXPECT_GT(users.good, 0);
  // Overloaded 3x: something must shed, and probes shed proportionally
  // harder than user traffic (priority ordering).
  EXPECT_GT(probes.shed + users.shed, 0);
  if (probes.offered > 0 && users.offered > 0 && users.shed > 0) {
    const double probe_shed_rate =
        static_cast<double>(probes.shed) / probes.offered;
    const double user_shed_rate =
        static_cast<double>(users.shed) / users.offered;
    EXPECT_GE(probe_shed_rate, user_shed_rate);
  }
  // Goodput survives the overload (no congestion collapse).
  EXPECT_GT(report.goodput_rps, 1000.0);

  const serving::LoadGenReport rerun = serving::RunLoadGenerator(options);
  EXPECT_EQ(report.decision_hash, rerun.decision_hash);
  EXPECT_EQ(report.total_offered, rerun.total_offered);
  EXPECT_EQ(report.total_completed, rerun.total_completed);
}

}  // namespace
}  // namespace sigmund
