// Request-scoped tracing with tail-based sampling, exemplar-linked
// histograms, and SLO burn-rate alerting (DESIGN.md §10): the
// RequestTracer keep policy, verdict precedence, Frontend span trees for
// shed / brownout / deadline-overrun requests, the SloEngine state
// machine, and the flash-crowd scenario where 100% of the interesting
// tail is kept, the p99 exemplar resolves to a kept trace, at least one
// SLO alert fires and resolves — and turning all of it off leaves the
// simulation's decision_hash byte-identical (passivity).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/trace.h"
#include "serving/admission.h"
#include "serving/frontend.h"
#include "serving/loadgen.h"

namespace sigmund {
namespace {

using serving::AdmissionController;
using serving::Frontend;
using serving::RequestPriority;

// --- RequestTracer: tail-based sampling --------------------------------------

obs::RequestTracer::Options TracerOptions(double sample_rate,
                                          int max_kept = 4096,
                                          uint64_t seed = 0) {
  obs::RequestTracer::Options options;
  options.sample_rate = sample_rate;
  options.max_kept_traces = max_kept;
  options.seed = seed;
  return options;
}

TEST(RequestTracerTest, KeepsEveryNonHealthyTrace) {
  SimClock clock;
  obs::RequestTracer tracer(TracerOptions(/*sample_rate=*/0.0), nullptr,
                            &clock);
  const obs::TraceVerdict bad[] = {obs::TraceVerdict::kShed,
                                   obs::TraceVerdict::kError,
                                   obs::TraceVerdict::kDeadlineOverrun};
  for (obs::TraceVerdict verdict : bad) {
    obs::RequestTrace trace = tracer.StartRequest("req");
    trace.SetVerdict(verdict);
    EXPECT_TRUE(tracer.Submit(std::move(trace)));
  }
  // Healthy traces at sample_rate 0 are all dropped.
  for (int i = 0; i < 100; ++i) {
    obs::RequestTrace trace = tracer.StartRequest("req");
    EXPECT_FALSE(tracer.Submit(std::move(trace)));
  }
  EXPECT_EQ(tracer.KeptCount(), 3);
}

TEST(RequestTracerTest, HealthySamplingIsDeterministicAndSeedStable) {
  SimClock clock_a;
  SimClock clock_b;
  obs::RequestTracer a(TracerOptions(0.25, 1 << 16, /*seed=*/7), nullptr,
                       &clock_a);
  obs::RequestTracer b(TracerOptions(0.25, 1 << 16, /*seed=*/7), nullptr,
                       &clock_b);
  int kept = 0;
  for (int i = 0; i < 4000; ++i) {
    obs::RequestTrace ta = a.StartRequest("req");
    obs::RequestTrace tb = b.StartRequest("req");
    // The keep decision is a pure function of (trace id, seed): Submit
    // agrees with the WouldKeepHealthy oracle and across instances.
    const uint64_t id = ta.trace_id();
    const bool would = a.WouldKeepHealthy(id);
    EXPECT_EQ(a.Submit(std::move(ta)), would);
    EXPECT_EQ(b.Submit(std::move(tb)), would);
    kept += would ? 1 : 0;
  }
  // ~25% within a loose band (the hash is uniform, not exact).
  EXPECT_GT(kept, 4000 * 0.20);
  EXPECT_LT(kept, 4000 * 0.30);

  // A different seed makes different healthy-keep decisions.
  SimClock clock_c;
  obs::RequestTracer c(TracerOptions(0.25, 1 << 16, /*seed=*/8), nullptr,
                       &clock_c);
  bool any_difference = false;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t id = static_cast<uint64_t>(i) + 1;
    if (a.WouldKeepHealthy(id) != c.WouldKeepHealthy(id)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RequestTracerTest, RingBufferEvictsOldestFirst) {
  SimClock clock;
  obs::RequestTracer tracer(TracerOptions(1.0, /*max_kept=*/4), nullptr,
                            &clock);
  for (int i = 0; i < 10; ++i) {
    obs::RequestTrace trace = tracer.StartRequest("req");
    ASSERT_TRUE(tracer.Submit(std::move(trace)));
  }
  EXPECT_EQ(tracer.KeptCount(), 4);
  const std::vector<obs::RequestTraceRecord> kept = tracer.KeptTraces();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest first: ids 7, 8, 9, 10 survive.
  EXPECT_EQ(kept[0].trace_id, 7u);
  EXPECT_EQ(kept[3].trace_id, 10u);
  EXPECT_TRUE(tracer.HasTrace(10));
  EXPECT_FALSE(tracer.HasTrace(6));
}

TEST(RequestTracerTest, VerdictUpgradesButNeverDowngrades) {
  SimClock clock;
  obs::RequestTracer tracer(TracerOptions(0.0), nullptr, &clock);
  obs::RequestTrace trace = tracer.StartRequest("req");
  EXPECT_EQ(trace.verdict(), obs::TraceVerdict::kHealthy);
  trace.SetVerdict(obs::TraceVerdict::kShed);
  // A later fallback success must not erase the shed classification.
  trace.SetVerdict(obs::TraceVerdict::kHealthy);
  EXPECT_EQ(trace.verdict(), obs::TraceVerdict::kShed);
  EXPECT_TRUE(tracer.Submit(std::move(trace)));
  EXPECT_EQ(tracer.KeptTraces()[0].verdict, obs::TraceVerdict::kShed);
}

TEST(RequestTracerTest, SpanTreeAndAnnotationsSurviveSubmit) {
  SimClock clock;
  obs::RequestTracer tracer(TracerOptions(1.0), nullptr, &clock);
  obs::RequestTrace trace = tracer.StartRequest("serving/handle");
  trace.Annotate(0, "retailer", "42");
  const int64_t admission = trace.StartSpan("admission");
  trace.Annotate(admission, "outcome", "admitted");
  clock.AdvanceMicros(5);
  trace.EndSpan(admission);
  const int64_t lookup = trace.StartSpan("store_lookup");
  clock.AdvanceMicros(100);
  // Left open on purpose: Submit closes any open span.
  ASSERT_TRUE(tracer.Submit(std::move(trace)));

  const obs::RequestTraceRecord record = tracer.KeptTraces()[0];
  EXPECT_EQ(record.name, "serving/handle");
  ASSERT_EQ(record.spans.size(), 3u);
  EXPECT_EQ(record.spans[0].id, 1);  // root
  EXPECT_EQ(record.Annotation("retailer"), "42");
  EXPECT_EQ(record.spans[1].name, "admission");
  EXPECT_EQ(record.spans[1].parent_id, 1);
  EXPECT_EQ(record.spans[1].Annotation("outcome"), "admitted");
  EXPECT_EQ(record.spans[1].DurationMicros(), 5);
  EXPECT_EQ(record.spans[2].id, lookup);
  EXPECT_EQ(record.spans[2].end_micros, clock.NowMicros());
  // JSON carries the verdict and every span.
  const std::string json = record.ToJson();
  EXPECT_NE(json.find("\"verdict\":\"healthy\""), std::string::npos);
  EXPECT_NE(json.find("store_lookup"), std::string::npos);
}

TEST(RequestTracerTest, InactiveContextIsANoOp) {
  obs::TraceContext context;
  EXPECT_FALSE(context.active());
  EXPECT_EQ(context.StartSpan("x"), 0);
  context.EndSpan(0);
  context.Annotate("k", "v");
  context.SetVerdict(obs::TraceVerdict::kError);  // must not crash
}

// --- Frontend span trees -----------------------------------------------------

Frontend::StoreLookup FixedLookup() {
  return [](data::RetailerId, const core::Context&)
             -> StatusOr<std::vector<core::ScoredItem>> {
    return std::vector<core::ScoredItem>{{1, 2.0}, {2, 1.5}, {3, 1.0}};
  };
}

serving::RecommendationRequest UserRequest(data::RetailerId retailer = 1) {
  serving::RecommendationRequest request;
  request.retailer = retailer;
  request.context = {{0, data::ActionType::kView}};
  return request;
}

AdmissionController::Options SmallController(int limit) {
  AdmissionController::Options options;
  options.limiter.initial_limit = limit;
  options.limiter.min_limit = limit;
  options.limiter.max_limit = limit;
  options.queue_capacity = 0;
  return options;
}

TEST(FrontendTraceTest, ShedRequestTraceNamesReasonAndQueueState) {
  SimClock clock;
  obs::MetricRegistry metrics;
  obs::RequestTracer tracer(TracerOptions(0.0), &metrics, &clock);
  AdmissionController::Options coptions = SmallController(1);
  coptions.retailer_tokens_per_second = 0.001;  // bucket: burst then dry
  coptions.retailer_burst = 1.0;
  AdmissionController controller(coptions, &metrics, &clock);
  Frontend::Options options;
  options.admission = &controller;
  options.request_tracer = &tracer;
  Frontend frontend(nullptr, nullptr, &metrics, &clock, options);
  frontend.SetLookupForTesting(FixedLookup());

  ASSERT_TRUE(frontend.Handle(UserRequest()).ok());  // spends the burst
  const auto shed = frontend.Handle(UserRequest());
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  // Only the shed request is kept (sample_rate 0 drops the healthy one).
  ASSERT_EQ(tracer.KeptCount(), 1);
  const obs::RequestTraceRecord record = tracer.KeptTraces()[0];
  EXPECT_EQ(record.verdict, obs::TraceVerdict::kShed);
  EXPECT_EQ(record.Annotation("shed_reason"), "rate_limited");
  EXPECT_EQ(record.Annotation("outcome"), "shed");
  EXPECT_EQ(record.Annotation("priority"), "user_facing");
  // The admission span carries the controller state the decision saw.
  ASSERT_GE(record.spans.size(), 2u);
  const obs::SpanRecord& admission = record.spans[1];
  EXPECT_EQ(admission.name, "admission");
  EXPECT_EQ(admission.Annotation("queue_depth"), "0");
  EXPECT_EQ(admission.Annotation("in_flight"), "0");
  EXPECT_EQ(admission.Annotation("limit"), "1");
}

TEST(FrontendTraceTest, BrownoutRungIsAnnotatedOnKeptTraces) {
  SimClock clock;
  obs::MetricRegistry metrics;
  obs::RequestTracer tracer(TracerOptions(1.0), &metrics, &clock);
  AdmissionController controller(SmallController(64), &metrics, &clock);
  Frontend::Options options;
  options.admission = &controller;
  options.request_tracer = &tracer;
  // Thresholds at zero: every request runs at rung 3 once a
  // last-known-good list exists.
  options.brownout_shrink_pressure = 0.0;
  options.brownout_skip_threshold_pressure = 0.0;
  options.brownout_serve_lkg_pressure = 0.0;
  Frontend frontend(nullptr, nullptr, &metrics, &clock, options);
  frontend.SetLookupForTesting(FixedLookup());

  // First request populates the last-known-good cache (already rung 3 by
  // pressure, but no cached list yet → store path)...
  ASSERT_TRUE(frontend.Handle(UserRequest()).ok());
  // ...second serves from it.
  const auto browned = frontend.Handle(UserRequest());
  ASSERT_TRUE(browned.ok());
  EXPECT_EQ(browned->brownout_rung, 3);

  ASSERT_EQ(tracer.KeptCount(), 2);
  const std::vector<obs::RequestTraceRecord> kept = tracer.KeptTraces();
  EXPECT_EQ(kept[1].Annotation("brownout_rung"), "3");
  EXPECT_EQ(kept[1].Annotation("source"), "brownout_last_known_good");
}

TEST(FrontendTraceTest, DeadlineOverrunVerdictWithOverrunMicros) {
  SimClock clock;
  obs::MetricRegistry metrics;
  obs::RequestTracer tracer(TracerOptions(0.0), &metrics, &clock);
  Frontend::Options options;
  options.request_deadline_micros = 1000;
  options.request_tracer = &tracer;
  Frontend frontend(nullptr, nullptr, &metrics, &clock, options);
  frontend.SetLookupForTesting(
      [&clock](data::RetailerId, const core::Context&)
          -> StatusOr<std::vector<core::ScoredItem>> {
        clock.AdvanceMicros(5000);  // store is 4000us past the deadline
        return std::vector<core::ScoredItem>{{1, 1.0}};
      });

  const auto result = frontend.Handle(UserRequest());
  // The deadline ladder may still answer (fallback) — but the trace is
  // classified as an overrun and kept regardless of sampling.
  ASSERT_EQ(tracer.KeptCount(), 1);
  const obs::RequestTraceRecord record = tracer.KeptTraces()[0];
  EXPECT_EQ(record.verdict, obs::TraceVerdict::kDeadlineOverrun);
  EXPECT_EQ(record.Annotation("overrun_micros"), "4000");
}

TEST(FrontendTraceTest, KeptTracesBecomeLatencyExemplars) {
  SimClock clock;
  obs::MetricRegistry metrics;
  obs::RequestTracer tracer(TracerOptions(1.0), &metrics, &clock);
  Frontend::Options options;
  options.request_tracer = &tracer;
  Frontend frontend(nullptr, nullptr, &metrics, &clock, options);
  frontend.SetLookupForTesting(FixedLookup());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(frontend.Handle(UserRequest()).ok());
  }
  const obs::RegistrySnapshot snapshot = metrics.Snapshot();
  const obs::HistogramSnapshot* latency =
      snapshot.FindHistogram("serving_request_micros");
  ASSERT_NE(latency, nullptr);
  const uint64_t exemplar = latency->ExemplarForQuantile(0.99);
  ASSERT_NE(exemplar, 0u);
  EXPECT_TRUE(tracer.HasTrace(exemplar));
  // The exposition links the bucket to the trace id OpenMetrics-style.
  EXPECT_NE(snapshot.ToText().find("# {trace_id=\""), std::string::npos);
}

// --- SloEngine ---------------------------------------------------------------

obs::SloEngine::Options AvailabilitySlo(double objective = 0.99) {
  obs::SloObjective slo;
  slo.name = "availability";
  slo.total_counter = "requests_total";
  slo.bad_counter = "requests_bad";
  slo.objective = objective;
  obs::SloEngine::Options options;
  options.objectives.push_back(slo);
  options.short_window_micros = 1'000'000;
  options.long_window_micros = 4'000'000;
  options.fire_burn_rate = 2.0;
  options.resolve_burn_rate = 1.0;
  return options;
}

TEST(SloEngineTest, FiresWhenBothWindowsBurnAndResolvesAfter) {
  obs::MetricRegistry metrics;
  obs::Counter* total = metrics.GetCounter("requests_total");
  obs::Counter* bad = metrics.GetCounter("requests_bad");
  obs::SloEngine engine(AvailabilitySlo(0.99), &metrics);

  // Healthy minute: 1000 requests/tick, no errors.
  int64_t now = 0;
  for (int i = 0; i < 10; ++i) {
    total->Add(1000);
    now += 500'000;
    EXPECT_EQ(engine.Evaluate(metrics.Snapshot(), now), 0);
  }
  EXPECT_EQ(engine.FiringCount(), 0);

  // Incident: 10% errors — burn 10 at a 1% budget. The long window needs
  // enough bad history before both windows exceed the fire rate.
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    total->Add(1000);
    bad->Add(100);
    now += 500'000;
    fires += engine.Evaluate(metrics.Snapshot(), now);
  }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(engine.FiringCount(), 1);
  EXPECT_EQ(engine.FiredTotal(), 1);
  EXPECT_TRUE(engine.States()[0].firing);
  EXPECT_GE(engine.States()[0].burn_short, 2.0);

  // Recovery: errors stop; the alert resolves once both windows clear.
  int resolves = 0;
  for (int i = 0; i < 12; ++i) {
    total->Add(1000);
    now += 500'000;
    resolves += engine.Evaluate(metrics.Snapshot(), now);
  }
  EXPECT_EQ(resolves, 1);
  EXPECT_EQ(engine.FiringCount(), 0);
  EXPECT_EQ(engine.ResolvedTotal(), 1);

  // The alert log records the fire → resolve pair in order.
  ASSERT_EQ(engine.alert_log().size(), 2u);
  EXPECT_TRUE(engine.alert_log()[0].firing);
  EXPECT_FALSE(engine.alert_log()[1].firing);
  EXPECT_LT(engine.alert_log()[0].time_micros,
            engine.alert_log()[1].time_micros);
  // ...and the JSON section carries both.
  const std::string json = engine.ToJson();
  EXPECT_NE(json.find("\"fired_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"resolved_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);
}

TEST(SloEngineTest, ShortBlipDoesNotPage) {
  obs::MetricRegistry metrics;
  obs::Counter* total = metrics.GetCounter("requests_total");
  obs::Counter* bad = metrics.GetCounter("requests_bad");
  obs::SloEngine engine(AvailabilitySlo(0.99), &metrics);
  int64_t now = 0;
  int transitions = 0;
  for (int i = 0; i < 20; ++i) {
    total->Add(1000);
    if (i == 10) bad->Add(50);  // one bad tick: short window spikes only
    now += 500'000;
    transitions += engine.Evaluate(metrics.Snapshot(), now);
  }
  // The long window never crossed the fire rate: no alert.
  EXPECT_EQ(transitions, 0);
  EXPECT_EQ(engine.FiredTotal(), 0);
}

TEST(SloEngineTest, LatencyObjectiveCountsSlowBucketsAsBad) {
  obs::MetricRegistry metrics;
  obs::Histogram* latency = metrics.GetHistogram("latency_micros");
  obs::SloObjective slo;
  slo.name = "latency_p99";
  slo.latency_histogram = "latency_micros";
  slo.threshold_micros = 50000;
  slo.objective = 0.9;  // 90% under 50ms
  obs::SloEngine::Options options;
  options.objectives.push_back(slo);
  options.short_window_micros = 1'000'000;
  options.long_window_micros = 2'000'000;
  obs::SloEngine engine(options, &metrics);

  int64_t now = 0;
  engine.Evaluate(metrics.Snapshot(), now);
  // 50/50 fast/slow: half the events are bad at a 10% budget → burn 5.
  int transitions = 0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 50; ++j) latency->Observe(1000.0);
    for (int j = 0; j < 50; ++j) latency->Observe(200000.0);
    now += 500'000;
    transitions += engine.Evaluate(metrics.Snapshot(), now);
  }
  EXPECT_EQ(transitions, 1);
  EXPECT_TRUE(engine.States()[0].firing);
  EXPECT_GT(engine.States()[0].burn_long, 2.0);
}

TEST(SloEngineTest, BurnRateGaugesAreExported) {
  obs::MetricRegistry metrics;
  obs::Counter* total = metrics.GetCounter("requests_total");
  obs::Counter* bad = metrics.GetCounter("requests_bad");
  obs::SloEngine engine(AvailabilitySlo(0.99), &metrics);
  int64_t now = 0;
  engine.Evaluate(metrics.Snapshot(), now);
  total->Add(1000);
  bad->Add(20);  // 2% bad at 1% budget → burn 2
  now += 500'000;
  engine.Evaluate(metrics.Snapshot(), now);
  const obs::RegistrySnapshot snapshot = metrics.Snapshot();
  EXPECT_NEAR(snapshot.GaugeValue("slo_burn_rate",
                                  {{"objective", "availability"},
                                   {"window", "short"}}),
              2.0, 1e-9);
}

// --- Flash-crowd scenario: the whole tentpole end to end --------------------

serving::LoadGenOptions FlashCrowdScenario() {
  serving::LoadGenOptions options;
  options.seed = 1234;
  options.duration_seconds = 8.0;
  options.num_retailers = 100;
  options.service_micros = 2000;
  options.service_jitter_micros = 500;
  options.server_capacity = 16;
  options.deadline_micros = 50000;
  options.open_rps = 0.5 * 8000.0;
  options.flash_at_seconds = 3.0;
  options.flash_duration_seconds = 1.0;
  options.flash_factor = 10.0;
  options.probe_rps = 20.0;
  options.client_retries = 1;
  options.retry_backoff_seconds = 0.02;
  options.retry_budget_ratio = 0.1;
  options.admission.limiter.target_latency_micros = 20000;
  options.admission.limiter.initial_limit = 32;
  options.admission.limiter.max_limit = 2048;
  options.admission.queue_capacity = 64;
  return options;
}

void EnableTracing(serving::LoadGenOptions* options) {
  options->trace_requests = true;
  options->trace.sample_rate = 0.01;
  options->trace.max_kept_traces = 1 << 20;  // keep everything: no eviction
}

void EnableSlo(serving::LoadGenOptions* options) {
  obs::SloObjective availability;
  availability.name = "serving_availability";
  availability.total_counter = "serving_requests_total";
  availability.bad_counter = "serving_requests_total";
  availability.bad_labels = {{"outcome", "shed"}};
  availability.objective = 0.99;
  obs::SloObjective latency;
  latency.name = "latency_user_facing";
  latency.latency_histogram = "serving_latency_micros";
  latency.latency_labels = {{"priority", "user_facing"}};
  latency.threshold_micros = 50000;
  latency.objective = 0.99;
  options->slo_enabled = true;
  options->slo.objectives = {availability, latency};
  options->slo.short_window_micros = 500'000;
  options->slo.long_window_micros = 2'000'000;
  options->slo.fire_burn_rate = 2.0;
  options->slo.resolve_burn_rate = 1.0;
  options->slo_eval_interval_seconds = 0.25;
}

TEST(SloTraceScenarioTest, FlashCrowdKeepsWholeTailFiresAndResolvesSlo) {
  serving::LoadGenOptions options = FlashCrowdScenario();
  EnableTracing(&options);
  EnableSlo(&options);
  obs::MetricRegistry metrics;
  const serving::LoadGenReport report =
      serving::RunLoadGenerator(options, &metrics);

  // The flash crowd actually shed and overran.
  ASSERT_GT(report.terminal_sheds, 0);
  ASSERT_GT(report.traces_started, 0);

  // 100% of the interesting tail is kept: every terminally shed request
  // and every deadline overrun has a kept trace.
  EXPECT_EQ(report.shed_traces_kept, report.terminal_sheds);
  EXPECT_EQ(report.late_traces_kept, report.deadline_overruns);

  // Every kept shed trace names its shed reason; brownout/retry state
  // arrives through the admission spans.
  std::set<uint64_t> kept_ids;
  int64_t shed_records = 0;
  for (const obs::RequestTraceRecord& record : report.kept_traces) {
    kept_ids.insert(record.trace_id);
    if (record.verdict == obs::TraceVerdict::kShed) {
      ++shed_records;
      EXPECT_NE(record.Annotation("shed_reason"), "") << record.ToJson();
    }
    if (record.verdict == obs::TraceVerdict::kDeadlineOverrun) {
      EXPECT_NE(record.Annotation("overrun_micros"), "");
    }
  }
  EXPECT_EQ(shed_records, report.terminal_sheds);

  // The p99 serving-latency bucket carries an exemplar that resolves to
  // a kept trace.
  const obs::RegistrySnapshot snapshot = metrics.Snapshot();
  const obs::HistogramSnapshot* latency = snapshot.FindHistogram(
      "serving_latency_micros", {{"priority", "user_facing"}});
  ASSERT_NE(latency, nullptr);
  const uint64_t exemplar = latency->ExemplarForQuantile(0.99);
  ASSERT_NE(exemplar, 0u);
  EXPECT_TRUE(kept_ids.count(exemplar) > 0);

  // At least one SLO alert fired during the crowd and resolved after it.
  EXPECT_GE(report.slo_alerts_fired, 1);
  EXPECT_GE(report.slo_alerts_resolved, 1);
  ASSERT_GE(report.slo_alerts.size(), 2u);
  EXPECT_TRUE(report.slo_alerts.front().firing);
  bool any_resolve_after_fire = false;
  for (const obs::AlertEvent& event : report.slo_alerts) {
    if (!event.firing &&
        event.time_micros > report.slo_alerts.front().time_micros) {
      any_resolve_after_fire = true;
    }
  }
  EXPECT_TRUE(any_resolve_after_fire);
  EXPECT_NE(report.slo_json.find("serving_availability"), std::string::npos);
}

TEST(SloTraceScenarioTest, TracingAndSloAreProvablyPassive) {
  // Baseline: no tracing, no SLO engine.
  const serving::LoadGenReport off =
      serving::RunLoadGenerator(FlashCrowdScenario());
  // Everything on — traces kept, SLO ticks interleaved with the run.
  serving::LoadGenOptions traced = FlashCrowdScenario();
  EnableTracing(&traced);
  EnableSlo(&traced);
  const serving::LoadGenReport on = serving::RunLoadGenerator(traced);

  // Byte-identical decisions: observability never perturbed the
  // simulation (same arrivals, same admissions, same sheds).
  EXPECT_EQ(off.decision_hash, on.decision_hash);
  EXPECT_EQ(off.total_offered, on.total_offered);
  EXPECT_EQ(off.total_completed, on.total_completed);
  EXPECT_EQ(off.goodput_rps, on.goodput_rps);
  // And the observability actually ran.
  EXPECT_GT(on.traces_kept, 0);
  EXPECT_GE(on.slo_alerts_fired, 1);
  EXPECT_EQ(off.traces_kept, 0);
}

}  // namespace
}  // namespace sigmund
