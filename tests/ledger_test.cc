// RunLedger format hardening (DESIGN.md §13): the write-ahead journal and
// the control-state snapshots are the only things standing between a
// crashed coordinator and a re-run day, so their decoders must survive
// anything a torn write, a bit rot, or a truncated replica can hand them.
// These tests fuzz the entry framing (every prefix truncation, thousands
// of seeded bit-flip / truncate / overlength trials), round-trip the
// snapshot structs, and pin the crash-restart behavior of the durable
// control state (sentry quarantine, quality baselines).

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/world_generator.h"
#include "dataqual/corruptor.h"
#include "dataqual/feed_profile.h"
#include "dataqual/sentry.h"
#include "pipeline/ledger.h"
#include "pipeline/quality_monitor.h"
#include "sfs/mem_filesystem.h"

namespace sigmund::pipeline {
namespace {

using Op = RunLedger::Op;

RunLedger::Entry MakeEntry(Op op, int day, data::RetailerId retailer,
                           int64_t version, std::string tag,
                           std::string payload) {
  RunLedger::Entry entry;
  entry.op = op;
  entry.day = day;
  entry.retailer = retailer;
  entry.version = version;
  entry.tag = std::move(tag);
  entry.payload = std::move(payload);
  return entry;
}

// A representative day: stage commits with binary-ish payloads, the full
// batch protocol, and the index protocol.
std::vector<RunLedger::Entry> SampleEntries() {
  std::vector<RunLedger::Entry> entries;
  entries.push_back(MakeEntry(Op::kDayStart, 3, -1, 0, "", ""));
  entries.push_back(MakeEntry(Op::kStageCommit, 3, -1, 0, "train",
                              std::string("binary\0payload\xff", 15)));
  entries.push_back(
      MakeEntry(Op::kBatchStageIntent, 3, 7, 42, "", "recommendations/r7.v000042"));
  entries.push_back(MakeEntry(Op::kBatchCanary, 3, 7, 42, "promoted", ""));
  entries.push_back(MakeEntry(Op::kBatchActivate, 3, 7, 42, "", ""));
  entries.push_back(MakeEntry(Op::kIndexStageIntent, 3, 7, 5, "",
                              "retrieval/r7.v000005"));
  entries.push_back(MakeEntry(Op::kIndexCanary, 3, 7, 5, "rolled_back", ""));
  entries.push_back(MakeEntry(Op::kIndexDiscard, 3, 7, 5, "rolled_back", ""));
  entries.push_back(MakeEntry(Op::kDayComplete, 3, -1, 0, "", ""));
  return entries;
}

std::string EncodeAll(const std::vector<RunLedger::Entry>& entries) {
  std::string log;
  for (const RunLedger::Entry& entry : entries) {
    log += RunLedger::EncodeEntry(entry);
  }
  return log;
}

TEST(RunLedgerFormatTest, EncodeDecodeRoundTrips) {
  const std::vector<RunLedger::Entry> entries = SampleEntries();
  const std::string log = EncodeAll(entries);
  const RunLedger::DecodeResult decoded = RunLedger::DecodeLog(log);
  EXPECT_EQ(decoded.entries, entries);
  EXPECT_EQ(decoded.valid_bytes, log.size());
  EXPECT_FALSE(decoded.torn_tail);
}

TEST(RunLedgerFormatTest, EveryPrefixTruncationDecodesCleanly) {
  const std::vector<RunLedger::Entry> entries = SampleEntries();
  const std::string log = EncodeAll(entries);
  // Entry boundaries, so we know which truncation lengths are "clean".
  std::vector<size_t> boundaries = {0};
  for (const RunLedger::Entry& entry : entries) {
    boundaries.push_back(boundaries.back() +
                         RunLedger::EncodeEntry(entry).size());
  }
  for (size_t len = 0; len <= log.size(); ++len) {
    const RunLedger::DecodeResult decoded =
        RunLedger::DecodeLog(std::string_view(log).substr(0, len));
    // The decode is the longest prefix of whole entries that fits.
    size_t expect_entries = 0;
    while (expect_entries + 1 < boundaries.size() &&
           boundaries[expect_entries + 1] <= len) {
      ++expect_entries;
    }
    ASSERT_EQ(decoded.entries.size(), expect_entries) << "len=" << len;
    for (size_t i = 0; i < expect_entries; ++i) {
      EXPECT_EQ(decoded.entries[i], entries[i]) << "len=" << len;
    }
    EXPECT_EQ(decoded.valid_bytes, boundaries[expect_entries])
        << "len=" << len;
    EXPECT_EQ(decoded.torn_tail, len != boundaries[expect_entries])
        << "len=" << len;
  }
}

// Seeded mutation fuzz: bit flips, truncations, and overlength tails.
// Whatever the decoder accepts must round-trip (re-encoding the accepted
// entries and decoding again is a fixed point), and the decoder must
// never read past the buffer or abort.
TEST(RunLedgerFormatTest, FuzzMutatedLogsNeverBreakTheDecoder) {
  const std::vector<RunLedger::Entry> entries = SampleEntries();
  const std::string log = EncodeAll(entries);
  Rng rng(20260808);
  constexpr int kTrials = 2500;
  int64_t accepted_entries = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string mutated = log;
    switch (trial % 4) {
      case 0: {  // single bit flip
        const size_t pos = rng.Uniform(mutated.size());
        mutated[pos] = static_cast<char>(
            static_cast<unsigned char>(mutated[pos]) ^ (1u << rng.Uniform(8)));
        break;
      }
      case 1: {  // burst of bit flips
        for (int k = 0; k < 8; ++k) {
          const size_t pos = rng.Uniform(mutated.size());
          mutated[pos] = static_cast<char>(
              static_cast<unsigned char>(mutated[pos]) ^
              (1u << rng.Uniform(8)));
        }
        break;
      }
      case 2: {  // truncate to a random length
        mutated.resize(rng.Uniform(mutated.size() + 1));
        break;
      }
      default: {  // overlength: append random garbage (torn next append)
        const size_t extra = 1 + rng.Uniform(64);
        for (size_t k = 0; k < extra; ++k) {
          mutated.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
      }
    }
    const RunLedger::DecodeResult decoded = RunLedger::DecodeLog(mutated);
    ASSERT_LE(decoded.valid_bytes, mutated.size());
    accepted_entries += static_cast<int64_t>(decoded.entries.size());
    // Round-trip fixed point: what was accepted re-encodes to exactly the
    // valid prefix and decodes to the same entries.
    const std::string reencoded = EncodeAll(decoded.entries);
    ASSERT_EQ(reencoded, mutated.substr(0, decoded.valid_bytes))
        << "trial " << trial;
    const RunLedger::DecodeResult again = RunLedger::DecodeLog(reencoded);
    ASSERT_EQ(again.entries, decoded.entries) << "trial " << trial;
    ASSERT_FALSE(again.torn_tail) << "trial " << trial;
  }
  // Sanity: the fuzz actually exercised accepting decoders, not just
  // empty results.
  EXPECT_GT(accepted_entries, 0);
}

TEST(RunLedgerTest, AppendReadDayAndResumeTruncateTornTail) {
  sfs::MemFileSystem fs;
  RunLedger ledger(&fs, RunLedger::Options{}, RetryPolicy{}, nullptr,
                   nullptr);
  ledger.StartDay(4);
  const std::vector<RunLedger::Entry> entries = SampleEntries();
  for (RunLedger::Entry entry : entries) {
    entry.day = 4;
    ASSERT_TRUE(ledger.Append(entry).ok());
  }
  StatusOr<RunLedger::DecodeResult> read = ledger.ReadDay(4);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->entries.size(), entries.size());
  EXPECT_FALSE(read->torn_tail);

  // Tear the tail: a crashed append leaves a half-written last frame.
  StatusOr<std::string> bytes = fs.Read(ledger.DayPath(4));
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(fs.Write(ledger.DayPath(4),
                       bytes->substr(0, bytes->size() - 5) + "XX")
                  .ok());
  read = ledger.ReadDay(4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->entries.size(), entries.size() - 1);
  EXPECT_TRUE(read->torn_tail);

  // Resume from the valid prefix; the next append rewrites the file
  // without the torn bytes.
  RunLedger resumed(&fs, RunLedger::Options{}, RetryPolicy{}, nullptr,
                    nullptr);
  resumed.ResumeDay(4, read->entries);
  ASSERT_TRUE(
      resumed.Append(MakeEntry(Op::kDayComplete, 4, -1, 0, "", "")).ok());
  read = resumed.ReadDay(4);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->entries.size(), entries.size());
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(read->entries.back().op, Op::kDayComplete);

  // Retention: day 4 current, retain 2 → day <= 2 logs go.
  ledger.StartDay(2);
  ASSERT_TRUE(ledger.Append(MakeEntry(Op::kDayStart, 2, -1, 0, "", "")).ok());
  int64_t deleted = 0;
  ASSERT_TRUE(resumed.RetireOldDays(4, &deleted).ok());
  EXPECT_EQ(deleted, 1);
  EXPECT_FALSE(fs.Exists(ledger.DayPath(2)));
  EXPECT_TRUE(fs.Exists(ledger.DayPath(4)));
}

TEST(RunLedgerTest, SnapshotTwoPhaseCommitAndCorruptFallback) {
  sfs::MemFileSystem fs;
  RunLedger ledger(&fs, RunLedger::Options{}, RetryPolicy{}, nullptr,
                   nullptr);
  ASSERT_TRUE(ledger.WriteSnapshotTmp("day one state").ok());
  ASSERT_TRUE(ledger.CommitSnapshot(1).ok());
  ASSERT_TRUE(ledger.WriteSnapshotTmp("day two state").ok());
  ASSERT_TRUE(ledger.CommitSnapshot(2).ok());
  StatusOr<std::pair<int, std::string>> latest = ledger.ReadLatestSnapshot();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->first, 2);
  EXPECT_EQ(latest->second, "day two state");

  // Rot the newest snapshot: recovery falls back to the previous one
  // instead of failing (or worse, trusting garbage — the CRC frame makes
  // that impossible).
  StatusOr<std::string> bytes = fs.Read(ledger.SnapshotPath(2));
  ASSERT_TRUE(bytes.ok());
  std::string rotten = *bytes;
  rotten[rotten.size() / 2] ^= 0x40;
  ASSERT_TRUE(fs.Write(ledger.SnapshotPath(2), rotten).ok());
  latest = ledger.ReadLatestSnapshot();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->first, 1);
  EXPECT_EQ(latest->second, "day one state");

  // An uncommitted tmp (crash between the phases) is invisible to
  // ReadLatestSnapshot and retention ignores it.
  ASSERT_TRUE(ledger.WriteSnapshotTmp("never committed").ok());
  latest = ledger.ReadLatestSnapshot();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->first, 1);

  int64_t deleted = 0;
  ASSERT_TRUE(ledger.RetireOldSnapshots(4, &deleted).ok());
  EXPECT_EQ(deleted, 2);  // retain 2 keeps days {3,4}; v1 and v2 age out
  EXPECT_FALSE(fs.Exists(ledger.SnapshotPath(1)));
  EXPECT_FALSE(fs.Exists(ledger.SnapshotPath(2)));
}

TEST(ServiceSnapshotTest, SerializeDeserializeRoundTrips) {
  ServiceSnapshot snapshot;
  snapshot.days_run = 12;
  snapshot.previous_results = {"line one", "line \xff two", ""};
  snapshot.shard_homes = {{0, "cell-a"}, {7, "cell-b"}};
  snapshot.monitor_state = std::string("mon\0state", 9);
  snapshot.sentry_state = "sentry state";
  VersionChainState chain;
  chain.active = 9;
  chain.next_version = 11;
  chain.retained = {8, 9, 10};
  snapshot.store_versions[3] = chain;
  chain.active = 0;
  chain.next_version = 2;
  chain.retained = {1};
  snapshot.index_versions[5] = chain;

  StatusOr<ServiceSnapshot> decoded =
      ServiceSnapshot::Deserialize(snapshot.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, snapshot);

  // Truncations of the snapshot payload never decode to a wrong struct:
  // they fail loudly (the caller falls back to an older snapshot).
  const std::string bytes = snapshot.Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<ServiceSnapshot> partial =
        ServiceSnapshot::Deserialize(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(partial.ok()) << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// Durable control state across a crash-restart: the sentry's quarantine
// set and last-good baselines, and the quality monitor's trailing MAP
// history, must come back exactly — a guardrail with amnesia waves the
// next bad batch straight through.
// ---------------------------------------------------------------------------

TEST(StateRecoveryTest, QuarantinedRetailerStaysQuarantinedAcrossRestart) {
  data::WorldConfig config;
  config.seed = 17;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(3, 300);

  dataqual::DataSentry sentry(dataqual::DataSentry::Options{});
  ASSERT_EQ(sentry.Observe(dataqual::BuildFeedProfile(world.data)).verdict,
            dataqual::DataSentry::Verdict::kPass);
  const int64_t baseline_events =
      sentry.LastGoodProfile(world.data.id)->events;

  dataqual::FeedCorruptor::Options corruptor_options;
  corruptor_options.seed = 5;
  dataqual::FeedCorruptor corruptor(corruptor_options);
  const data::RetailerData poisoned =
      corruptor.Apply(world.data, dataqual::Corruption::kBotFlood,
                      world.data.id, /*day=*/1);
  ASSERT_EQ(sentry.Observe(dataqual::BuildFeedProfile(poisoned)).verdict,
            dataqual::DataSentry::Verdict::kQuarantine);

  // Crash: the process dies, a new sentry restores the serialized state.
  dataqual::DataSentry restored(dataqual::DataSentry::Options{});
  ASSERT_TRUE(restored.RestoreState(sentry.SerializeState()).ok());
  EXPECT_TRUE(restored.IsQuarantined(world.data.id));
  EXPECT_EQ(restored.QuarantinedCount(), 1);
  // The poisoned day did NOT become the drift baseline: the restored
  // last-good profile is still day 1's.
  ASSERT_NE(restored.LastGoodProfile(world.data.id), nullptr);
  EXPECT_EQ(restored.LastGoodProfile(world.data.id)->events,
            baseline_events);

  // Both sentries judge the next day identically: the restart is
  // invisible to the verdict stream. A clean next feed releases the
  // retailer in both.
  data::AdvanceOneDay(generator, &world, /*new_items=*/2, /*seed=*/77);
  const dataqual::FeedProfile next = dataqual::BuildFeedProfile(world.data);
  const dataqual::DataSentry::Observation a = sentry.Observe(next);
  const dataqual::DataSentry::Observation b = restored.Observe(next);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.released, b.released);
  EXPECT_TRUE(b.released);
  EXPECT_FALSE(restored.IsQuarantined(world.data.id));
}

TEST(StateRecoveryTest, QualityBaselinesSurviveRestart) {
  QualityMonitor::Options options;
  options.max_relative_drop = 0.3;
  QualityMonitor monitor(options);
  EXPECT_EQ(monitor.Record(1, 0.20), QualityMonitor::Verdict::kFirstObservation);
  EXPECT_EQ(monitor.Record(1, 0.22), QualityMonitor::Verdict::kOk);
  EXPECT_EQ(monitor.Record(2, 0.10), QualityMonitor::Verdict::kFirstObservation);

  QualityMonitor restored(options);
  ASSERT_TRUE(restored.RestoreState(monitor.SerializeState()).ok());
  EXPECT_DOUBLE_EQ(restored.TrailingBest(1), 0.22);
  EXPECT_EQ(restored.days_observed(1), 2);
  // The baseline survived, so a regressed day after the restart is still
  // caught — the exact failure a forgetful monitor would wave through as
  // a "first observation".
  EXPECT_EQ(restored.Record(1, 0.05), QualityMonitor::Verdict::kRegressed);
  EXPECT_EQ(monitor.Record(1, 0.05), QualityMonitor::Verdict::kRegressed);
  // And serialized state round-trips to identical bytes (deterministic
  // encoding — snapshots must be byte-comparable across a recovery).
  QualityMonitor again(options);
  ASSERT_TRUE(again.RestoreState(restored.SerializeState()).ok());
  EXPECT_EQ(again.SerializeState(), restored.SerializeState());
}

}  // namespace
}  // namespace sigmund::pipeline
