#include <map>
#include <set>

#include <gtest/gtest.h>

#include "data/world_generator.h"
#include "pipeline/binpack.h"
#include "pipeline/checkpoint.h"
#include "pipeline/config_record.h"
#include "pipeline/registry.h"
#include "pipeline/sweep.h"
#include "pipeline/training_job.h"
#include "sfs/fault_injection.h"
#include "sfs/mem_filesystem.h"
#include "sfs/reliable_io.h"

namespace sigmund::pipeline {
namespace {

// --- ConfigRecord ---------------------------------------------------------

TEST(ConfigRecordTest, SerializeRoundTrip) {
  ConfigRecord record;
  record.retailer = 12;
  record.model_number = 7;
  record.params.num_factors = 24;
  record.params.lambda_v = 0.003;
  record.model_path = ModelPath(12, 7);
  record.warm_start = true;
  record.trained = true;
  record.map_at_10 = 0.1234;
  record.auc = 0.9;
  record.epochs_run = 11;
  record.sgd_steps = 98765;
  record.degraded = true;

  StatusOr<ConfigRecord> parsed =
      ConfigRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->retailer, 12);
  EXPECT_EQ(parsed->model_number, 7);
  EXPECT_EQ(parsed->params, record.params);
  EXPECT_EQ(parsed->model_path, record.model_path);
  EXPECT_TRUE(parsed->warm_start);
  EXPECT_TRUE(parsed->trained);
  EXPECT_DOUBLE_EQ(parsed->map_at_10, 0.1234);
  EXPECT_EQ(parsed->sgd_steps, 98765);
  EXPECT_TRUE(parsed->degraded);
}

TEST(ConfigRecordTest, KeyFormat) {
  ConfigRecord record;
  record.retailer = 3;
  record.model_number = 42;
  EXPECT_EQ(record.Key(), "r3/m042");
}

TEST(ConfigRecordTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ConfigRecord::Deserialize("nonsense").ok());
  EXPECT_FALSE(ConfigRecord::Deserialize("retailer=x").ok());
  EXPECT_FALSE(ConfigRecord::Deserialize("bogus=1").ok());
}

TEST(PathsTest, DistinctAndStable) {
  std::set<std::string> paths = {ModelPath(1, 2), ModelPath(1, 3),
                                 ModelPath(2, 2), BestModelPath(1),
                                 CheckpointDir(1, 2), RecommendationPath(1),
                                 SweepResultPath(1)};
  EXPECT_EQ(paths.size(), 7u);
}

// --- CheckpointManager -----------------------------------------------------

struct CheckpointFixture {
  data::RetailerWorld world;
  core::BprModel model;
  sfs::MemFileSystem fs;
  SimClock clock;

  CheckpointFixture()
      : world([] {
          data::WorldConfig config;
          config.seed = 3;
          data::WorldGenerator generator(config);
          return generator.GenerateRetailer(0, 60);
        }()),
        model(&world.data.catalog, [] {
          core::HyperParams params;
          params.num_factors = 4;
          return params;
        }()) {
    Rng rng(1);
    model.InitRandom(&rng);
  }
};

TEST(CheckpointManagerTest, IntervalGatesWrites) {
  CheckpointFixture f;
  CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 100.0);
  // Not enough time elapsed.
  StatusOr<bool> wrote = manager.MaybeCheckpoint(f.model, 0);
  ASSERT_TRUE(wrote.ok());
  EXPECT_FALSE(*wrote);
  EXPECT_FALSE(manager.HasCheckpoint());
  // Advance past the interval.
  f.clock.AdvanceSeconds(101.0);
  wrote = manager.MaybeCheckpoint(f.model, 3);
  ASSERT_TRUE(wrote.ok());
  EXPECT_TRUE(*wrote);
  EXPECT_TRUE(manager.HasCheckpoint());
  // Immediately after, gated again.
  wrote = manager.MaybeCheckpoint(f.model, 4);
  ASSERT_TRUE(wrote.ok());
  EXPECT_FALSE(*wrote);
  EXPECT_EQ(manager.checkpoints_written(), 1);
}

TEST(CheckpointManagerTest, RestoreRoundTripsModelAndEpoch) {
  CheckpointFixture f;
  CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 1.0);
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 5).ok());
  StatusOr<CheckpointManager::Restored> restored =
      manager.Restore(&f.world.data.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->epoch, 5);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(restored->model.item_embeddings().row(0)[k],
              f.model.item_embeddings().row(0)[k]);
  }
}

TEST(CheckpointManagerTest, KeepsOnlyLatestCheckpoint) {
  CheckpointFixture f;
  CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 1.0);
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 1).ok());
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 2).ok());
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 3).ok());
  // GC leaves exactly one committed checkpoint.
  EXPECT_EQ(f.fs.List("ck/r0/ckpt.")->size(), 1u);
  StatusOr<CheckpointManager::Restored> restored =
      manager.Restore(&f.world.data.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->epoch, 3);
}

TEST(CheckpointManagerTest, RestoreWithoutCheckpointIsNotFound) {
  CheckpointFixture f;
  CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 1.0);
  EXPECT_EQ(manager.Restore(&f.world.data.catalog).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, ClearRemovesEverything) {
  CheckpointFixture f;
  CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 1.0);
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 1).ok());
  ASSERT_TRUE(manager.Clear().ok());
  EXPECT_FALSE(manager.HasCheckpoint());
  EXPECT_TRUE(f.fs.List("ck/r0")->empty());
  // Idempotent: clearing an already-empty directory succeeds.
  ASSERT_TRUE(manager.Clear().ok());
}

TEST(CheckpointManagerTest, VersionNumberingSurvivesNewManager) {
  CheckpointFixture f;
  {
    CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 1.0);
    ASSERT_TRUE(manager.ForceCheckpoint(f.model, 1).ok());
  }
  // A new manager (new task attempt) continues the version sequence and
  // can restore the previous attempt's checkpoint.
  CheckpointManager manager2(&f.fs, &f.clock, "ck/r0", 1.0);
  EXPECT_TRUE(manager2.HasCheckpoint());
  ASSERT_TRUE(manager2.ForceCheckpoint(f.model, 2).ok());
  StatusOr<CheckpointManager::Restored> restored =
      manager2.Restore(&f.world.data.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->epoch, 2);
}

TEST(CheckpointManagerTest, CorruptLatestCheckpointReportsNotFound) {
  CheckpointFixture f;
  sfs::ReliableIoCounters io;
  CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 1.0, RetryPolicy{},
                            &io);
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 4).ok());
  // Tear the committed checkpoint behind the manager's back.
  std::vector<std::string> checkpoints = *f.fs.List("ck/r0/ckpt.");
  ASSERT_EQ(checkpoints.size(), 1u);
  std::string bytes = *f.fs.Read(checkpoints[0]);
  bytes.resize(bytes.size() / 2);
  ASSERT_TRUE(f.fs.Write(checkpoints[0], bytes).ok());

  // Restore sees the corruption, counts it, and reports "no checkpoint"
  // so training restarts cleanly — never a crash or a garbage model.
  StatusOr<CheckpointManager::Restored> restored =
      manager.Restore(&f.world.data.catalog);
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.corrupt_checkpoints_detected(), 1);
  EXPECT_GE(io.corruptions_detected.load(), 1);
}

TEST(CheckpointManagerTest, GcSurvivesTransientDeleteFailures) {
  CheckpointFixture f;
  sfs::FaultProfile profile;
  profile.delete_error_prob = 0.7;
  profile.seed = 11;
  sfs::FaultInjectingFileSystem faulty(&f.fs, profile);
  RetryPolicy policy;
  policy.max_attempts = 10;
  sfs::ReliableIoCounters io;
  CheckpointManager manager(&faulty, &f.clock, "ck/r0", 1.0, policy, &io);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(manager.ForceCheckpoint(f.model, epoch).ok());
  }
  EXPECT_GT(faulty.counters().delete_errors.load(), 0);
  EXPECT_GT(io.retry.retries.load(), 0);
  // Retried GC still converged to keep-only-latest.
  EXPECT_EQ(f.fs.List("ck/r0/ckpt.")->size(), 1u);
  StatusOr<CheckpointManager::Restored> restored =
      manager.Restore(&f.world.data.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->epoch, 5);
}

TEST(CheckpointManagerTest, ClearRetriesTransientDeleteFailures) {
  CheckpointFixture f;
  sfs::FaultProfile profile;
  profile.delete_error_prob = 0.7;
  profile.seed = 29;
  sfs::FaultInjectingFileSystem faulty(&f.fs, profile);
  RetryPolicy policy;
  policy.max_attempts = 10;
  CheckpointManager manager(&faulty, &f.clock, "ck/r0", 1.0, policy);
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 1).ok());
  ASSERT_TRUE(manager.Clear().ok());
  EXPECT_TRUE(f.fs.List("ck/r0")->empty());
  ASSERT_TRUE(manager.Clear().ok());  // idempotent under faults too
}

TEST(CheckpointManagerTest, StaleCheckpointNeverShadowsNewerCommit) {
  CheckpointFixture f;
  // Every Delete fails, so GC is permanently defeated: each commit leaves
  // the previous checkpoint stranded on disk.
  sfs::FaultProfile profile;
  profile.delete_error_prob = 1.0;
  profile.seed = 17;
  sfs::FaultInjectingFileSystem faulty(&f.fs, profile);
  RetryPolicy policy;
  policy.max_attempts = 3;
  CheckpointManager manager(&faulty, &f.clock, "ck/r0", 1.0, policy);
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 2).ok());
  // Mutate the model so the stale and fresh checkpoints hold different
  // bytes, then commit again at a later epoch.
  Rng rng(99);
  f.model.InitRandom(&rng);
  ASSERT_TRUE(manager.ForceCheckpoint(f.model, 7).ok());
  // The stale epoch-2 file really is still there...
  EXPECT_EQ(f.fs.List("ck/r0/ckpt.")->size(), 2u);
  // ...but Restore must take the newest commit, epoch and bytes both.
  StatusOr<CheckpointManager::Restored> restored =
      manager.Restore(&f.world.data.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->epoch, 7);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(restored->model.item_embeddings().row(0)[k],
              f.model.item_embeddings().row(0)[k]);
  }
}

TEST(CheckpointManagerTest, EvictionGraceCheckpointResumesRestartedTask) {
  CheckpointFixture f;
  // First incarnation: the eviction notice arrives mid-epoch and the
  // grace handler flushes state with ForceCheckpoint before the machine
  // goes away.
  {
    CheckpointManager manager(&f.fs, &f.clock, "ck/r0", 1e9);
    ASSERT_TRUE(manager.ForceCheckpoint(f.model, 6).ok());
  }
  // Second incarnation on a fresh machine: a brand-new manager over the
  // same directory must see the grace checkpoint and hand back the exact
  // epoch and model, so training resumes at epoch 7 instead of 0.
  CheckpointManager restarted(&f.fs, &f.clock, "ck/r0", 1e9);
  EXPECT_TRUE(restarted.HasCheckpoint());
  StatusOr<CheckpointManager::Restored> restored =
      restarted.Restore(&f.world.data.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->epoch, 6);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(restored->model.item_embeddings().row(0)[k],
              f.model.item_embeddings().row(0)[k]);
  }
}

// --- Bin packing ------------------------------------------------------------

TEST(BinPackTest, FirstFitDecreasingBalances) {
  std::vector<PackItem> items = {{0, 8}, {1, 7}, {2, 6}, {3, 5},
                                 {4, 4}, {5, 3}, {6, 2}, {7, 1}};
  auto bins = FirstFitDecreasing(items, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(BinWeight(bins[0]) + BinWeight(bins[1]), 36.0);
  EXPECT_DOUBLE_EQ(MaxBinWeight(bins), 18.0);  // perfect split
}

TEST(BinPackTest, AllItemsAssignedOnce) {
  std::vector<PackItem> items;
  for (int i = 0; i < 37; ++i) items.push_back({i, 1.0 + (i % 5)});
  auto bins = FirstFitDecreasing(items, 4);
  std::set<int64_t> seen;
  for (const auto& bin : bins) {
    for (const PackItem& item : bin) {
      EXPECT_TRUE(seen.insert(item.id).second);
    }
  }
  EXPECT_EQ(seen.size(), 37u);
}

TEST(BinPackTest, LptBound) {
  // LPT guarantee: makespan <= (4/3 - 1/(3m)) * OPT >= lower bound.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PackItem> items;
    double total = 0, longest = 0;
    for (int i = 0; i < 30; ++i) {
      double w = 1.0 + rng.UniformDouble() * 99.0;
      items.push_back({i, w});
      total += w;
      longest = std::max(longest, w);
    }
    const int bins = 4;
    double lower = std::max(longest, total / bins);
    double makespan = MaxBinWeight(FirstFitDecreasing(items, bins));
    EXPECT_GE(makespan, lower - 1e-9);
    EXPECT_LE(makespan, (4.0 / 3.0) * lower + 1e-9);
  }
}

TEST(BinPackTest, FfdBeatsOrEqualsRoundRobinOnSkew) {
  // Power-law-ish weights: FFD should beat round-robin.
  std::vector<PackItem> items;
  for (int i = 0; i < 40; ++i) {
    items.push_back({i, 1000.0 / (1 + i)});
  }
  double ffd = MaxBinWeight(FirstFitDecreasing(items, 5));
  double rr = MaxBinWeight(RoundRobinPack(items, 5));
  EXPECT_LE(ffd, rr);
}

TEST(BinPackTest, MoreBinsThanItems) {
  std::vector<PackItem> items = {{0, 3.0}};
  auto bins = FirstFitDecreasing(items, 4);
  EXPECT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(MaxBinWeight(bins), 3.0);
}

// --- Registry ----------------------------------------------------------------

TEST(RegistryTest, UpsertGetAndIds) {
  data::RetailerData a, b;
  a.id = 5;
  b.id = 2;
  RetailerRegistry registry;
  EXPECT_EQ(registry.Get(5).status().code(), StatusCode::kNotFound);
  registry.Upsert(&a);
  registry.Upsert(&b);
  EXPECT_EQ(registry.size(), 2);
  EXPECT_TRUE(registry.Contains(5));
  EXPECT_FALSE(registry.Contains(9));
  EXPECT_EQ(*registry.Get(5), &a);
  EXPECT_EQ(registry.Ids(), (std::vector<data::RetailerId>{2, 5}));
  // Upsert replaces.
  data::RetailerData a2;
  a2.id = 5;
  registry.Upsert(&a2);
  EXPECT_EQ(*registry.Get(5), &a2);
  EXPECT_EQ(registry.size(), 2);
}

// --- SweepPlanner --------------------------------------------------------------

struct SweepFixture {
  data::WorldConfig config;
  data::WorldGenerator generator{[] {
    data::WorldConfig c;
    c.seed = 5;
    return c;
  }()};
  data::RetailerWorld r0 = generator.GenerateRetailer(0, 60);
  data::RetailerWorld r1 = generator.GenerateRetailer(1, 80);
  RetailerRegistry registry;

  SweepFixture() {
    registry.Upsert(&r0.data);
    registry.Upsert(&r1.data);
  }

  static SweepPlanner::Options SmallOptions() {
    SweepPlanner::Options options;
    options.grid.factors = {4, 8};
    options.grid.lambdas_v = {0.1, 0.01};
    options.grid.lambdas_vc = {0.1};
    options.grid.sweep_taxonomy = false;
    options.grid.sweep_brand = false;
    options.grid.num_epochs = 2;
    options.incremental_top_k = 2;
    options.shuffle = false;
    return options;
  }
};

TEST(SweepPlannerTest, FullSweepCoversAllRetailersAndConfigs) {
  SweepFixture f;
  SweepPlanner planner(SweepFixture::SmallOptions());
  auto plan = planner.PlanFullSweep(f.registry);
  EXPECT_EQ(plan.size(), 8u);  // 2 retailers x 4 configs
  std::map<data::RetailerId, int> per_retailer;
  for (const ConfigRecord& record : plan) {
    ++per_retailer[record.retailer];
    EXPECT_FALSE(record.warm_start);
    EXPECT_FALSE(record.trained);
    EXPECT_EQ(record.model_path,
              ModelPath(record.retailer, record.model_number));
  }
  EXPECT_EQ(per_retailer[0], 4);
  EXPECT_EQ(per_retailer[1], 4);
}

TEST(SweepPlannerTest, ShufflePermutesDeterministically) {
  SweepFixture f;
  SweepPlanner::Options options = SweepFixture::SmallOptions();
  options.shuffle = true;
  SweepPlanner planner(options);
  auto a = planner.PlanFullSweep(f.registry);
  auto b = planner.PlanFullSweep(f.registry);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].Key(), b[i].Key());
}

TEST(SweepPlannerTest, IncrementalKeepsTopKWarmStarted) {
  SweepFixture f;
  SweepPlanner planner(SweepFixture::SmallOptions());
  // Fake previous results: retailer 0 trained 4 models with metrics.
  std::vector<ConfigRecord> previous;
  for (int m = 0; m < 4; ++m) {
    ConfigRecord record;
    record.retailer = 0;
    record.model_number = m;
    record.model_path = ModelPath(0, m);
    record.trained = true;
    record.map_at_10 = 0.1 * m;  // model 3 best
    previous.push_back(record);
  }
  auto plan = planner.PlanIncrementalSweep(f.registry, previous);

  std::map<data::RetailerId, std::vector<const ConfigRecord*>> per_retailer;
  for (const ConfigRecord& record : plan) {
    per_retailer[record.retailer].push_back(&record);
  }
  // Retailer 0: top-2 models (3 and 2), warm-started, metrics reset.
  ASSERT_EQ(per_retailer[0].size(), 2u);
  std::set<int> models;
  for (const ConfigRecord* record : per_retailer[0]) {
    EXPECT_TRUE(record->warm_start);
    EXPECT_FALSE(record->trained);
    EXPECT_LT(record->map_at_10, 0.0);
    models.insert(record->model_number);
  }
  EXPECT_EQ(models, (std::set<int>{2, 3}));
  // Retailer 1 is new: full grid, cold-started.
  ASSERT_EQ(per_retailer[1].size(), 4u);
  for (const ConfigRecord* record : per_retailer[1]) {
    EXPECT_FALSE(record->warm_start);
  }
}

TEST(SweepPlannerTest, UntrainedPreviousRecordsIgnored) {
  SweepFixture f;
  SweepPlanner planner(SweepFixture::SmallOptions());
  ConfigRecord untrained;
  untrained.retailer = 0;
  untrained.trained = false;
  auto plan = planner.PlanIncrementalSweep(f.registry, {untrained});
  // Both retailers treated as new -> 8 records.
  EXPECT_EQ(plan.size(), 8u);
}

}  // namespace
}  // namespace sigmund::pipeline
