#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/taxonomy.h"

namespace sigmund::data {
namespace {

// Builds the paper's Fig. 3 taxonomy:
// root -> Cell Phones -> Smart Phones -> {Android Phones, Apple Phones},
//         Cell Phones -> Other.
struct Fig3 {
  Taxonomy taxonomy;
  CategoryId cell, smart, android, apple, other;

  Fig3() {
    cell = taxonomy.AddCategory("cell_phones", taxonomy.root());
    smart = taxonomy.AddCategory("smart_phones", cell);
    android = taxonomy.AddCategory("android_phones", smart);
    apple = taxonomy.AddCategory("apple_phones", smart);
    other = taxonomy.AddCategory("other", cell);
  }
};

TEST(TaxonomyTest, RootOnlyByDefault) {
  Taxonomy t;
  EXPECT_EQ(t.num_categories(), 1);
  EXPECT_EQ(t.depth(t.root()), 0);
  EXPECT_TRUE(t.IsLeaf(t.root()));
  EXPECT_EQ(t.parent(t.root()), t.root());
}

TEST(TaxonomyTest, DepthsFollowTree) {
  Fig3 f;
  EXPECT_EQ(f.taxonomy.depth(f.cell), 1);
  EXPECT_EQ(f.taxonomy.depth(f.smart), 2);
  EXPECT_EQ(f.taxonomy.depth(f.android), 3);
  EXPECT_EQ(f.taxonomy.depth(f.other), 2);
}

TEST(TaxonomyTest, PathToRootInclusive) {
  Fig3 f;
  auto path = f.taxonomy.PathToRoot(f.android);
  EXPECT_EQ(path, (std::vector<CategoryId>{f.android, f.smart, f.cell,
                                           f.taxonomy.root()}));
}

TEST(TaxonomyTest, LcaBasics) {
  Fig3 f;
  EXPECT_EQ(f.taxonomy.Lca(f.android, f.apple), f.smart);
  EXPECT_EQ(f.taxonomy.Lca(f.android, f.other), f.cell);
  EXPECT_EQ(f.taxonomy.Lca(f.android, f.android), f.android);
  EXPECT_EQ(f.taxonomy.Lca(f.android, f.smart), f.smart);
}

TEST(TaxonomyTest, LcaDistanceMatchesFig3) {
  Fig3 f;
  // Items in the same category (two Android phones): distance 1.
  EXPECT_EQ(f.taxonomy.LcaDistance(f.android, f.android), 1);
  // Android vs Apple phone: distance 2.
  EXPECT_EQ(f.taxonomy.LcaDistance(f.android, f.apple), 2);
  // Android vs "other" cell phone: distance 3 from Android's perspective.
  EXPECT_EQ(f.taxonomy.LcaDistance(f.android, f.other), 3);
}

TEST(TaxonomyTest, CategoriesWithinLcaGrowsWithK) {
  Fig3 f;
  auto k1 = f.taxonomy.CategoriesWithinLca(f.android, 1);
  EXPECT_EQ(k1, (std::vector<CategoryId>{f.android}));
  auto k2 = f.taxonomy.CategoriesWithinLca(f.android, 2);
  EXPECT_EQ(k2, (std::vector<CategoryId>{f.smart, f.android, f.apple}));
  auto k3 = f.taxonomy.CategoriesWithinLca(f.android, 3);
  EXPECT_EQ(k3.size(), 5u);  // cell subtree
  auto k9 = f.taxonomy.CategoriesWithinLca(f.android, 9);
  EXPECT_EQ(k9.size(), 6u);  // clamped at root: whole taxonomy
}

TEST(TaxonomyTest, LeavesListedInOrder) {
  Fig3 f;
  auto leaves = f.taxonomy.Leaves();
  EXPECT_EQ(leaves, (std::vector<CategoryId>{f.android, f.apple, f.other}));
}

TEST(TaxonomyTest, RandomHasRequestedShape) {
  Rng rng(5);
  Taxonomy t = Taxonomy::Random(3, 2, 3, &rng);
  auto leaves = t.Leaves();
  EXPECT_GE(leaves.size(), 8u);  // at least 2^3
  for (CategoryId leaf : leaves) EXPECT_EQ(t.depth(leaf), 3);
}

TEST(TaxonomyTest, RandomDeterministicForSeed) {
  Rng rng1(9), rng2(9);
  Taxonomy a = Taxonomy::Random(2, 2, 4, &rng1);
  Taxonomy b = Taxonomy::Random(2, 2, 4, &rng2);
  EXPECT_EQ(a.num_categories(), b.num_categories());
}

// Property tests over random taxonomies.
class TaxonomyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaxonomyPropertyTest, LcaAndDistanceInvariants) {
  Rng rng(GetParam());
  Taxonomy t = Taxonomy::Random(3, 2, 3, &rng);
  auto leaves = t.Leaves();
  for (int trial = 0; trial < 50; ++trial) {
    CategoryId a = leaves[rng.Uniform(leaves.size())];
    CategoryId b = leaves[rng.Uniform(leaves.size())];
    CategoryId lca = t.Lca(a, b);
    // LCA is an ancestor of both.
    auto path_a = t.PathToRoot(a);
    auto path_b = t.PathToRoot(b);
    EXPECT_NE(std::find(path_a.begin(), path_a.end(), lca), path_a.end());
    EXPECT_NE(std::find(path_b.begin(), path_b.end(), lca), path_b.end());
    // Symmetric for equal-depth leaves.
    EXPECT_EQ(t.LcaDistance(a, b), t.LcaDistance(b, a));
    // Distance bounds: [1, depth+1].
    EXPECT_GE(t.LcaDistance(a, b), 1);
    EXPECT_LE(t.LcaDistance(a, b), t.depth(a) + 1);
    // Identity of indiscernibles (same category <-> distance 1 for a==b).
    EXPECT_EQ(t.LcaDistance(a, a), 1);
    // CategoriesWithinLca is monotone in k.
    auto k1 = t.CategoriesWithinLca(a, 1);
    auto k2 = t.CategoriesWithinLca(a, 2);
    EXPECT_TRUE(std::includes(k2.begin(), k2.end(), k1.begin(), k1.end()));
    // b is within LCA distance d of a where d = LcaDistance(a, b).
    int d = t.LcaDistance(a, b);
    auto within = t.CategoriesWithinLca(a, d);
    EXPECT_NE(std::find(within.begin(), within.end(), b), within.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaxonomyPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace sigmund::data
