#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sfs/mem_filesystem.h"

namespace sigmund::sfs {
namespace {

TEST(MemFileSystemTest, WriteReadRoundTrip) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("models/r1/ckpt", "payload").ok());
  auto data = fs.Read("models/r1/ckpt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "payload");
}

TEST(MemFileSystemTest, WriteOverwrites) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("f", "v1").ok());
  ASSERT_TRUE(fs.Write("f", "v2").ok());
  EXPECT_EQ(*fs.Read("f"), "v2");
}

TEST(MemFileSystemTest, EmptyPathRejected) {
  MemFileSystem fs;
  EXPECT_EQ(fs.Write("", "x").code(), StatusCode::kInvalidArgument);
}

TEST(MemFileSystemTest, ReadMissingIsNotFound) {
  MemFileSystem fs;
  EXPECT_EQ(fs.Read("nope").status().code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, DeleteRemoves) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("f", "x").ok());
  ASSERT_TRUE(fs.Delete("f").ok());
  EXPECT_FALSE(fs.Exists("f"));
  EXPECT_EQ(fs.Delete("f").code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, RenameMovesContent) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("tmp", "x").ok());
  ASSERT_TRUE(fs.Rename("tmp", "final").ok());
  EXPECT_FALSE(fs.Exists("tmp"));
  EXPECT_EQ(*fs.Read("final"), "x");
}

TEST(MemFileSystemTest, RenameOverwritesDestination) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("a", "new").ok());
  ASSERT_TRUE(fs.Write("b", "old").ok());
  ASSERT_TRUE(fs.Rename("a", "b").ok());
  EXPECT_EQ(*fs.Read("b"), "new");
}

TEST(MemFileSystemTest, RenameMissingSource) {
  MemFileSystem fs;
  EXPECT_EQ(fs.Rename("gone", "b").code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, ListPrefixSorted) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("a/2", "").ok());
  ASSERT_TRUE(fs.Write("a/1", "").ok());
  ASSERT_TRUE(fs.Write("b/1", "").ok());
  EXPECT_EQ(fs.List("a/"), (std::vector<std::string>{"a/1", "a/2"}));
  EXPECT_EQ(fs.List(""), (std::vector<std::string>{"a/1", "a/2", "b/1"}));
  EXPECT_TRUE(fs.List("zzz").empty());
}

TEST(MemFileSystemTest, FileSizeAndTotals) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("f", "12345").ok());
  ASSERT_TRUE(fs.Write("g", "12").ok());
  EXPECT_EQ(*fs.FileSize("f"), 5);
  EXPECT_EQ(fs.TotalBytes(), 7);
  EXPECT_EQ(fs.FileCount(), 2);
  EXPECT_EQ(fs.FileSize("h").status().code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, ConcurrentWritersDontCorrupt) {
  MemFileSystem fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, t] {
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(
            fs.Write("t" + std::to_string(t) + "/" + std::to_string(i), "x")
                .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fs.FileCount(), 800);
}

TEST(FileTransferLedgerTest, CountsCrossCellOnly) {
  FileTransferLedger ledger;
  ledger.RecordTransfer("cell-a", "cell-a", 1000);  // local: free
  EXPECT_EQ(ledger.total_bytes(), 0);
  ledger.RecordTransfer("cell-a", "cell-b", 1000);
  ledger.RecordTransfer("cell-b", "cell-c", 500);
  EXPECT_EQ(ledger.total_bytes(), 1500);
  EXPECT_EQ(ledger.transfer_count(), 2);
  ledger.Reset();
  EXPECT_EQ(ledger.total_bytes(), 0);
}

}  // namespace
}  // namespace sigmund::sfs
