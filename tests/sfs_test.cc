#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "sfs/fault_injection.h"
#include "sfs/mem_filesystem.h"
#include "sfs/reliable_io.h"

namespace sigmund::sfs {
namespace {

TEST(MemFileSystemTest, WriteReadRoundTrip) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("models/r1/ckpt", "payload").ok());
  auto data = fs.Read("models/r1/ckpt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "payload");
}

TEST(MemFileSystemTest, WriteOverwrites) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("f", "v1").ok());
  ASSERT_TRUE(fs.Write("f", "v2").ok());
  EXPECT_EQ(*fs.Read("f"), "v2");
}

TEST(MemFileSystemTest, EmptyPathRejected) {
  MemFileSystem fs;
  EXPECT_EQ(fs.Write("", "x").code(), StatusCode::kInvalidArgument);
}

TEST(MemFileSystemTest, ReadMissingIsNotFound) {
  MemFileSystem fs;
  EXPECT_EQ(fs.Read("nope").status().code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, DeleteRemoves) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("f", "x").ok());
  ASSERT_TRUE(fs.Delete("f").ok());
  EXPECT_FALSE(fs.Exists("f"));
  EXPECT_EQ(fs.Delete("f").code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, RenameMovesContent) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("tmp", "x").ok());
  ASSERT_TRUE(fs.Rename("tmp", "final").ok());
  EXPECT_FALSE(fs.Exists("tmp"));
  EXPECT_EQ(*fs.Read("final"), "x");
}

TEST(MemFileSystemTest, RenameOverwritesDestination) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("a", "new").ok());
  ASSERT_TRUE(fs.Write("b", "old").ok());
  ASSERT_TRUE(fs.Rename("a", "b").ok());
  EXPECT_EQ(*fs.Read("b"), "new");
}

TEST(MemFileSystemTest, RenameMissingSource) {
  MemFileSystem fs;
  EXPECT_EQ(fs.Rename("gone", "b").code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, ListPrefixSorted) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("a/2", "").ok());
  ASSERT_TRUE(fs.Write("a/1", "").ok());
  ASSERT_TRUE(fs.Write("b/1", "").ok());
  EXPECT_EQ(*fs.List("a/"), (std::vector<std::string>{"a/1", "a/2"}));
  EXPECT_EQ(*fs.List(""), (std::vector<std::string>{"a/1", "a/2", "b/1"}));
  EXPECT_TRUE(fs.List("zzz")->empty());
}

TEST(MemFileSystemTest, FileSizeAndTotals) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.Write("f", "12345").ok());
  ASSERT_TRUE(fs.Write("g", "12").ok());
  EXPECT_EQ(*fs.FileSize("f"), 5);
  EXPECT_EQ(fs.TotalBytes(), 7);
  EXPECT_EQ(fs.FileCount(), 2);
  EXPECT_EQ(fs.FileSize("h").status().code(), StatusCode::kNotFound);
}

TEST(MemFileSystemTest, ConcurrentWritersDontCorrupt) {
  MemFileSystem fs;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fs, t] {
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(
            fs.Write("t" + std::to_string(t) + "/" + std::to_string(i), "x")
                .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fs.FileCount(), 800);
}

// --- FaultInjectingFileSystem ----------------------------------------------

TEST(FaultInjectionTest, DefaultProfileIsTransparent) {
  MemFileSystem base;
  FaultInjectingFileSystem fs(&base, FaultProfile{});
  for (int i = 0; i < 100; ++i) {
    std::string path = "p" + std::to_string(i);
    ASSERT_TRUE(fs.Write(path, "data").ok());
    ASSERT_TRUE(fs.Read(path).ok());
  }
  ASSERT_TRUE(fs.Rename("p0", "q0").ok());
  ASSERT_TRUE(fs.Delete("p1").ok());
  ASSERT_TRUE(fs.List("").ok());
  EXPECT_EQ(fs.counters().total(), 0);
}

TEST(FaultInjectionTest, TransientErrorsAreUnavailableAndCounted) {
  MemFileSystem base;
  ASSERT_TRUE(base.Write("f", "payload").ok());
  FaultProfile profile;
  profile.read_error_prob = 0.5;
  profile.seed = 7;
  FaultInjectingFileSystem fs(&base, profile);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    StatusOr<std::string> data = fs.Read("f");
    if (!data.ok()) {
      EXPECT_EQ(data.status().code(), StatusCode::kUnavailable);
      ++failures;
    } else {
      EXPECT_EQ(*data, "payload");  // faults never corrupt, only fail
    }
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
  EXPECT_EQ(fs.counters().read_errors.load(), failures);
  EXPECT_EQ(fs.counters().total(), failures);
}

TEST(FaultInjectionTest, ScheduleIsDeterministicPerPathAndAccess) {
  auto run = [](std::vector<bool>* outcomes) {
    MemFileSystem base;
    ASSERT_TRUE(base.Write("a", "x").ok());
    ASSERT_TRUE(base.Write("b", "y").ok());
    FaultProfile profile;
    profile.read_error_prob = 0.4;
    profile.seed = 99;
    FaultInjectingFileSystem fs(&base, profile);
    for (int i = 0; i < 50; ++i) {
      outcomes->push_back(fs.Read("a").ok());
      outcomes->push_back(fs.Read("b").ok());
    }
  };
  std::vector<bool> first, second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
}

TEST(FaultInjectionTest, TornWritesReturnOkButCorrupt) {
  MemFileSystem base;
  FaultProfile profile;
  profile.torn_write_prob = 1.0;
  profile.seed = 3;
  FaultInjectingFileSystem fs(&base, profile);
  const std::string payload(100, 'x');
  ASSERT_TRUE(fs.Write("f", payload).ok());  // torn writes report success
  EXPECT_EQ(fs.counters().torn_writes.load(), 1);
  EXPECT_NE(*base.Read("f"), payload);
  // A framed payload through the raw (unverified) write path: the tear
  // goes undetected at write time but the CRC catches it at read time.
  ASSERT_TRUE(fs.Write("g", WriteChecksummedFrame(payload)).ok());
  EXPECT_EQ(ReadChecksummedFrame(*base.Read("g")).status().code(),
            StatusCode::kDataLoss);
}

TEST(FaultInjectionTest, DisabledPassesThrough) {
  MemFileSystem base;
  FaultProfile profile;
  profile.write_error_prob = 1.0;
  profile.torn_write_prob = 1.0;
  FaultInjectingFileSystem fs(&base, profile);
  EXPECT_EQ(fs.Write("f", "x").code(), StatusCode::kUnavailable);
  fs.set_enabled(false);
  ASSERT_TRUE(fs.Write("f", "x").ok());
  EXPECT_EQ(*base.Read("f"), "x");
  fs.set_enabled(true);
  EXPECT_EQ(fs.Write("g", "x").code(), StatusCode::kUnavailable);
}

// --- Reliable I/O -----------------------------------------------------------

TEST(ReliableIoTest, RoundTripWithoutFaults) {
  MemFileSystem fs;
  ReliableIoCounters io;
  ASSERT_TRUE(WriteChecksummedFile(&fs, "f", "payload", {}, &io).ok());
  StatusOr<std::string> back = ReadChecksummedFile(&fs, "f", {}, &io);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "payload");
  EXPECT_EQ(io.corruptions_detected.load(), 0);
  EXPECT_EQ(io.retry.retries.load(), 0);
  // The stored bytes really are framed.
  EXPECT_TRUE(LooksLikeChecksummedFrame(*fs.Read("f")));
}

TEST(ReliableIoTest, RetriesTransientErrors) {
  MemFileSystem base;
  FaultProfile profile;
  profile.read_error_prob = 0.5;
  profile.write_error_prob = 0.5;
  profile.seed = 21;
  FaultInjectingFileSystem fs(&base, profile);
  RetryPolicy policy;
  policy.max_attempts = 20;
  ReliableIoCounters io;
  for (int i = 0; i < 20; ++i) {
    std::string path = "f" + std::to_string(i);
    ASSERT_TRUE(WriteChecksummedFile(&fs, path, "payload", policy, &io).ok());
    StatusOr<std::string> back = ReadChecksummedFile(&fs, path, policy, &io);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, "payload");
  }
  EXPECT_GT(fs.counters().total(), 0);
  EXPECT_GT(io.retry.retries.load(), 0);
}

TEST(ReliableIoTest, HealsTornWrites) {
  MemFileSystem base;
  FaultProfile profile;
  profile.torn_write_prob = 0.5;
  profile.seed = 13;
  FaultInjectingFileSystem fs(&base, profile);
  ReliableIoCounters io;
  for (int i = 0; i < 30; ++i) {
    std::string path = "f" + std::to_string(i);
    ASSERT_TRUE(WriteChecksummedFile(&fs, path, "payload", {}, &io).ok());
    // After healing, the durable bytes are intact even via the raw base.
    StatusOr<std::string> back = ReadChecksummedFrame(*base.Read(path));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, "payload");
  }
  EXPECT_GT(fs.counters().torn_writes.load(), 0);
  EXPECT_GT(io.corruptions_detected.load(), 0);
  // One heal per write that recovered; consecutive tears of the same
  // write each count as a detection, so healed <= detected.
  EXPECT_GT(io.corruptions_healed.load(), 0);
  EXPECT_LE(io.corruptions_healed.load(), io.corruptions_detected.load());
}

TEST(ReliableIoTest, ReadDetectsCorruptionAsDataLoss) {
  MemFileSystem fs;
  ASSERT_TRUE(WriteChecksummedFile(&fs, "f", "payload").ok());
  std::string bytes = *fs.Read("f");
  bytes[bytes.size() - 1] ^= 0x40;
  ASSERT_TRUE(fs.Write("f", bytes).ok());
  ReliableIoCounters io;
  EXPECT_EQ(ReadChecksummedFile(&fs, "f", {}, &io).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(io.corruptions_detected.load(), 1);
  // Missing file is kNotFound, not kDataLoss.
  EXPECT_EQ(ReadChecksummedFile(&fs, "nope").status().code(),
            StatusCode::kNotFound);
}

TEST(FileTransferLedgerTest, CountsCrossCellOnly) {
  FileTransferLedger ledger;
  ledger.RecordTransfer("cell-a", "cell-a", 1000);  // local: free
  EXPECT_EQ(ledger.total_bytes(), 0);
  ledger.RecordTransfer("cell-a", "cell-b", 1000);
  ledger.RecordTransfer("cell-b", "cell-c", 500);
  EXPECT_EQ(ledger.total_bytes(), 1500);
  EXPECT_EQ(ledger.transfer_count(), 2);
  ledger.Reset();
  EXPECT_EQ(ledger.total_bytes(), 0);
}

}  // namespace
}  // namespace sigmund::sfs
