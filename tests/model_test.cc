#include <cmath>

#include <gtest/gtest.h>

#include "core/model.h"
#include "data/catalog.h"

namespace sigmund::core {
namespace {

// Catalog: root -> {electronics -> {phones, cases}, grocery}; four items.
struct TestWorld {
  data::Catalog catalog;
  data::CategoryId phones, cases, grocery;

  TestWorld() {
    data::Taxonomy taxonomy;
    data::CategoryId electronics =
        taxonomy.AddCategory("electronics", taxonomy.root());
    phones = taxonomy.AddCategory("phones", electronics);
    cases = taxonomy.AddCategory("cases", electronics);
    grocery = taxonomy.AddCategory("grocery", taxonomy.root());
    catalog = data::Catalog(std::move(taxonomy));
    catalog.AddItem(data::Item{phones, 0, 499.0, 0});   // item 0
    catalog.AddItem(data::Item{phones, 1, 599.0, 0});   // item 1
    catalog.AddItem(data::Item{cases, 0, 19.0, 1});     // item 2
    catalog.AddItem(data::Item{grocery, data::kUnknownBrand, 2.0, 2});
    catalog.Finalize();
  }
};

HyperParams SmallParams() {
  HyperParams params;
  params.num_factors = 4;
  params.use_taxonomy = true;
  params.use_brand = true;
  params.use_price = true;
  return params;
}

TEST(EmbeddingMatrixTest, ResizeZeroesValues) {
  EmbeddingMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.dim(), 4);
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < 4; ++k) EXPECT_EQ(m.row(r)[k], 0.0f);
    EXPECT_EQ(m.adagrad(r), 0.0f);
  }
}

TEST(EmbeddingMatrixTest, InitRandomFillsGaussian) {
  EmbeddingMatrix m(50, 8);
  Rng rng(3);
  m.InitRandom(0.1, &rng);
  double sum = 0.0;
  int nonzero = 0;
  for (int r = 0; r < 50; ++r) {
    for (int k = 0; k < 8; ++k) {
      sum += m.row(r)[k];
      if (m.row(r)[k] != 0.0f) ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 390);
  EXPECT_NEAR(sum / 400.0, 0.0, 0.05);
}

TEST(EmbeddingMatrixTest, GrowRowsPreservesOldInitializesNew) {
  EmbeddingMatrix m(2, 3);
  Rng rng(1);
  m.InitRandom(0.5, &rng);
  std::vector<float> old_row0(m.row(0), m.row(0) + 3);
  m.GrowRows(5, 0.5, &rng);
  EXPECT_EQ(m.rows(), 5);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(m.row(0)[k], old_row0[k]);
  bool any_nonzero = false;
  for (int r = 2; r < 5; ++r) {
    for (int k = 0; k < 3; ++k) any_nonzero |= m.row(r)[k] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(BprModelTest, TablesSizedFromCatalogAndFlags) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  EXPECT_EQ(model.item_embeddings().rows(), 4);
  EXPECT_EQ(model.context_embeddings().rows(), 4);
  EXPECT_EQ(model.taxonomy_embeddings().rows(), 5);  // root + 4 categories
  EXPECT_EQ(model.brand_embeddings().rows(), 2);
  EXPECT_EQ(model.price_embeddings().rows(), data::kDefaultPriceBuckets);

  HyperParams bare = SmallParams();
  bare.use_taxonomy = bare.use_brand = bare.use_price = false;
  BprModel plain(&world.catalog, bare);
  EXPECT_EQ(plain.taxonomy_embeddings().rows(), 0);
  EXPECT_EQ(plain.brand_embeddings().rows(), 0);
  EXPECT_EQ(plain.price_embeddings().rows(), 0);
}

TEST(BprModelTest, ItemRepresentationIsAdditive) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  Rng rng(7);
  model.InitRandom(&rng);

  std::vector<float> phi(4);
  model.ItemRepresentation(0, phi.data());

  // Manually sum: v_0 + taxonomy path (phones, electronics, root) + brand 0
  // + price bucket of 499.
  std::vector<float> expected(4, 0.0f);
  const float* v = model.item_embeddings().row(0);
  for (int k = 0; k < 4; ++k) expected[k] += v[k];
  for (data::CategoryId c :
       world.catalog.taxonomy().PathToRoot(world.phones)) {
    const float* t = model.taxonomy_embeddings().row(c);
    for (int k = 0; k < 4; ++k) expected[k] += t[k];
  }
  const float* b = model.brand_embeddings().row(0);
  for (int k = 0; k < 4; ++k) expected[k] += b[k];
  int bucket = data::PriceBucket(499.0, data::kDefaultPriceBuckets);
  const float* p = model.price_embeddings().row(bucket);
  for (int k = 0; k < 4; ++k) expected[k] += p[k];

  for (int k = 0; k < 4; ++k) EXPECT_FLOAT_EQ(phi[k], expected[k]);
}

TEST(BprModelTest, SameCategorySharesTaxonomyComponent) {
  // With item embeddings zeroed, two items in the same category get an
  // identical representation minus brand/price differences — the
  // generalization mechanism for cold items.
  TestWorld world;
  HyperParams params = SmallParams();
  params.use_brand = false;
  params.use_price = false;
  BprModel model(&world.catalog, params);
  Rng rng(7);
  model.InitRandom(&rng);
  // Zero out the per-item embeddings.
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 4; ++k) model.item_embeddings().row(r)[k] = 0.0f;
  }
  std::vector<float> phi0(4), phi1(4), phi3(4);
  model.ItemRepresentation(0, phi0.data());
  model.ItemRepresentation(1, phi1.data());
  model.ItemRepresentation(3, phi3.data());
  for (int k = 0; k < 4; ++k) EXPECT_FLOAT_EQ(phi0[k], phi1[k]);
  bool differs = false;
  for (int k = 0; k < 4; ++k) differs |= phi0[k] != phi3[k];
  EXPECT_TRUE(differs);
}

TEST(BprModelTest, UserEmbeddingEmptyContextIsZero) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  Rng rng(7);
  model.InitRandom(&rng);
  std::vector<float> u(4, 1.0f);
  model.UserEmbedding({}, u.data());
  for (int k = 0; k < 4; ++k) EXPECT_EQ(u[k], 0.0f);
}

TEST(BprModelTest, UserEmbeddingSingleItemIsItsContextEmbedding) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  Rng rng(7);
  model.InitRandom(&rng);
  std::vector<float> u(4);
  model.UserEmbedding({{2, data::ActionType::kView}}, u.data());
  const float* vc = model.context_embeddings().row(2);
  for (int k = 0; k < 4; ++k) EXPECT_FLOAT_EQ(u[k], vc[k]);
}

TEST(BprModelTest, ContextWeightsDecayAndNormalize) {
  TestWorld world;
  HyperParams params = SmallParams();
  params.context_decay = 0.5;
  BprModel model(&world.catalog, params);
  std::vector<float> w = model.ContextWeights(3);
  ASSERT_EQ(w.size(), 3u);
  // Oldest first: 0.25, 0.5, 1.0 normalized by 1.75.
  EXPECT_NEAR(w[0], 0.25 / 1.75, 1e-6);
  EXPECT_NEAR(w[1], 0.50 / 1.75, 1e-6);
  EXPECT_NEAR(w[2], 1.00 / 1.75, 1e-6);
  // Recent actions weigh more (§III-B2).
  EXPECT_GT(w[2], w[1]);
  EXPECT_GT(w[1], w[0]);
}

TEST(BprModelTest, ContextWindowTruncatesOldActions) {
  TestWorld world;
  HyperParams params = SmallParams();
  params.context_window = 1;
  BprModel model(&world.catalog, params);
  Rng rng(7);
  model.InitRandom(&rng);
  // Only the newest entry (item 2) should matter.
  std::vector<float> u(4);
  model.UserEmbedding(
      {{0, data::ActionType::kView}, {2, data::ActionType::kView}}, u.data());
  const float* vc = model.context_embeddings().row(2);
  for (int k = 0; k < 4; ++k) EXPECT_FLOAT_EQ(u[k], vc[k]);
}

TEST(BprModelTest, ScoreIsDotProduct) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  Rng rng(7);
  model.InitRandom(&rng);
  std::vector<float> u = {1.0f, 0.0f, -1.0f, 2.0f};
  std::vector<float> phi(4);
  model.ItemRepresentation(1, phi.data());
  double expected = u[0] * phi[0] + u[1] * phi[1] + u[2] * phi[2] +
                    u[3] * phi[3];
  EXPECT_NEAR(model.Score(u.data(), 1), expected, 1e-6);
}

TEST(BprModelTest, SerializeDeserializeRoundTrip) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  Rng rng(11);
  model.InitRandom(&rng);
  model.item_embeddings().adagrad(2) = 3.5f;

  std::string bytes = model.Serialize();
  StatusOr<BprModel> restored = BprModel::Deserialize(bytes, &world.catalog);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->params(), model.params());
  for (int r = 0; r < 4; ++r) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(restored->item_embeddings().row(r)[k],
                model.item_embeddings().row(r)[k]);
      EXPECT_EQ(restored->context_embeddings().row(r)[k],
                model.context_embeddings().row(r)[k]);
    }
  }
  EXPECT_EQ(restored->item_embeddings().adagrad(2), 3.5f);
  // Scores identical.
  std::vector<float> u = {0.3f, -0.2f, 0.9f, 0.1f};
  for (data::ItemIndex i = 0; i < 4; ++i) {
    EXPECT_NEAR(restored->Score(u.data(), i), model.Score(u.data(), i), 1e-7);
  }
}

TEST(BprModelTest, DeserializeRejectsGarbage) {
  TestWorld world;
  EXPECT_FALSE(BprModel::Deserialize("not a model", &world.catalog).ok());
  EXPECT_FALSE(BprModel::Deserialize("", &world.catalog).ok());
  BprModel model(&world.catalog, SmallParams());
  std::string bytes = model.Serialize();
  bytes.resize(bytes.size() / 2);  // truncated
  EXPECT_FALSE(BprModel::Deserialize(bytes, &world.catalog).ok());
}

TEST(BprModelTest, ResizeForCatalogGrowsItemTables) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  Rng rng(5);
  model.InitRandom(&rng);
  std::vector<float> old0(model.item_embeddings().row(0),
                          model.item_embeddings().row(0) + 4);

  world.catalog.AddItem(data::Item{world.cases, 0, 25.0, 1});
  EXPECT_EQ(model.ResizeForCatalog(&rng), 1);
  EXPECT_EQ(model.item_embeddings().rows(), 5);
  EXPECT_EQ(model.context_embeddings().rows(), 5);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(model.item_embeddings().row(0)[k], old0[k]);
  }
  // Idempotent when nothing changed.
  EXPECT_EQ(model.ResizeForCatalog(&rng), 0);
}

TEST(BprModelTest, ResetAdagradClearsAccumulators) {
  TestWorld world;
  BprModel model(&world.catalog, SmallParams());
  model.item_embeddings().adagrad(1) = 9.0f;
  model.taxonomy_embeddings().adagrad(0) = 2.0f;
  model.ResetAdagrad();
  EXPECT_EQ(model.item_embeddings().adagrad(1), 0.0f);
  EXPECT_EQ(model.taxonomy_embeddings().adagrad(0), 0.0f);
}

TEST(BprModelTest, MemoryScalesWithFactors) {
  TestWorld world;
  HyperParams small = SmallParams();
  HyperParams big = SmallParams();
  big.num_factors = 64;
  BprModel model_small(&world.catalog, small);
  BprModel model_big(&world.catalog, big);
  EXPECT_GT(model_big.MemoryBytes(), 8 * model_small.MemoryBytes());
}

}  // namespace
}  // namespace sigmund::core
