#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/cooccurrence.h"
#include "core/evaluator.h"
#include "core/negative_sampler.h"
#include "core/training_data.h"
#include "data/world_generator.h"

namespace sigmund::core {
namespace {

struct Fixture {
  data::RetailerWorld world;
  data::TrainTestSplit split;
  TrainingData training_data;

  explicit Fixture(int items = 100, uint64_t seed = 3)
      : world([&] {
          data::WorldConfig config;
          config.seed = seed;
          data::WorldGenerator generator(config);
          return generator.GenerateRetailer(0, items);
        }()),
        split(data::SplitLeaveLastOut(world.data)),
        training_data(&split.train, world.data.num_items()) {}
};

HyperParams SmallParams() {
  HyperParams params;
  params.num_factors = 8;
  return params;
}

TEST(UniformSamplerTest, NeverReturnsSeenOrPositive) {
  Fixture f;
  UniformSampler sampler;
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    data::ItemIndex positive = f.training_data.EventAt(pos).item;
    data::ItemIndex j =
        sampler.Sample(f.training_data, pos.user, nullptr, positive, &rng);
    if (j == data::kInvalidItem) continue;
    EXPECT_NE(j, positive);
    EXPECT_FALSE(f.training_data.Seen(pos.user, j));
  }
}

TEST(UniformSamplerTest, TinyCatalogReturnsInvalid) {
  std::vector<std::vector<data::Interaction>> histories = {
      {{0, 0, data::ActionType::kView, 1}}};
  TrainingData data(&histories, 1);
  UniformSampler sampler;
  Rng rng(1);
  EXPECT_EQ(sampler.Sample(data, 0, nullptr, 0, &rng), data::kInvalidItem);
}

TEST(PopularitySamplerTest, SkewsTowardPopularItems) {
  Fixture f;
  PopularitySampler sampler(f.training_data.item_counts(), 1.0);
  Rng rng(2);
  std::vector<int64_t> draws(f.world.data.num_items(), 0);
  for (int trial = 0; trial < 5000; ++trial) {
    TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    data::ItemIndex j = sampler.Sample(
        f.training_data, pos.user, nullptr, f.training_data.EventAt(pos).item,
        &rng);
    if (j != data::kInvalidItem) ++draws[j];
  }
  // Correlate draw frequency with popularity: top-decile items should be
  // drawn more often per item than bottom-decile items.
  auto items = f.training_data.item_counts();
  std::vector<int> order(items.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return items[a] > items[b]; });
  int decile = std::max<int>(1, static_cast<int>(order.size()) / 10);
  double top = 0, bottom = 0;
  for (int i = 0; i < decile; ++i) top += draws[order[i]];
  for (int i = 0; i < decile; ++i) {
    bottom += draws[order[order.size() - 1 - i]];
  }
  EXPECT_GT(top, bottom);
}

TEST(TaxonomySamplerTest, PrefersDistantCategories) {
  Fixture f;
  TaxonomySampler sampler(&f.world.data.catalog, /*min_distance=*/3);
  UniformSampler uniform;
  Rng rng(3);
  double taxonomy_distance_sum = 0, uniform_distance_sum = 0;
  int n = 0;
  for (int trial = 0; trial < 500; ++trial) {
    TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    data::ItemIndex positive = f.training_data.EventAt(pos).item;
    data::ItemIndex a =
        sampler.Sample(f.training_data, pos.user, nullptr, positive, &rng);
    data::ItemIndex b =
        uniform.Sample(f.training_data, pos.user, nullptr, positive, &rng);
    if (a == data::kInvalidItem || b == data::kInvalidItem) continue;
    taxonomy_distance_sum += f.world.data.catalog.LcaDistance(positive, a);
    uniform_distance_sum += f.world.data.catalog.LcaDistance(positive, b);
    ++n;
  }
  ASSERT_GT(n, 100);
  EXPECT_GT(taxonomy_distance_sum / n, uniform_distance_sum / n);
}

TEST(AdaptiveSamplerTest, PicksHighestScoringCandidate) {
  Fixture f;
  BprModel model(&f.world.data.catalog, SmallParams());
  Rng init(7);
  model.InitRandom(&init);
  AdaptiveSampler sampler(&model, std::make_unique<UniformSampler>(), 8);
  UniformSampler uniform;
  Rng rng(5);

  std::vector<float> user_vec(model.dim());
  model.UserEmbedding({{0, data::ActionType::kView}}, user_vec.data());

  double adaptive_sum = 0, uniform_sum = 0;
  int n = 0;
  for (int trial = 0; trial < 300; ++trial) {
    TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    data::ItemIndex positive = f.training_data.EventAt(pos).item;
    data::ItemIndex a = sampler.Sample(f.training_data, pos.user,
                                       user_vec.data(), positive, &rng);
    data::ItemIndex b = uniform.Sample(f.training_data, pos.user,
                                       user_vec.data(), positive, &rng);
    if (a == data::kInvalidItem || b == data::kInvalidItem) continue;
    adaptive_sum += model.Score(user_vec.data(), a);
    uniform_sum += model.Score(user_vec.data(), b);
    ++n;
  }
  ASSERT_GT(n, 100);
  // Adaptive picks the hardest (highest-scoring) negatives.
  EXPECT_GT(adaptive_sum / n, uniform_sum / n);
}

TEST(ExclusionSamplerTest, AvoidsStronglyCooccurringItems) {
  Fixture f;
  CooccurrenceModel cooccurrence = CooccurrenceModel::Build(
      f.split.train, f.world.data.num_items(), {});
  ExclusionSampler sampler(std::make_unique<UniformSampler>(), &cooccurrence,
                           /*max_co_count=*/0);
  Rng rng(11);
  int excluded_hits = 0, total = 0;
  for (int trial = 0; trial < 500; ++trial) {
    TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    data::ItemIndex positive = f.training_data.EventAt(pos).item;
    data::ItemIndex j = sampler.Sample(f.training_data, pos.user, nullptr,
                                       positive, &rng);
    if (j == data::kInvalidItem) continue;
    ++total;
    if (cooccurrence.CoViewCount(positive, j) > 0) ++excluded_hits;
  }
  ASSERT_GT(total, 100);
  // Near-zero leakage (the sampler falls back after 8 tries, so a few may
  // slip through).
  EXPECT_LT(static_cast<double>(excluded_hits) / total, 0.05);
}

TEST(MakeNegativeSamplerTest, BuildsEveryKind) {
  Fixture f;
  BprModel model(&f.world.data.catalog, SmallParams());
  CooccurrenceModel cooccurrence = CooccurrenceModel::Build(
      f.split.train, f.world.data.num_items(), {});
  for (NegativeSamplerKind kind :
       {NegativeSamplerKind::kUniform, NegativeSamplerKind::kPopularity,
        NegativeSamplerKind::kTaxonomy, NegativeSamplerKind::kAdaptive}) {
    HyperParams params = SmallParams();
    params.sampler = kind;
    auto sampler = MakeNegativeSampler(params, &f.world.data.catalog,
                                       &f.training_data, &model,
                                       &cooccurrence);
    ASSERT_NE(sampler, nullptr);
    Rng rng(1);
    TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    sampler->Sample(f.training_data, pos.user, nullptr,
                    f.training_data.EventAt(pos).item, &rng);
  }
}

// --- Evaluator ----------------------------------------------------------

TEST(EvaluatorTest, EmptyHoldoutGivesZeroExamples) {
  Fixture f;
  BprModel model(&f.world.data.catalog, SmallParams());
  MetricSet metrics =
      Evaluator::Evaluate(model, f.training_data, {}, {});
  EXPECT_EQ(metrics.num_examples, 0);
}

TEST(EvaluatorTest, MetricsWithinBounds) {
  Fixture f;
  BprModel model(&f.world.data.catalog, SmallParams());
  Rng rng(5);
  model.InitRandom(&rng);
  MetricSet metrics =
      Evaluator::Evaluate(model, f.training_data, f.split.holdout, {});
  EXPECT_GT(metrics.num_examples, 0);
  for (double v : {metrics.map_at_k, metrics.precision_at_k,
                   metrics.recall_at_k, metrics.ndcg_at_k, metrics.auc}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_GE(metrics.mean_rank, 1.0);
  // Untrained model: AUC should hover near 0.5.
  EXPECT_NEAR(metrics.auc, 0.5, 0.15);
}

TEST(EvaluatorTest, PerfectModelGetsPerfectMetrics) {
  // Build a model whose context embedding of the last-seen item points at
  // the held-out item's representation: plant phi(target) = huge in one
  // dimension.
  Fixture f;
  HyperParams params = SmallParams();
  params.use_taxonomy = false;
  BprModel model(&f.world.data.catalog, params);
  // All zero. For one holdout user, rig the scores.
  ASSERT_FALSE(f.split.holdout.empty());
  const data::HoldoutExample& example = f.split.holdout[0];
  Context context =
      f.training_data.FullContext(example.user, params.context_window);
  ASSERT_FALSE(context.empty());
  // Set context embedding of every context item to e0, and the target's
  // item embedding to e0 too => target scores 1; all else 0.
  for (const ContextEntry& entry : context) {
    model.context_embeddings().row(entry.item)[0] = 1.0f;
  }
  model.item_embeddings().row(example.held_out)[0] = 1.0f;

  std::vector<data::HoldoutExample> single = {example};
  MetricSet metrics =
      Evaluator::Evaluate(model, f.training_data, single, {});
  EXPECT_DOUBLE_EQ(metrics.map_at_k, 1.0);  // rank 1
  EXPECT_DOUBLE_EQ(metrics.recall_at_k, 1.0);
  EXPECT_DOUBLE_EQ(metrics.ndcg_at_k, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_rank, 1.0);
  EXPECT_DOUBLE_EQ(metrics.auc, 1.0);
}

TEST(EvaluatorTest, SampledMapApproximatesExactMap) {
  // §III-C2: sampling 10% of items to estimate MAP must not change model
  // comparisons. Check the estimate is close on a trained-ish model.
  Fixture f(200, 7);
  HyperParams params = SmallParams();
  BprModel model(&f.world.data.catalog, params);
  Rng rng(5);
  model.InitRandom(&rng);
  // Give the model some structure: bias item scores by popularity via the
  // context table so ranks are not all ties.
  for (int r = 0; r < model.item_embeddings().rows(); ++r) {
    model.item_embeddings().row(r)[0] +=
        0.01f * static_cast<float>(f.training_data.item_counts()[r]);
  }

  Evaluator::Options exact;
  Evaluator::Options sampled;
  sampled.item_sample_fraction = 0.3;
  MetricSet exact_metrics =
      Evaluator::Evaluate(model, f.training_data, f.split.holdout, exact);
  MetricSet sampled_metrics =
      Evaluator::Evaluate(model, f.training_data, f.split.holdout, sampled);
  EXPECT_NEAR(sampled_metrics.mean_rank, exact_metrics.mean_rank,
              0.35 * exact_metrics.mean_rank + 3.0);
}

TEST(EvaluatorTest, ExcludeSeenReducesDistractors) {
  Fixture f;
  HyperParams params = SmallParams();
  BprModel model(&f.world.data.catalog, params);
  Rng rng(5);
  model.InitRandom(&rng);
  Evaluator::Options with_seen;
  with_seen.exclude_seen = false;
  Evaluator::Options without_seen;
  without_seen.exclude_seen = true;
  MetricSet a =
      Evaluator::Evaluate(model, f.training_data, f.split.holdout, with_seen);
  MetricSet b = Evaluator::Evaluate(model, f.training_data, f.split.holdout,
                                    without_seen);
  // Removing distractors can only improve (or keep) the mean rank.
  EXPECT_LE(b.mean_rank, a.mean_rank + 1e-9);
}

}  // namespace
}  // namespace sigmund::core
