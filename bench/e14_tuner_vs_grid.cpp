// E14: grid search vs. successive halving — the paper runs a self-managed
// grid and remarks that a Vizier-like trial-management service "hold[s]
// promise to improve on simple grid-search based techniques" (§III-C1).
// This bench quantifies the improvement with the simplest such policy:
// successive halving finds a model of near-identical quality for a
// fraction of the grid's SGD budget.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/tuner.h"

using namespace sigmund;

int main() {
  data::RetailerWorld world = bench::MakeWorld(101, 500, 4.0);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("E14 tuner vs grid | items=%d holdout=%zu\n",
              world.data.num_items(), split.holdout.size());

  core::GridSpec space;
  space.factors = {4, 8, 16, 32};
  space.learning_rates = {0.3, 0.1, 0.05, 0.01};
  space.lambdas_v = {0.3, 0.03, 0.003};
  space.lambdas_vc = {0.01};
  space.sweep_taxonomy = false;
  space.max_configs = 27;

  // --- Full grid: every config trained to the full epoch budget.
  const int kFullEpochs = 8;
  space.num_epochs = kFullEpochs;
  std::vector<core::HyperParams> grid =
      core::BuildGrid(space, world.data.catalog, 1);
  std::vector<core::TrialResult> trials =
      core::RunGridSearch(world.data, split, grid, 1, 1.0);
  int64_t grid_steps = 0;
  for (const core::TrialResult& trial : trials) {
    grid_steps += trial.stats.sgd_steps;
  }

  // --- Successive halving over the same space.
  core::TunerOptions options;
  options.initial_configs = 27;
  options.eta = 3;
  options.epochs_per_rung = 2;
  options.seed = 1;
  core::TunerOutcome outcome =
      core::SuccessiveHalving(world.data, split, space, options);

  std::printf("\n%-22s %-10s %-14s %-10s\n", "method", "best map",
              "sgd steps", "budget");
  std::printf("%-22s %-10.4f %-14lld %-10s\n", "grid (27 x 8 epochs)",
              trials.front().metrics.map_at_k,
              static_cast<long long>(grid_steps), "1.00x");
  std::printf("%-22s %-10.4f %-14lld %.2fx\n", "successive halving",
              outcome.leaderboard.front().metrics.map_at_k,
              static_cast<long long>(outcome.total_sgd_steps),
              static_cast<double>(outcome.total_sgd_steps) / grid_steps);

  std::printf("\nwinner configs:  grid F=%d lr=%.3g lv=%.3g | tuner F=%d "
              "lr=%.3g lv=%.3g (rungs=%d)\n",
              trials.front().params.num_factors,
              trials.front().params.learning_rate,
              trials.front().params.lambda_v,
              outcome.leaderboard.front().params.num_factors,
              outcome.leaderboard.front().params.learning_rate,
              outcome.leaderboard.front().params.lambda_v, outcome.rungs);
  std::printf("paper: a Vizier-style trial manager improves on plain grid "
              "search (§III-C1); Sigmund pays the grid only once, then "
              "amortizes via incremental top-K runs\n");
  return 0;
}
