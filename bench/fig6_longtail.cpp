// FIG6: Cross-retailer plot of an item's popularity vs. its CTR when shown
// as a recommendation — Sigmund vs. a simple co-occurrence baseline
// (Fig. 6, §V of the paper).
//
// Expected shape (paper): "Sigmund's recommendations see significantly
// higher engagement for less popular items (the long tail) while they have
// virtually no effect on highly popular items."
//
// Clicks are simulated from the hidden ground-truth preference model that
// also generated the training data (see DESIGN.md §1).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/candidate_selector.h"
#include "core/cooccurrence.h"
#include "core/hybrid.h"
#include "core/inference.h"
#include "data/ctr_simulator.h"

using namespace sigmund;

namespace {

constexpr int kTopK = 10;
constexpr int kRounds = 6;  // impressions per user context per system
constexpr int kBuckets = 7;

// Popularity bucket by log2 of training view count.
int Bucket(int64_t views) {
  int bucket = 0;
  while (views > 0 && bucket < kBuckets - 1) {
    views >>= 1;
    ++bucket;
  }
  return bucket;
}

struct CtrAccumulator {
  std::vector<int64_t> impressions = std::vector<int64_t>(kBuckets, 0);
  std::vector<int64_t> clicks = std::vector<int64_t>(kBuckets, 0);

  void Record(const std::vector<data::ItemIndex>& list, int clicked_pos,
              const std::vector<int64_t>& popularity) {
    for (size_t p = 0; p < list.size(); ++p) {
      int bucket = Bucket(popularity[list[p]]);
      ++impressions[bucket];
      if (static_cast<int>(p) == clicked_pos) ++clicks[bucket];
    }
  }

  double Ctr(int bucket) const {
    return impressions[bucket] > 0
               ? static_cast<double>(clicks[bucket]) / impressions[bucket]
               : 0.0;
  }
};

}  // namespace

int main() {
  // Sparse interactions relative to catalog size: the regime where the
  // paper deploys factorization for the tail.
  data::RetailerWorld world = bench::MakeWorld(1234, 1200, 2.5);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("FIG6 long-tail CTR | items=%d users=%d interactions=%lld\n",
              world.data.num_items(), world.data.num_users(),
              static_cast<long long>(world.data.TotalInteractions()));

  core::TrainOutput trained =
      bench::Train(world, split, bench::DefaultParams(16, 12));
  std::printf("sigmund model: %s\n", trained.metrics.ToString().c_str());

  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      split.train, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      split.train, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  core::InferenceEngine engine(&trained.model, &selector);
  core::HybridRecommender hybrid(&cooccurrence, &engine);
  core::HybridRecommender::Options hybrid_options;
  hybrid_options.top_k = kTopK;
  hybrid_options.min_pair_count = 3;

  std::vector<int64_t> popularity(world.data.num_items(), 0);
  for (const auto& history : split.train) {
    for (const data::Interaction& event : history) ++popularity[event.item];
  }
  std::vector<data::ItemIndex> global_top = cooccurrence.ItemsByPopularity();

  // Baseline: pure co-occurrence; popularity fallback when the co-view
  // list runs short (the standard production fallback).
  auto baseline_list = [&](data::ItemIndex query) {
    std::vector<data::ItemIndex> list;
    for (const auto& neighbor : cooccurrence.CoViewed(query)) {
      list.push_back(neighbor.item);
      if (static_cast<int>(list.size()) >= kTopK) break;
    }
    for (data::ItemIndex item : global_top) {
      if (static_cast<int>(list.size()) >= kTopK) break;
      if (item != query &&
          std::find(list.begin(), list.end(), item) == list.end()) {
        list.push_back(item);
      }
    }
    return list;
  };
  auto sigmund_list = [&](data::ItemIndex query) {
    std::vector<data::ItemIndex> list;
    for (const core::ScoredItem& item :
         hybrid.ViewBased(query, hybrid_options)) {
      list.push_back(item.item);
    }
    return list;
  };

  data::CtrSimulator simulator(&world.truth, {});
  Rng rng(99);
  CtrAccumulator sigmund_ctr, baseline_ctr;
  for (data::UserIndex u = 0; u < world.data.num_users(); ++u) {
    if (split.train[u].size() < 2) continue;
    data::ItemIndex query = split.train[u].back().item;
    std::vector<data::ItemIndex> sigmund = sigmund_list(query);
    std::vector<data::ItemIndex> baseline = baseline_list(query);
    for (int round = 0; round < kRounds; ++round) {
      sigmund_ctr.Record(sigmund,
                         simulator.SimulateImpression(u, sigmund, &rng),
                         popularity);
      baseline_ctr.Record(baseline,
                          simulator.SimulateImpression(u, baseline, &rng),
                          popularity);
    }
  }

  std::printf(
      "\n%-22s %12s %9s %12s %9s %8s\n", "popularity (views)",
      "sig_impr", "sig_ctr", "base_impr", "base_ctr", "uplift");
  for (int b = 0; b < kBuckets; ++b) {
    int64_t lo = b == 0 ? 0 : (1LL << (b - 1));
    int64_t hi = b == kBuckets - 1 ? -1 : (1LL << b) - 1;
    char range[32];
    if (hi < 0) {
      std::snprintf(range, sizeof(range), ">=%lld",
                    static_cast<long long>(lo));
    } else {
      std::snprintf(range, sizeof(range), "%lld-%lld",
                    static_cast<long long>(lo), static_cast<long long>(hi));
    }
    double s = sigmund_ctr.Ctr(b);
    double base = baseline_ctr.Ctr(b);
    std::printf("%-22s %12lld %9.4f %12lld %9.4f %8s\n", range,
                static_cast<long long>(sigmund_ctr.impressions[b]), s,
                static_cast<long long>(baseline_ctr.impressions[b]), base,
                base > 0 ? StrFormat("%.2fx", s / base).c_str() : "n/a");
  }
  std::printf(
      "\nexpected shape (Fig. 6): large uplift in low-popularity buckets, "
      "~1x for the most popular items\n");
  return 0;
}
