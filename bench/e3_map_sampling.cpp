// E3: Sampled MAP estimation — "we sample 10% of the items and only
// estimate the MAP. We verified that this approximation does not hurt our
// model selection criterion." (§III-C2 of the paper.)
//
// Trains a small grid, evaluates each model with exact MAP and with
// sampled MAP (10% / 30%), and reports how well the sampled metric
// preserves the model *ranking* (Kendall tau, plus top-1 agreement) —
// ranking is all that model selection consumes.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace sigmund;

namespace {

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  int concordant = 0, discordant = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      double x = (a[i] - a[j]) * (b[i] - b[j]);
      if (x > 0) ++concordant;
      if (x < 0) ++discordant;
    }
  }
  int total = concordant + discordant;
  return total > 0 ? static_cast<double>(concordant - discordant) / total
                   : 1.0;
}

size_t ArgMax(const std::vector<double>& v) {
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace

int main() {
  // A larger retailer, where the paper actually uses sampling.
  data::RetailerWorld world = bench::MakeWorld(21, 1500, 3.0);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  core::TrainingData training_data(&split.train, world.data.num_items());
  std::printf("E3 sampled MAP | items=%d holdout=%zu\n",
              world.data.num_items(), split.holdout.size());

  // Models of clearly different quality.
  core::GridSpec spec;
  spec.factors = {4, 16, 48};
  spec.learning_rates = {0.3, 0.05};
  spec.lambdas_v = {0.3, 0.01};
  spec.lambdas_vc = {0.01};
  spec.sweep_taxonomy = false;
  spec.num_epochs = 6;
  std::vector<core::HyperParams> grid =
      core::BuildGrid(spec, world.data.catalog, 1);

  std::vector<core::BprModel> models;
  std::vector<core::TrialResult> trials =
      core::RunGridSearch(world.data, split, grid, 1, 1.0, &models);

  std::vector<double> exact, sampled10, sampled30;
  std::printf("\n%-4s %-10s %-10s %-10s %-8s\n", "m", "exact", "map(10%)",
              "map(30%)", "F/lr");
  for (size_t m = 0; m < models.size(); ++m) {
    core::Evaluator::Options e;  // exact
    core::Evaluator::Options s10;
    s10.item_sample_fraction = 0.10;
    core::Evaluator::Options s30;
    s30.item_sample_fraction = 0.30;
    double map_exact = trials[m].metrics.map_at_k;
    double map10 = core::Evaluator::Evaluate(models[m], training_data,
                                             split.holdout, s10)
                       .map_at_k;
    double map30 = core::Evaluator::Evaluate(models[m], training_data,
                                             split.holdout, s30)
                       .map_at_k;
    exact.push_back(map_exact);
    sampled10.push_back(map10);
    sampled30.push_back(map30);
    std::printf("%-4zu %-10.4f %-10.4f %-10.4f %d/%.2g\n", m, map_exact,
                map10, map30, trials[m].params.num_factors,
                trials[m].params.learning_rate);
  }

  std::printf("\nranking agreement with exact MAP:\n");
  std::printf("  10%% sample: kendall-tau=%.3f top-1 agrees=%s\n",
              KendallTau(exact, sampled10),
              ArgMax(exact) == ArgMax(sampled10) ? "yes" : "no");
  std::printf("  30%% sample: kendall-tau=%.3f top-1 agrees=%s\n",
              KendallTau(exact, sampled30),
              ArgMax(exact) == ArgMax(sampled30) ? "yes" : "no");
  std::printf("paper: the 10%% approximation does not hurt model selection "
              "(§III-C2)\n");
  return 0;
}
