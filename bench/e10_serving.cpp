// E10: Lightweight serving (§II-A, §V of the paper) — all computation
// happens offline; serving is an in-memory lookup of materialized lists,
// batch-updated per retailer. Measures lookup latency, context-serving
// latency, and batch-load throughput.
//
// google-benchmark binary.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/inference.h"
#include "serving/store.h"
#include "serving/tiered_store.h"
#include "sfs/mem_filesystem.h"

using namespace sigmund;

namespace {

constexpr int kItems = 5000;
constexpr int kRetailers = 50;

std::vector<core::ItemRecommendations> MakeRetailerRecs(int items,
                                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<core::ItemRecommendations> recs(items);
  for (int i = 0; i < items; ++i) {
    recs[i].query = i;
    for (int k = 0; k < 10; ++k) {
      recs[i].view_based.push_back(
          {static_cast<data::ItemIndex>(rng.Uniform(items)),
           rng.UniformDouble()});
      recs[i].purchase_based.push_back(
          {static_cast<data::ItemIndex>(rng.Uniform(items)),
           rng.UniformDouble()});
    }
  }
  return recs;
}

serving::RecommendationStore& LoadedStore() {
  static serving::RecommendationStore* store = [] {
    auto* s = new serving::RecommendationStore;
    for (data::RetailerId r = 0; r < kRetailers; ++r) {
      s->LoadRetailer(r, MakeRetailerRecs(kItems, r));
    }
    return s;
  }();
  return *store;
}

void BM_ServingLookup(benchmark::State& state) {
  serving::RecommendationStore& store = LoadedStore();
  Rng rng(1);
  for (auto _ : state) {
    data::RetailerId retailer =
        static_cast<data::RetailerId>(rng.Uniform(kRetailers));
    data::ItemIndex item = static_cast<data::ItemIndex>(rng.Uniform(kItems));
    auto recs =
        store.Lookup(retailer, item, serving::RecommendationKind::kViewBased);
    benchmark::DoNotOptimize(recs);
  }
}
BENCHMARK(BM_ServingLookup);

void BM_ServeContext(benchmark::State& state) {
  serving::RecommendationStore& store = LoadedStore();
  Rng rng(2);
  core::Context context = {{3, data::ActionType::kView},
                           {7, data::ActionType::kSearch},
                           {11, data::ActionType::kConversion}};
  for (auto _ : state) {
    data::RetailerId retailer =
        static_cast<data::RetailerId>(rng.Uniform(kRetailers));
    context.back().item = static_cast<data::ItemIndex>(rng.Uniform(kItems));
    auto recs = store.ServeContext(retailer, context);
    benchmark::DoNotOptimize(recs);
  }
}
BENCHMARK(BM_ServeContext);

void BM_BatchLoadRetailer(benchmark::State& state) {
  serving::RecommendationStore store;
  const int items = static_cast<int>(state.range(0));
  auto recs = MakeRetailerRecs(items, 9);
  for (auto _ : state) {
    auto copy = recs;
    store.LoadRetailer(0, std::move(copy));
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(items) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchLoadRetailer)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

// Two-tier store (§II-A "main-memory and flash"): lookup latency under a
// Zipf-ish access pattern, by pinned hot fraction (arg = hot percent).
// The counters show how much traffic the memory tier absorbs.
void BM_TieredLookupZipf(benchmark::State& state) {
  static sfs::MemFileSystem* fs = new sfs::MemFileSystem;
  serving::TieredStore::Options options;
  options.hot_fraction = static_cast<double>(state.range(0)) / 100.0;
  options.cache_capacity = 256;
  serving::TieredStore store(fs, options);
  auto recs = MakeRetailerRecs(kItems, 3);
  // Popularity: item i has weight ~ 1/(i+1).
  std::vector<int64_t> popularity(kItems);
  for (int i = 0; i < kItems; ++i) popularity[i] = kItems / (i + 1);
  benchmark::DoNotOptimize(store.LoadRetailer(0, recs, popularity));

  Rng rng(5);
  for (auto _ : state) {
    // Zipf-ish draw: squash a uniform draw toward small indices.
    double u = rng.UniformDouble();
    data::ItemIndex item =
        static_cast<data::ItemIndex>(u * u * u * (kItems - 1));
    auto result =
        store.Lookup(0, item, serving::RecommendationKind::kViewBased);
    benchmark::DoNotOptimize(result);
  }
  state.counters["flash_frac"] = store.stats().FlashReadFraction();
  state.counters["mem_hits"] =
      static_cast<double>(store.stats().memory_hits);
}
BENCHMARK(BM_TieredLookupZipf)->Arg(1)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
