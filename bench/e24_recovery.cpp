// E24: Crash recovery (DESIGN.md §13). Three questions about the durable
// run ledger that lets the daily coordinator die anywhere mid-day and
// resume:
//
//  1. RTO — after a late-day crash (inference committed, rollout not yet
//     run), how long does ledger replay + finishing the day take versus
//     re-running the whole day cold from the day-start state? Gated as a
//     speedup ratio with a generous band (two wall-clocks on the same
//     machine, so the ratio is far more stable than either term).
//  2. Skip fraction — what share of the day's replayable stage units does
//     the resumed run skip? Pure function of seeds; gated tight.
//  3. Ledger cost — wall-clock of the day's ledger appends as a fraction
//     of the day itself. SIGCHECKed under 1% in-binary; reported (never
//     banded: CI hardware jitter on a microsecond-scale numerator).
//
// The recovered day must also be byte-identical (control-state snapshots
// included, journal excluded) to the uninterrupted run — the same
// invariant tests/recovery_chaos_test.cc sweeps across every kill-point,
// SIGCHECKed here on the two points this bench exercises. Results land in
// BENCH_recovery.json; bench/baselines/recovery_quick.json gates the
// speedup and skip fraction in CI via check_trajectory.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/crash_point.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/world_generator.h"
#include "pipeline/ledger.h"
#include "pipeline/service.h"
#include "sfs/mem_filesystem.h"

using namespace sigmund;

namespace {

using FileDump = std::map<std::string, std::string>;

FileDump DumpFiles(const sfs::MemFileSystem& fs,
                   const std::string& exclude_prefix) {
  FileDump dump;
  StatusOr<std::vector<std::string>> paths = fs.List("");
  SIGCHECK(paths.ok());
  for (const std::string& path : *paths) {
    if (path.compare(0, exclude_prefix.size(), exclude_prefix) == 0) continue;
    StatusOr<std::string> bytes = fs.Read(path);
    SIGCHECK(bytes.ok());
    dump[path] = *std::move(bytes);
  }
  return dump;
}

void RestoreFiles(const FileDump& dump, sfs::MemFileSystem* fs) {
  for (const auto& [path, bytes] : dump) {
    SIGCHECK(fs->Write(path, bytes).ok());
  }
}

struct BenchWorld {
  data::WorldGenerator generator;
  std::vector<data::RetailerWorld> worlds;

  explicit BenchWorld(const std::vector<int>& sizes)
      : generator([] {
          data::WorldConfig config;
          config.seed = 29;
          return config;
        }()) {
    for (size_t i = 0; i < sizes.size(); ++i) {
      worlds.push_back(generator.GenerateRetailer(
          static_cast<data::RetailerId>(i), sizes[i]));
    }
  }

  void Advance(int day) {
    for (data::RetailerWorld& world : worlds) {
      data::AdvanceOneDay(generator, &world, /*new_items=*/2,
                          /*seed=*/500 + day);
    }
  }
};

pipeline::SigmundService::Options MakeOptions(BenchWorld* bench, Clock* clock,
                                              CrashInjector* crash) {
  pipeline::SigmundService::Options options;
  options.sweep.grid.factors = {4, 8};
  options.sweep.grid.lambdas_v = {0.1, 0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.sweep_taxonomy = false;
  options.sweep.grid.sweep_brand = false;
  options.sweep.grid.num_epochs = 3;
  options.sweep.incremental_top_k = 2;
  options.training.num_map_tasks = 4;
  options.training.max_parallel_tasks = 2;
  options.training.checkpoint_interval_seconds = 0.0;
  options.inference.inference.top_k = 5;
  options.dataqual.enabled = true;
  options.retrieval.enabled = true;
  options.retrieval.ann.num_lists = 8;
  options.retrieval.reader.top_k = 5;
  options.retrieval.reader.nprobe = 4;
  options.canary.enabled = true;
  options.canary.canary_fraction = 0.5;
  options.canary.seed = 11;
  options.canary.max_impressions = 1200;
  options.canary.oracle = [bench](data::RetailerId id) {
    return &bench->worlds[id].truth;
  };
  options.ledger.enabled = true;
  options.clock = clock;
  options.crash = crash;
  return options;
}

std::unique_ptr<pipeline::SigmundService> Boot(sfs::SharedFileSystem* fs,
                                               BenchWorld* bench, Clock* clock,
                                               CrashInjector* crash) {
  auto service = std::make_unique<pipeline::SigmundService>(
      fs, MakeOptions(bench, clock, crash));
  StatusOr<pipeline::SigmundService::RecoveryReport> recovered =
      service->RecoverDay();
  SIGCHECK(recovered.ok());
  for (data::RetailerWorld& world : bench->worlds) {
    service->UpsertRetailer(&world.data);
  }
  return service;
}

// Crash the measured day at `crash_point`, then boot a fresh service and
// let it finish the day. Returns the resumed run's wall micros, report,
// and the final file bytes.
struct CrashRunResult {
  double recovery_wall_micros = 0.0;
  pipeline::DailyReport report;
  FileDump files;
};

CrashRunResult RunCrashAndRecover(const FileDump& day_start, BenchWorld* bench,
                                  Clock* clock, const std::string& crash_point,
                                  const std::string& ledger_prefix) {
  sfs::MemFileSystem fs;
  RestoreFiles(day_start, &fs);
  CrashInjector injector;
  injector.ArmAt(crash_point);
  std::unique_ptr<pipeline::SigmundService> service =
      Boot(&fs, bench, clock, &injector);
  bool crashed = false;
  try {
    StatusOr<pipeline::DailyReport> report = service->RunDaily();
    SIGCHECK(report.ok());
  } catch (const CrashException&) {
    crashed = true;
  }
  SIGCHECK(crashed);  // the armed point must exist in the day

  CrashRunResult result;
  RealClock* wall = RealClock::Get();
  const int64_t t0 = wall->NowMicros();
  service = Boot(&fs, bench, clock, nullptr);
  StatusOr<pipeline::DailyReport> resumed = service->RunDaily();
  result.recovery_wall_micros =
      static_cast<double>(wall->NowMicros() - t0);
  SIGCHECK(resumed.ok());
  result.report = *std::move(resumed);
  result.files = DumpFiles(fs, ledger_prefix);
  return result;
}

void CheckSameFiles(const FileDump& expected, const FileDump& actual,
                    const char* label) {
  for (const auto& [path, bytes] : expected) {
    auto it = actual.find(path);
    if (it == actual.end() || it->second != bytes) {
      std::fprintf(stderr, "e24_recovery: %s: divergent file %s\n", label,
                   path.c_str());
      SIGCHECK(false);
    }
  }
  SIGCHECK(expected.size() == actual.size());
}

// Wall micros for `count` appends of representative control entries on a
// fresh in-memory ledger (same rewrite-the-day-file discipline the
// service pays).
double MeasureAppendWall(int count) {
  sfs::MemFileSystem fs;
  RetryPolicy retry;
  pipeline::RunLedger ledger(&fs, pipeline::RunLedger::Options(), retry,
                             /*io=*/nullptr, /*metrics=*/nullptr);
  ledger.StartDay(0);
  RealClock* wall = RealClock::Get();
  const int64_t t0 = wall->NowMicros();
  for (int i = 0; i < count; ++i) {
    pipeline::RunLedger::Entry entry;
    entry.op = pipeline::RunLedger::Op::kBatchStageIntent;
    entry.day = 0;
    entry.retailer = i % 3;
    entry.version = i;
    entry.tag = "promoted";
    entry.payload = StrFormat("recommendations/r%d.v%06d", i % 3, i);
    SIGCHECK(ledger.Append(entry).ok());
  }
  return static_cast<double>(wall->NowMicros() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::vector<int> sizes =
      quick ? std::vector<int>{60, 90} : std::vector<int>{120, 160, 200};

  std::printf("e24_recovery: ledger replay RTO / skip fraction / append "
              "cost (%s run)\n",
              quick ? "quick" : "full");

  BenchWorld bench(sizes);
  SimClock clock;
  const std::string ledger_prefix =
      pipeline::RunLedger::Options().dir + "/";

  // Day 0 establishes models, versions, baselines, and the day-boundary
  // snapshot; the measured day is day 1.
  sfs::MemFileSystem fs;
  std::unique_ptr<pipeline::SigmundService> service =
      Boot(&fs, &bench, &clock, nullptr);
  StatusOr<pipeline::DailyReport> day0 = service->RunDaily();
  SIGCHECK(day0.ok());
  const FileDump day_start = DumpFiles(fs, /*exclude_prefix=*/"\x01");
  bench.Advance(1);

  // Uninterrupted day 1: the reference bytes and the cold-run numerator.
  RealClock* wall = RealClock::Get();
  const int64_t clean_t0 = wall->NowMicros();
  StatusOr<pipeline::DailyReport> clean = service->RunDaily();
  const double clean_wall = static_cast<double>(wall->NowMicros() - clean_t0);
  SIGCHECK(clean.ok());
  const FileDump clean_files = DumpFiles(fs, ledger_prefix);
  const int64_t appends_per_day = clean->ledger_appends;

  // Cold re-run: same day-start state, fresh process, no prior attempt —
  // boot cost included, exactly what "no ledger resume" would pay.
  double cold_wall = 0.0;
  {
    sfs::MemFileSystem cold_fs;
    RestoreFiles(day_start, &cold_fs);
    const int64_t t0 = wall->NowMicros();
    std::unique_ptr<pipeline::SigmundService> cold_service =
        Boot(&cold_fs, &bench, &clock, nullptr);
    StatusOr<pipeline::DailyReport> cold = cold_service->RunDaily();
    cold_wall = static_cast<double>(wall->NowMicros() - t0);
    SIGCHECK(cold.ok());
    CheckSameFiles(clean_files, DumpFiles(cold_fs, ledger_prefix),
                   "cold re-run");
  }

  // Late-day crash: training, selection and inference committed; the
  // rollout and day boundary still ahead. The resumed run must skip the
  // committed stages and converge to the reference bytes.
  const CrashRunResult late = RunCrashAndRecover(
      day_start, &bench, &clock, "inference.done", ledger_prefix);
  CheckSameFiles(clean_files, late.files, "late-crash recovery");
  SIGCHECK(late.report.recovered_day);

  // Crash just before the day-boundary snapshot commits: everything
  // replayable was committed, so this recovery's skip count is the
  // day's total replayable units — the skip-fraction denominator.
  const CrashRunResult full = RunCrashAndRecover(
      day_start, &bench, &clock, "day.snapshot_tmp", ledger_prefix);
  CheckSameFiles(clean_files, full.files, "day-boundary recovery");
  const int64_t max_units = full.report.replay_units_skipped;
  SIGCHECK(max_units > 0);

  const double skip_fraction =
      static_cast<double>(late.report.replay_units_skipped) /
      static_cast<double>(max_units);
  const double speedup = cold_wall / late.recovery_wall_micros;

  // Ledger cost: the measured day's append count at measured per-append
  // cost, as a fraction of the measured day.
  const double append_wall =
      MeasureAppendWall(static_cast<int>(appends_per_day));
  const double append_overhead = append_wall / clean_wall;

  std::printf("day wall: clean=%.0fus cold=%.0fus recovery=%.0fus "
              "(speedup %.2fx)\n",
              clean_wall, cold_wall, late.recovery_wall_micros, speedup);
  std::printf("stage units skipped on resume: %lld/%lld (%.3f)\n",
              static_cast<long long>(late.report.replay_units_skipped),
              static_cast<long long>(max_units), skip_fraction);
  std::printf("ledger: %lld appends in %.0fus — %.4f%% of day wall\n",
              static_cast<long long>(appends_per_day), append_wall,
              append_overhead * 100.0);

  // Acceptance bars enforced in-binary: the resumed day re-ran strictly
  // less than everything, and the journal costs under 1% of the day.
  SIGCHECK(skip_fraction > 0.0 && skip_fraction <= 1.0);
  SIGCHECK(append_overhead < 0.01);

  std::string json = "{\n  \"bench\": \"e24_recovery\",\n";
  json += StrFormat("  \"quick\": %s,\n", quick ? "true" : "false");
  json += StrFormat(
      "  \"recovery\": {\"byte_identical\": 1, \"speedup_vs_cold\": %.4f, "
      "\"skip_fraction\": %.6f, \"units_skipped\": %lld, "
      "\"units_total\": %lld},\n",
      speedup, skip_fraction,
      static_cast<long long>(late.report.replay_units_skipped),
      static_cast<long long>(max_units));
  json += StrFormat(
      "  \"wall_micros_informational\": {\"clean_day\": %.0f, "
      "\"cold_rerun\": %.0f, \"recovery\": %.0f},\n",
      clean_wall, cold_wall, late.recovery_wall_micros);
  json += StrFormat(
      "  \"ledger\": {\"appends_per_day\": %lld, \"append_wall_micros\": "
      "%.0f, \"append_overhead_fraction\": %.6f}\n}\n",
      static_cast<long long>(appends_per_day), append_wall, append_overhead);

  std::FILE* out = std::fopen("BENCH_recovery.json", "w");
  SIGCHECK(out != nullptr);
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote BENCH_recovery.json\n");
  return 0;
}
