// E22: Online embedding retrieval (DESIGN.md §11). Three questions about
// the ANN serving path, answered head-to-head against the exact scan and
// the materialized store lookup:
//
//  1. Quality — recall@10 of the IVF index vs the exact top-10, across
//     catalog sizes. Acceptance: >= 0.95 at the served nprobe.
//  2. Latency — p50/p99 request latency of each plane. The gated numbers
//     come from a deterministic cost model over the per-query work the
//     index actually did (lists probed, candidates scanned), so same-seed
//     reruns are byte-identical; measured wall-clock is reported alongside
//     for information but never gated (CI hardware jitter).
//  3. Safety — the CanaryController must promote a healthy index evaluated
//     against the materialized plane on a seeded world, and auto-roll-back
//     a degraded one (factors truncated to their first dimension: a
//     well-formed, CRC-clean artifact that retrieves garbage — exactly the
//     failure only live signal catches).
//
// Results land in BENCH_retrieval.json; bench/baselines/retrieval_quick.json
// gates recall, the ANN/materialized p99 ratio, scan fraction, and both
// canary verdicts in CI.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/world_generator.h"
#include "pipeline/canary.h"
#include "retrieval/artifact.h"
#include "retrieval/index.h"
#include "retrieval/reader.h"
#include "serving/store.h"

using namespace sigmund;

namespace {

constexpr int kDim = 16;
constexpr int kTopK = 10;
constexpr int kQueries = 200;

// --- Deterministic request-latency cost model -------------------------------
// Fixed constants, documented rather than measured, so the gated p50/p99
// are pure functions of the per-query work counters. Units: microseconds.
// Both planes share the request overhead (parse, funnel, admission,
// metrics); the materialized plane then pays one store lookup + list copy,
// the retrieval planes pay query-embedding + centroid ranking + a per-
// candidate dot product (~30ns for a 16-dim f32 row, memory-bound).
constexpr double kBaseMicros = 120.0;
constexpr double kStoreLookupMicros = 60.0;
constexpr double kAnnFixedMicros = 25.0;
constexpr double kPerCentroidMicros = 0.02;
constexpr double kPerCandidateMicros = 0.03;

double SimAnnMicros(const retrieval::SearchStats& stats, int num_lists) {
  return kBaseMicros + kAnnFixedMicros + kPerCentroidMicros * num_lists +
         kPerCandidateMicros * static_cast<double>(stats.candidates_scanned);
}

double Percentile(std::vector<double> values, double p) {
  SIGCHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

// Clustered synthetic catalog: `n` item vectors scattered around 64 cluster
// centers — the structure (categories, brands) that makes IVF coarse
// quantization work on real factor matrices.
struct Catalog {
  std::vector<float> items;    // n x kDim
  std::vector<float> queries;  // kQueries x kDim
};

Catalog MakeCatalog(uint64_t seed, int n) {
  Rng rng(seed);
  const int kClusters = 64;
  std::vector<float> centers(kClusters * kDim);
  for (float& v : centers) v = static_cast<float>(rng.Gaussian());
  Catalog catalog;
  catalog.items.resize(static_cast<size_t>(n) * kDim);
  for (int i = 0; i < n; ++i) {
    const float* c = centers.data() + (rng.Uniform(kClusters)) * kDim;
    for (int k = 0; k < kDim; ++k) {
      catalog.items[static_cast<size_t>(i) * kDim + k] =
          c[k] + static_cast<float>(rng.Gaussian(0.0, 0.35));
    }
  }
  // Queries look like users: near a cluster, with more spread.
  catalog.queries.resize(static_cast<size_t>(kQueries) * kDim);
  for (int q = 0; q < kQueries; ++q) {
    const float* c = centers.data() + (rng.Uniform(kClusters)) * kDim;
    for (int k = 0; k < kDim; ++k) {
      catalog.queries[static_cast<size_t>(q) * kDim + k] =
          c[k] + static_cast<float>(rng.Gaussian(0.0, 0.6));
    }
  }
  return catalog;
}

struct SizeResult {
  int n = 0;
  int num_lists = 0;
  int nprobe = 0;
  double recall = 0.0;
  double scan_fraction = 0.0;
  double sim_p50_ann = 0.0, sim_p99_ann = 0.0;
  double sim_p50_exact = 0.0, sim_p99_exact = 0.0;
  double sim_p50_store = 0.0, sim_p99_store = 0.0;
  double wall_p50_ann = 0.0, wall_p99_ann = 0.0;
  double wall_p50_exact = 0.0, wall_p99_exact = 0.0;
  double wall_p50_store = 0.0, wall_p99_store = 0.0;
  double p99_ratio = 0.0;  // sim ANN p99 / sim materialized p99
};

SizeResult RunSize(int n) {
  Catalog catalog = MakeCatalog(/*seed=*/1000 + n, n);

  SizeResult result;
  result.n = n;
  result.num_lists = std::max(
      16, static_cast<int>(std::lround(std::sqrt(static_cast<double>(n)))));
  result.nprobe = std::max(4, result.num_lists / 4);

  retrieval::ExactIndex exact(catalog.items, kDim);
  retrieval::AnnIndex::Options options;
  options.num_lists = result.num_lists;
  retrieval::AnnIndex ann =
      retrieval::AnnIndex::Build(catalog.items, kDim, options);

  // Materialized stand-in: the per-item top-K lists are precomputed
  // offline, so lookup cost is independent of their content — load
  // arbitrary lists and measure the lookup itself.
  serving::RecommendationStore store;
  {
    std::vector<core::ItemRecommendations> batch(n);
    for (int i = 0; i < n; ++i) {
      batch[i].query = i;
      for (int j = 1; j <= kTopK; ++j) {
        batch[i].view_based.push_back({(i + j) % n, 1.0 / j});
      }
    }
    store.LoadRetailer(0, std::move(batch));
  }

  std::vector<double> sim_ann, sim_exact, sim_store;
  std::vector<double> wall_ann, wall_exact, wall_store;
  double hits = 0.0;
  int64_t scanned_total = 0;
  RealClock* wall = RealClock::Get();
  for (int q = 0; q < kQueries; ++q) {
    const float* query = catalog.queries.data() + static_cast<size_t>(q) * kDim;

    int64_t t0 = wall->NowMicros();
    std::vector<core::ScoredItem> truth =
        exact.Search(query, kTopK, 0, nullptr);
    int64_t t1 = wall->NowMicros();
    retrieval::SearchStats stats;
    std::vector<core::ScoredItem> approx =
        ann.Search(query, kTopK, result.nprobe, &stats);
    int64_t t2 = wall->NowMicros();
    StatusOr<std::vector<core::ScoredItem>> materialized = store.ServeContext(
        0, {{static_cast<data::ItemIndex>(q % n), data::ActionType::kView}});
    int64_t t3 = wall->NowMicros();
    SIGCHECK(materialized.ok());

    wall_exact.push_back(static_cast<double>(t1 - t0));
    wall_ann.push_back(static_cast<double>(t2 - t1));
    wall_store.push_back(static_cast<double>(t3 - t2));
    sim_exact.push_back(kBaseMicros + kAnnFixedMicros +
                        kPerCandidateMicros * static_cast<double>(n));
    sim_ann.push_back(SimAnnMicros(stats, result.num_lists));
    sim_store.push_back(kBaseMicros + kStoreLookupMicros);
    scanned_total += stats.candidates_scanned;

    std::vector<bool> found(truth.size(), false);
    for (const core::ScoredItem& item : approx) {
      for (size_t t = 0; t < truth.size(); ++t) {
        if (!found[t] && truth[t].item == item.item) {
          found[t] = true;
          hits += 1.0;
          break;
        }
      }
    }
  }

  result.recall = hits / (kQueries * kTopK);
  result.scan_fraction =
      static_cast<double>(scanned_total) / (static_cast<double>(kQueries) * n);
  result.sim_p50_ann = Percentile(sim_ann, 0.50);
  result.sim_p99_ann = Percentile(sim_ann, 0.99);
  result.sim_p50_exact = Percentile(sim_exact, 0.50);
  result.sim_p99_exact = Percentile(sim_exact, 0.99);
  result.sim_p50_store = Percentile(sim_store, 0.50);
  result.sim_p99_store = Percentile(sim_store, 0.99);
  result.wall_p50_ann = Percentile(wall_ann, 0.50);
  result.wall_p99_ann = Percentile(wall_ann, 0.99);
  result.wall_p50_exact = Percentile(wall_exact, 0.50);
  result.wall_p99_exact = Percentile(wall_exact, 0.99);
  result.wall_p50_store = Percentile(wall_store, 0.50);
  result.wall_p99_store = Percentile(wall_store, 0.99);
  result.p99_ratio = result.sim_p99_ann / result.sim_p99_store;

  // The acceptance bar, enforced in the binary as well as the baseline:
  // served-quality recall and a p99 within 2x of the materialized path.
  SIGCHECK(result.recall >= 0.95);
  SIGCHECK(result.p99_ratio <= 2.0);
  return result;
}

// --- Canary gate on a seeded world ------------------------------------------

struct CanaryResult {
  bool healthy_promoted = false;
  bool degraded_rolled_back = false;
  double healthy_ctr_ratio = 0.0;
  double degraded_ctr_ratio = 0.0;
};

CanaryResult RunCanaryScenario(int world_items) {
  data::RetailerWorld world = bench::MakeWorld(/*seed=*/7, world_items);
  const int dim = world.truth.dim;
  const int n = static_cast<int>(world.truth.item_vecs.size());
  std::vector<float> factors;
  factors.reserve(static_cast<size_t>(n) * dim);
  for (const std::vector<float>& row : world.truth.item_vecs) {
    factors.insert(factors.end(), row.begin(), row.end());
  }

  // Materialized plane: exact offline top-K per query item from the same
  // factors the index will serve — the honest baseline arm.
  retrieval::ExactIndex exact(factors, dim);
  serving::RecommendationStore store;
  {
    std::vector<core::ItemRecommendations> batch(n);
    for (int i = 0; i < n; ++i) {
      batch[i].query = i;
      const float* query = factors.data() + static_cast<size_t>(i) * dim;
      for (core::ScoredItem item :
           exact.Search(query, kTopK + 1, 0, nullptr)) {
        if (item.item != i &&
            static_cast<int>(batch[i].view_based.size()) < kTopK) {
          batch[i].view_based.push_back(item);
        }
      }
    }
    store.LoadRetailer(0, std::move(batch));
  }

  // Online plane: the same factors behind the ANN reader. v1 = healthy;
  // v2 = degraded — every factor truncated to its first dimension, the
  // classic torn-export failure (file intact, numbers meaningless).
  retrieval::OnlineRetrievalReader::Options reader_options;
  reader_options.top_k = kTopK;
  reader_options.nprobe = 8;
  retrieval::OnlineRetrievalReader reader(reader_options);
  retrieval::AnnIndex::Options ann_options;
  ann_options.num_lists = 32;
  const int64_t healthy = reader.StageArtifact(
      0, retrieval::BuildArtifactFromFactors(0, factors, factors, dim, 25,
                                             0.85, ann_options));
  std::vector<float> truncated = factors;
  for (size_t i = 0; i < truncated.size(); ++i) {
    if (i % dim != 0) truncated[i] = 0.0f;
  }
  const int64_t degraded = reader.StageArtifact(
      0, retrieval::BuildArtifactFromFactors(0, truncated, truncated, dim, 25,
                                             0.85, ann_options));

  pipeline::CanaryController::Options options;
  options.enabled = true;
  options.canary_fraction = 0.5;
  options.max_impressions = 2400;
  options.seed = 17;
  options.oracle = [&](data::RetailerId) { return &world.truth; };
  options.plane = "retrieval";
  options.serve_hook = [&](data::RetailerId retailer,
                           const core::Context& context, int64_t version) {
    pipeline::CanaryController::CanaryServe serve;
    StatusOr<std::vector<core::ScoredItem>> result =
        version != 0 ? reader.ServeContextAtVersion(retailer, context, version)
                     : store.ServeContext(retailer, context);
    serve.status = result.status();
    if (result.ok()) serve.items = std::move(result).value();
    return serve;
  };
  pipeline::CanaryController controller(options, nullptr);

  CanaryResult result;
  pipeline::CanaryController::Outcome good =
      controller.Evaluate(0, store, healthy, world.data, /*day=*/0);
  result.healthy_promoted =
      good.verdict == pipeline::CanaryController::Verdict::kPromoted;
  result.healthy_ctr_ratio =
      good.ControlCtr() > 0.0 ? good.CanaryCtr() / good.ControlCtr() : 0.0;

  pipeline::CanaryController::Outcome bad =
      controller.Evaluate(0, store, degraded, world.data, /*day=*/0);
  result.degraded_rolled_back =
      bad.verdict == pipeline::CanaryController::Verdict::kRolledBack;
  result.degraded_ctr_ratio =
      bad.ControlCtr() > 0.0 ? bad.CanaryCtr() / bad.ControlCtr() : 0.0;

  SIGCHECK(result.healthy_promoted);
  SIGCHECK(result.degraded_rolled_back);
  return result;
}

// Fingerprint of everything gated: recall, work counters, cost-model
// percentiles, canary verdicts and CTR ratios. Wall-clock excluded.
uint64_t Fingerprint(const std::vector<SizeResult>& sizes,
                     const CanaryResult& canary) {
  uint64_t h = kFnv64OffsetBasis;
  for (const SizeResult& r : sizes) {
    h = Fnv1a64(StrFormat("%d|%d|%d|%.9f|%.9f|%.6f|%.6f|%.6f|%.6f", r.n,
                          r.num_lists, r.nprobe, r.recall, r.scan_fraction,
                          r.sim_p50_ann, r.sim_p99_ann, r.sim_p99_store,
                          r.p99_ratio),
                h);
  }
  h = Fnv1a64(StrFormat("%d|%d|%.9f|%.9f", canary.healthy_promoted ? 1 : 0,
                        canary.degraded_rolled_back ? 1 : 0,
                        canary.healthy_ctr_ratio, canary.degraded_ctr_ratio),
              h);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::vector<int> sizes =
      quick ? std::vector<int>{1000, 4000}
            : std::vector<int>{1000, 4000, 16000, 64000};
  const int world_items = quick ? 400 : 1200;

  auto run_all = [&](std::vector<SizeResult>* size_results,
                     CanaryResult* canary_result) {
    size_results->clear();
    for (int n : sizes) size_results->push_back(RunSize(n));
    *canary_result = RunCanaryScenario(world_items);
  };

  std::printf("e22_retrieval: ANN vs exact vs materialized (%s run)\n",
              quick ? "quick" : "full");
  std::vector<SizeResult> size_results;
  CanaryResult canary;
  run_all(&size_results, &canary);

  std::printf("%-8s %6s %6s | %8s %8s | %10s %10s %10s | %10s\n", "items",
              "lists", "probe", "recall", "scan%", "ann_p99", "exact_p99",
              "store_p99", "p99ratio");
  for (const SizeResult& r : size_results) {
    std::printf(
        "%-8d %6d %6d | %8.4f %7.1f%% | %9.1fus %9.1fus %9.1fus | %10.3f\n",
        r.n, r.num_lists, r.nprobe, r.recall, 100.0 * r.scan_fraction,
        r.sim_p99_ann, r.sim_p99_exact, r.sim_p99_store, r.p99_ratio);
    std::printf("%-8s wall-clock (informational): ann %.0f/%.0fus "
                "exact %.0f/%.0fus store %.0f/%.0fus (p50/p99)\n",
                "", r.wall_p50_ann, r.wall_p99_ann, r.wall_p50_exact,
                r.wall_p99_exact, r.wall_p50_store, r.wall_p99_store);
  }
  std::printf(
      "canary: healthy %s (ctr ratio %.3f), degraded %s (ctr ratio %.3f)\n",
      canary.healthy_promoted ? "promoted" : "NOT PROMOTED",
      canary.healthy_ctr_ratio,
      canary.degraded_rolled_back ? "rolled back" : "NOT ROLLED BACK",
      canary.degraded_ctr_ratio);

  // Same-seed rerun of the whole scenario must be byte-identical on every
  // gated number.
  std::vector<SizeResult> rerun_sizes;
  CanaryResult rerun_canary;
  run_all(&rerun_sizes, &rerun_canary);
  const uint64_t hash = Fingerprint(size_results, canary);
  const uint64_t rerun_hash = Fingerprint(rerun_sizes, rerun_canary);
  SIGCHECK(hash == rerun_hash);
  std::printf("determinism: %016llx == %016llx\n",
              static_cast<unsigned long long>(hash),
              static_cast<unsigned long long>(rerun_hash));

  std::string json = "{\n  \"bench\": \"e22_retrieval\",\n";
  json += StrFormat("  \"quick\": %s,\n", quick ? "true" : "false");
  json += "  \"sizes\": [\n";
  for (size_t i = 0; i < size_results.size(); ++i) {
    const SizeResult& r = size_results[i];
    json += StrFormat(
        "    {\"n\": %d, \"num_lists\": %d, \"nprobe\": %d, "
        "\"recall_at_10\": %.6f, \"scan_fraction\": %.6f,\n"
        "     \"sim_micros\": {\"ann_p50\": %.3f, \"ann_p99\": %.3f, "
        "\"exact_p99\": %.3f, \"materialized_p99\": %.3f, "
        "\"p99_ratio\": %.6f},\n"
        "     \"wall_micros_informational\": {\"ann_p50\": %.1f, "
        "\"ann_p99\": %.1f, \"exact_p99\": %.1f, \"materialized_p99\": "
        "%.1f}}%s\n",
        r.n, r.num_lists, r.nprobe, r.recall, r.scan_fraction, r.sim_p50_ann,
        r.sim_p99_ann, r.sim_p99_exact, r.sim_p99_store, r.p99_ratio,
        r.wall_p50_ann, r.wall_p99_ann, r.wall_p99_exact, r.wall_p99_store,
        i + 1 < size_results.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"recall\": {";
  for (size_t i = 0; i < size_results.size(); ++i) {
    json += StrFormat("%s\"n%d\": %.6f", i > 0 ? ", " : "",
                      size_results[i].n, size_results[i].recall);
  }
  json += "},\n  \"scan\": {";
  for (size_t i = 0; i < size_results.size(); ++i) {
    json += StrFormat("%s\"fraction_n%d\": %.6f", i > 0 ? ", " : "",
                      size_results[i].n, size_results[i].scan_fraction);
  }
  json += "},\n  \"latency\": {";
  for (size_t i = 0; i < size_results.size(); ++i) {
    json += StrFormat("%s\"sim_p99_ratio_n%d\": %.6f", i > 0 ? ", " : "",
                      size_results[i].n, size_results[i].p99_ratio);
  }
  json += StrFormat(
      "},\n  \"canary\": {\"healthy_promoted\": %d, "
      "\"degraded_rolled_back\": %d, \"healthy_ctr_ratio\": %.6f, "
      "\"degraded_ctr_ratio\": %.6f},\n",
      canary.healthy_promoted ? 1 : 0, canary.degraded_rolled_back ? 1 : 0,
      canary.healthy_ctr_ratio, canary.degraded_ctr_ratio);
  json += StrFormat(
      "  \"determinism\": {\"hash\": \"%016llx\", \"rerun_hash\": "
      "\"%016llx\", \"identical\": true}\n}\n",
      static_cast<unsigned long long>(hash),
      static_cast<unsigned long long>(rerun_hash));

  std::FILE* out = std::fopen("BENCH_retrieval.json", "w");
  SIGCHECK(out != nullptr);
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote BENCH_retrieval.json\n");
  return 0;
}
