// E12: Negative-sampling heuristics (§III-B3 of the paper) — Sigmund
// combines taxonomy-aware sampling, co-occurrence exclusion, and
// affinity-based (adaptive) sampling. Trains the same model with each
// sampler and reports hold-out metrics.

#include <cstdio>

#include "bench/bench_util.h"

using namespace sigmund;

int main() {
  data::RetailerWorld world = bench::MakeWorld(81, 600, 4.0);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("E12 negative sampling | items=%d holdout=%zu\n",
              world.data.num_items(), split.holdout.size());

  std::printf("\n%-14s %-9s %-9s %-9s %-12s\n", "sampler", "map@10", "auc",
              "recall@10", "mean_rank");
  for (core::NegativeSamplerKind kind :
       {core::NegativeSamplerKind::kUniform,
        core::NegativeSamplerKind::kPopularity,
        core::NegativeSamplerKind::kTaxonomy,
        core::NegativeSamplerKind::kAdaptive}) {
    core::HyperParams params = bench::DefaultParams(16, 10);
    params.sampler = kind;
    core::TrainOutput output = bench::Train(world, split, params);
    std::printf("%-14s %-9.4f %-9.4f %-9.4f %-12.1f\n",
                core::NegativeSamplerKindName(kind), output.metrics.map_at_k,
                output.metrics.auc, output.metrics.recall_at_k,
                output.metrics.mean_rank);
  }
  std::printf("\n(all samplers are wrapped in co-occurrence exclusion, as "
              "in production; §III-B3)\n");
  return 0;
}
