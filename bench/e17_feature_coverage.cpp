// E17: per-retailer feature selection — "item category and brand features
// is missing for many small retailers. In many retailers, we found the
// brand coverage to be less than 10%, which makes it detrimental to add it
// in as a feature. This means that we also need to do feature-selection
// separately for each retailer." (§III-C of the paper.)
//
// Trains with and without the brand feature on retailers whose brand
// coverage is forced high vs. low, and shows the sign of the effect flips
// — the reason Sigmund gates features on metadata coverage.

#include <cstdio>

#include "bench/bench_util.h"

using namespace sigmund;

namespace {

data::RetailerWorld CoverageWorld(double coverage_lo, double coverage_hi,
                                  uint64_t seed) {
  data::WorldConfig config;
  config.seed = seed;
  config.brand_coverage_lo = coverage_lo;
  config.brand_coverage_hi = coverage_hi;
  config.mean_sessions_per_user = 4.0;
  // Strongly brand-aware shoppers, so the brand feature has real signal
  // to capture when its coverage allows.
  config.brand_sigma = 0.9;
  data::WorldGenerator generator(config);
  return generator.GenerateRetailer(0, 500);
}

double MeanMapOverSeeds(const data::RetailerWorld& world,
                        const data::TrainTestSplit& split, bool use_brand) {
  double total = 0;
  const int kSeeds = 3;
  for (int s = 0; s < kSeeds; ++s) {
    core::HyperParams params = bench::DefaultParams(16, 10);
    params.use_brand = use_brand;
    params.seed = 100 + s;
    total += bench::Train(world, split, params).metrics.map_at_k;
  }
  return total / kSeeds;
}

}  // namespace

int main() {
  std::printf("E17 feature selection by coverage (brand feature)\n");
  std::printf("%-22s %-10s %-12s %-12s %-10s\n", "retailer", "coverage",
              "map(no brand)", "map(brand)", "effect");
  struct Case {
    const char* label;
    double lo, hi;
    uint64_t seed;
  };
  for (const Case& c :
       {Case{"high-coverage", 0.92, 0.98, 131},
        Case{"low-coverage", 0.03, 0.08, 132}}) {
    data::RetailerWorld world = CoverageWorld(c.lo, c.hi, c.seed);
    data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
    double without = MeanMapOverSeeds(world, split, false);
    double with = MeanMapOverSeeds(world, split, true);
    std::printf("%-22s %-10.2f %-13.4f %-12.4f %+.1f%%\n", c.label,
                world.data.catalog.BrandCoverage(), without, with,
                100.0 * (with - without) / without);
  }
  std::printf(
      "\npaper (§III-C): with <10%% coverage the brand feature is "
      "detrimental; Sigmund's grid therefore gates features on coverage "
      "(BuildGrid never tries brand below the threshold)\n");
  return 0;
}
