// Observability overhead micro-benchmarks: the per-event cost of the
// instruments the daily pipeline leans on (counter bumps, histogram
// observations, span start/end) plus the cost of a *suppressed* log
// statement, which must be near-zero since hot loops keep SIGLOG(DEBUG)
// lines in place.

#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace sigmund {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Add(1);
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterAdd)->ThreadRange(1, 8);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("bench_micros");
  double value = 1.0;
  for (auto _ : state) {
    histogram->Observe(value);
    value = value < 1e6 ? value * 1.1 : 1.0;  // walk the buckets
  }
  benchmark::DoNotOptimize(histogram->Count());
}
BENCHMARK(BM_HistogramObserve)->ThreadRange(1, 8);

void BM_RegistryLookup(benchmark::State& state) {
  // The anti-pattern being measured: looking the instrument up by name on
  // every event instead of caching the pointer (a mutex + map walk).
  obs::MetricRegistry registry;
  for (auto _ : state) {
    registry.GetCounter("bench_lookup_total", {{"op", "read"}})->Add(1);
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_SpanStartEnd(benchmark::State& state) {
  SimClock clock;
  obs::Tracer tracer(&clock);
  for (auto _ : state) {
    obs::Span span = tracer.StartSpan("bench");
    benchmark::DoNotOptimize(span.id());
  }
  state.SetLabel("spans recorded: " + std::to_string(tracer.Spans().size()));
}
BENCHMARK(BM_SpanStartEnd);

void BM_SuppressedLog(benchmark::State& state) {
  SetMinLogSeverity(LogSeverity::kError);
  int64_t side_effect = 0;
  for (auto _ : state) {
    SIGLOG(DEBUG) << "dropped " << ++side_effect;
  }
  SetMinLogSeverity(LogSeverity::kInfo);
  // The stream arguments of a suppressed statement are never evaluated.
  if (side_effect != 0) state.SkipWithError("suppressed log was evaluated");
}
BENCHMARK(BM_SuppressedLog);

}  // namespace
}  // namespace sigmund

BENCHMARK_MAIN();
