// Observability overhead micro-benchmarks: the per-event cost of the
// instruments the daily pipeline leans on (counter bumps, histogram
// observations, exemplar attachment, span start/end, request-trace
// start/submit) plus the cost of a *suppressed* log statement, which must
// be near-zero since hot loops keep SIGLOG(DEBUG) lines in place.
//
// Results land in BENCH_obs.json so the perf-trajectory gate
// (check_trajectory) can catch an instrument getting expensive. These are
// wall-clock numbers — the committed baseline bands are loose on purpose.
// Pass --quick for the CI-sized run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

using namespace sigmund;

namespace {

int64_t g_iters = 2'000'000;

// Runs `body` g_iters times and returns mean nanoseconds per call.
template <typename Body>
double TimeNs(Body&& body) {
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < g_iters; ++i) body(i);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(g_iters);
}

double BenchCounterAdd() {
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total");
  const double ns = TimeNs([&](int64_t) { counter->Add(1); });
  SIGCHECK(counter->Value() == g_iters);
  return ns;
}

double BenchHistogramObserve() {
  obs::MetricRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("bench_micros");
  double value = 1.0;
  const double ns = TimeNs([&](int64_t) {
    histogram->Observe(value);
    value = value < 1e6 ? value * 1.1 : 1.0;  // walk the buckets
  });
  SIGCHECK(histogram->Count() == g_iters);
  return ns;
}

double BenchExemplarAttach() {
  obs::MetricRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("bench_micros");
  const double ns = TimeNs([&](int64_t i) {
    histogram->AttachExemplar(static_cast<double>(i % 1000),
                              static_cast<uint64_t>(i + 1));
  });
  SIGCHECK(histogram->ExemplarIds()[0] != 0 ||
           histogram->ExemplarIds().back() != 0);
  return ns;
}

double BenchRegistryLookup() {
  // The anti-pattern being measured: looking the instrument up by name on
  // every event instead of caching the pointer (a mutex + map walk).
  obs::MetricRegistry registry;
  return TimeNs([&](int64_t) {
    registry.GetCounter("bench_lookup_total", {{"op", "read"}})->Add(1);
  });
}

double BenchSpanStartEnd() {
  SimClock clock;
  obs::Tracer tracer(&clock);
  return TimeNs([&](int64_t) {
    obs::Span span = tracer.StartSpan("bench");
    (void)span.id();
  });
}

double BenchRequestTrace() {
  // One full request-trace lifecycle: start, two child spans with an
  // annotation, verdict, submit through the tail sampler (1% keep).
  SimClock clock;
  obs::MetricRegistry registry;
  obs::RequestTracer::Options options;
  options.sample_rate = 0.01;
  options.max_kept_traces = 1024;
  obs::RequestTracer tracer(options, &registry, &clock);
  const double ns = TimeNs([&](int64_t) {
    obs::RequestTrace trace = tracer.StartRequest("bench/request");
    const int64_t admission = trace.StartSpan("admission");
    trace.Annotate(admission, "outcome", "admitted");
    trace.EndSpan(admission);
    const int64_t lookup = trace.StartSpan("store_lookup");
    trace.EndSpan(lookup);
    tracer.Submit(std::move(trace));
  });
  SIGCHECK(tracer.KeptCount() > 0);
  return ns;
}

double BenchSuppressedLog() {
  SetMinLogSeverity(LogSeverity::kError);
  int64_t side_effect = 0;
  const double ns =
      TimeNs([&](int64_t) { SIGLOG(DEBUG) << "dropped " << ++side_effect; });
  SetMinLogSeverity(LogSeverity::kInfo);
  // The stream arguments of a suppressed statement are never evaluated.
  SIGCHECK(side_effect == 0);
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) g_iters = 200'000;

  std::vector<std::pair<std::string, double>> results;
  results.emplace_back("counter_add_ns", BenchCounterAdd());
  results.emplace_back("histogram_observe_ns", BenchHistogramObserve());
  results.emplace_back("exemplar_attach_ns", BenchExemplarAttach());
  results.emplace_back("registry_lookup_ns", BenchRegistryLookup());
  results.emplace_back("span_start_end_ns", BenchSpanStartEnd());
  results.emplace_back("request_trace_ns", BenchRequestTrace());
  results.emplace_back("suppressed_log_ns", BenchSuppressedLog());

  std::string json = "{\n  \"bench\": \"obs_overhead\",\n";
  json += StrFormat("  \"quick\": %s,\n", quick ? "true" : "false");
  json += StrFormat("  \"iters\": %lld,\n", static_cast<long long>(g_iters));
  json += "  \"metrics\": {\n";
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%-24s %10.1f ns/op\n", results[i].first.c_str(),
                results[i].second);
    json += StrFormat("    \"%s\": %.2f%s\n", results[i].first.c_str(),
                      results[i].second,
                      i + 1 < results.size() ? "," : "");
  }
  json += "  }\n}\n";

  std::FILE* out = std::fopen("BENCH_obs.json", "w");
  SIGCHECK(out != nullptr);
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote BENCH_obs.json\n");
  return 0;
}
