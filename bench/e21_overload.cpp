// E21: Overload resilience (DESIGN.md §8). The serving plane's admission
// control must prevent congestion collapse: as offered load climbs past
// capacity, goodput (requests completing inside their deadline) must stay
// near capacity instead of falling toward zero, p99 latency of admitted
// requests must stay inside the deadline, and shedding must be strictly
// priority-ordered (health probes shed long before any user-facing
// request). An unprotected plane (huge static concurrency limit) is run
// over the same load curve as the collapse baseline, a retry storm is run
// with and without the client retry budget, and a million-user closed-loop
// day — diurnal ramp plus a 10× flash crowd — exercises the whole ladder.
//
// Everything runs over SimClock: millions of simulated users in seconds
// of wall time, and same-seed reruns make byte-identical admit/shed
// decisions (asserted below via LoadGenReport::decision_hash).
//
// Results land in BENCH_overload.json. Pass --quick for the CI-sized run.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/slo.h"
#include "common/string_util.h"
#include "serving/loadgen.h"

using namespace sigmund;
using serving::LoadGenOptions;
using serving::LoadGenReport;
using serving::RunLoadGenerator;

namespace {

// The simulated backend: `kServerCapacity` requests at full speed,
// `kServiceMicros` each → capacity ≈ 8000 requests/second.
constexpr int kServerCapacity = 16;
constexpr int64_t kServiceMicros = 2000;
constexpr int64_t kDeadlineMicros = 50000;
constexpr double kCapacityRps =
    1e6 * kServerCapacity / static_cast<double>(kServiceMicros);

LoadGenOptions BaseOptions(double duration_seconds, uint64_t seed) {
  LoadGenOptions options;
  options.seed = seed;
  options.duration_seconds = duration_seconds;
  options.num_retailers = 500;
  options.zipf_exponent = 1.1;
  options.service_micros = kServiceMicros;
  options.service_jitter_micros = 500;
  options.server_capacity = kServerCapacity;
  options.deadline_micros = kDeadlineMicros;
  // The protected plane: adaptive limiter defending a 20ms target, a
  // bounded queue with CoDel, probe/canary watermarks at the defaults.
  options.admission.limiter.target_latency_micros = 20000;
  options.admission.limiter.initial_limit = 32;
  options.admission.limiter.max_limit = 2048;
  // Small on purpose: at capacity-limited drain (~8000/s) a 64-deep queue
  // adds at most ~8ms of wait, keeping queued-then-served requests well
  // inside the 50ms deadline. Deeper queues just convert goodput to
  // deadline sheds.
  options.admission.queue_capacity = 64;
  return options;
}

// Unprotected baseline: a huge static limit, no queue, no watermarks —
// the pre-admission Frontend, which accepts everything.
void Unprotect(LoadGenOptions* options) {
  options->admission.limiter.initial_limit = 1 << 20;
  options->admission.limiter.min_limit = 1 << 20;
  options->admission.limiter.max_limit = 1 << 20;
  options->admission.queue_capacity = 0;
  options->admission.probe_watermark = 2.0;
  options->admission.canary_watermark = 2.0;
}

std::string ReportJson(const LoadGenReport& report) {
  int64_t shed = 0;
  for (const serving::LoadGenPriorityStats& stats : report.priorities) {
    shed += stats.shed;
  }
  return StrFormat(
      "{\"offered_rps\": %.1f, \"goodput_rps\": %.1f, "
      "\"p50_micros\": %.0f, \"p99_micros\": %.0f, \"shed\": %lld, "
      "\"completed\": %lld, \"retries_suppressed\": %lld, "
      "\"final_limit\": %d, \"max_occ_probe_admitted\": %.3f, "
      "\"min_occ_user_shed\": %.3f, \"decision_hash\": \"%016llx\"}",
      report.offered_rps, report.goodput_rps, report.p50_latency_micros,
      report.p99_latency_micros, static_cast<long long>(shed),
      static_cast<long long>(report.total_completed),
      static_cast<long long>(report.retries_suppressed),
      report.final_concurrency_limit, report.max_occupancy_probe_admitted,
      report.min_occupancy_user_shed,
      static_cast<unsigned long long>(report.decision_hash));
}

int64_t UserRetries(const LoadGenReport& report) {
  return report
      .priorities[static_cast<int>(serving::RequestPriority::kUserFacing)]
      .retries;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const double duration = quick ? 4.0 : 20.0;
  const std::vector<double> multipliers = {0.5, 1.0, 2.0, 4.0, 10.0};

  std::string json = "{\n  \"bench\": \"e21_overload\",\n";
  json += StrFormat("  \"quick\": %s,\n", quick ? "true" : "false");
  json += StrFormat("  \"theoretical_capacity_rps\": %.0f,\n", kCapacityRps);
  json += StrFormat("  \"deadline_micros\": %lld,\n",
                    static_cast<long long>(kDeadlineMicros));

  // --- Goodput-vs-offered-load curve, protected vs unprotected.
  std::printf("e21_overload: goodput vs offered load (%s run)\n",
              quick ? "quick" : "full");
  std::printf("%-6s %12s | %12s %10s | %12s %10s\n", "mult", "offered",
              "goodput", "p99_ms", "goodput0", "p99_ms0");
  double measured_capacity = 0.0;
  LoadGenReport at_10x;
  std::vector<std::string> curve_json;
  for (double mult : multipliers) {
    LoadGenOptions options = BaseOptions(duration, /*seed=*/42);
    options.open_rps = mult * kCapacityRps;
    options.probe_rps = 50.0;
    options.canary_rps = 50.0;
    const LoadGenReport protected_run = RunLoadGenerator(options);

    LoadGenOptions raw = options;
    Unprotect(&raw);
    const LoadGenReport unprotected_run = RunLoadGenerator(raw);

    std::printf("%-6.1f %12.0f | %12.0f %10.1f | %12.0f %10.1f\n", mult,
                protected_run.offered_rps, protected_run.goodput_rps,
                protected_run.p99_latency_micros / 1000.0,
                unprotected_run.goodput_rps,
                unprotected_run.p99_latency_micros / 1000.0);
    curve_json.push_back(StrFormat(
        "    {\"multiplier\": %.1f, \"protected\": %s, \"unprotected\": "
        "%s}",
        mult, ReportJson(protected_run).c_str(),
        ReportJson(unprotected_run).c_str()));

    if (mult == 1.0) measured_capacity = protected_run.goodput_rps;
    if (mult == 10.0) at_10x = protected_run;

    // No congestion collapse at or past capacity: p99 of completed
    // (admitted) requests holds inside the deadline.
    SIGCHECK(protected_run.p99_latency_micros <=
             static_cast<double>(kDeadlineMicros));
    // Strict priority ordering whenever both events exist: every probe
    // admission happened at lower occupancy than the cheapest user shed.
    if (protected_run.min_occupancy_user_shed <= 1.0) {
      SIGCHECK(protected_run.max_occupancy_probe_admitted <
               protected_run.min_occupancy_user_shed);
    }
  }
  json += "  \"curve\": [\n";
  for (size_t i = 0; i < curve_json.size(); ++i) {
    json += curve_json[i];
    json += i + 1 < curve_json.size() ? ",\n" : "\n";
  }
  json += "  ],\n";

  // The acceptance bar: goodput at 10× offered load ≥ 85% of measured
  // capacity (goodput at 1×).
  SIGCHECK(measured_capacity > 0.0);
  SIGCHECK(at_10x.goodput_rps >= 0.85 * measured_capacity);
  std::printf("capacity=%.0f rps, goodput@10x=%.0f rps (%.0f%%)\n",
              measured_capacity, at_10x.goodput_rps,
              100.0 * at_10x.goodput_rps / measured_capacity);

  // --- Retry storm: shed-triggered client retries at 2× capacity,
  // unlimited vs budgeted. The budget invariant: sustained retry volume
  // <= ratio × fresh request volume (+ the small initial reserve).
  {
    LoadGenOptions storm = BaseOptions(duration, /*seed=*/7);
    storm.open_rps = 2.0 * kCapacityRps;
    storm.client_retries = 3;
    storm.retry_backoff_seconds = 0.01;
    storm.retry_budget_ratio = -1.0;  // unlimited
    const LoadGenReport unlimited = RunLoadGenerator(storm);

    storm.retry_budget_ratio = 0.1;
    const LoadGenReport budgeted = RunLoadGenerator(storm);

    const int64_t fresh = budgeted.priorities[static_cast<int>(
                                                  serving::RequestPriority::
                                                      kUserFacing)]
                              .offered;
    std::printf(
        "retry storm @2x: unlimited retries=%lld, budgeted retries=%lld "
        "(suppressed=%lld), budget cap=%.0f\n",
        static_cast<long long>(UserRetries(unlimited)),
        static_cast<long long>(UserRetries(budgeted)),
        static_cast<long long>(budgeted.retries_suppressed),
        0.1 * static_cast<double>(fresh) + 10.0);
    SIGCHECK(UserRetries(budgeted) <= UserRetries(unlimited));
    // Finagle invariant: withdrawals can never exceed deposits + reserve.
    SIGCHECK(static_cast<double>(UserRetries(budgeted)) <=
             0.1 * static_cast<double>(fresh) + 10.0 + 1.0);
    json += StrFormat(
        "  \"retry_storm\": {\"unlimited\": %s, \"budgeted\": %s},\n",
        ReportJson(unlimited).c_str(), ReportJson(budgeted).c_str());
  }

  // --- A million-user day: closed-loop population with think time (the
  // paper's "heavy traffic from millions of users"), a diurnal ramp on
  // the open-loop stream, and a 10× flash crowd in the middle.
  {
    LoadGenOptions day = BaseOptions(quick ? 6.0 : 30.0, /*seed=*/1234);
    day.closed_users = quick ? 100000 : 1000000;
    day.think_seconds = quick ? 30.0 : 180.0;
    day.open_rps = 0.25 * kCapacityRps;
    day.diurnal_amplitude = 0.5;
    day.diurnal_period_seconds = day.duration_seconds;
    day.flash_at_seconds = day.duration_seconds * 0.4;
    day.flash_duration_seconds = day.duration_seconds * 0.2;
    day.flash_factor = 10.0;
    day.probe_rps = 20.0;
    day.client_retries = 2;
    day.retry_backoff_seconds = 0.02;
    day.retry_budget_ratio = 0.1;
    // Request tracing with tail-based sampling plus SLO burn-rate
    // evaluation, on for the flash-crowd day (DESIGN.md §10). Both are
    // provably passive: the rerun below — same options, so also traced —
    // plus the tracing-off run in slo_trace_test pin decision_hash.
    day.trace_requests = true;
    day.trace.sample_rate = 0.001;
    day.trace.max_kept_traces = 1 << 20;
    day.slo_enabled = true;
    {
      obs::SloObjective availability;
      availability.name = "serving_availability";
      availability.total_counter = "serving_requests_total";
      availability.bad_counter = "serving_requests_total";
      availability.bad_labels = {{"outcome", "shed"}};
      availability.objective = 0.99;
      day.slo.objectives.push_back(availability);
      // Short enough that the long window clears the flash crowd before
      // the day ends, so the fired alert also resolves in-run.
      day.slo.short_window_micros = 500'000;
      day.slo.long_window_micros = 2'000'000;
      day.slo.fire_burn_rate = 2.0;
      day.slo.resolve_burn_rate = 1.0;
    }
    const LoadGenReport crowd = RunLoadGenerator(day);
    const LoadGenReport rerun = RunLoadGenerator(day);
    std::printf(
        "million-user day: users=%d offered=%.0f rps goodput=%.0f rps "
        "p99=%.1fms hash=%016llx\n",
        day.closed_users, crowd.offered_rps, crowd.goodput_rps,
        crowd.p99_latency_micros / 1000.0,
        static_cast<unsigned long long>(crowd.decision_hash));
    // Determinism: a same-seed rerun replays byte-identical decisions.
    SIGCHECK(crowd.decision_hash == rerun.decision_hash);
    SIGCHECK(crowd.total_offered == rerun.total_offered);
    // The flash crowd must not collapse the day's goodput. Day-average
    // goodput is bounded by capacity during the flash but by (smaller)
    // offered load off-peak — the diurnal ramp idles the plane on
    // purpose — so it lands a bit under both caps even with zero
    // collapse; 80% of the binding cap is the no-collapse bar here. (The
    // strict 85%-of-capacity acceptance bar is the 10x curve point
    // above, where offered load exceeds capacity the whole run.)
    SIGCHECK(crowd.goodput_rps >=
             0.8 * std::min(measured_capacity, crowd.offered_rps));
    // Client-observed latency here includes retry backoffs (a shed, a
    // wait, a second attempt), which by construction runs right up to the
    // deadline — so the day's p99 gets a small margin. The strict
    // p99-within-deadline bar on admitted requests is asserted on the
    // curve above, where latency is pure queue+service.
    SIGCHECK(crowd.p99_latency_micros <=
             1.1 * static_cast<double>(kDeadlineMicros));
    // Tail-based sampling keeps 100% of the interesting tail: every
    // terminally shed request and every deadline overrun has a kept
    // trace (healthy traffic is hash-sampled at 0.1%).
    SIGCHECK(crowd.terminal_sheds > 0);
    SIGCHECK(crowd.shed_traces_kept == crowd.terminal_sheds);
    SIGCHECK(crowd.late_traces_kept == crowd.deadline_overruns);
    // The flash crowd burns error budget fast enough to fire the
    // availability SLO, and the alert resolves once the crowd passes.
    SIGCHECK(crowd.slo_alerts_fired >= 1);
    SIGCHECK(crowd.slo_alerts_resolved >= 1);
    std::printf(
        "  traces: started=%lld kept=%lld (sheds %lld/%lld, overruns "
        "%lld/%lld); slo alerts fired=%lld resolved=%lld\n",
        static_cast<long long>(crowd.traces_started),
        static_cast<long long>(crowd.traces_kept),
        static_cast<long long>(crowd.shed_traces_kept),
        static_cast<long long>(crowd.terminal_sheds),
        static_cast<long long>(crowd.late_traces_kept),
        static_cast<long long>(crowd.deadline_overruns),
        static_cast<long long>(crowd.slo_alerts_fired),
        static_cast<long long>(crowd.slo_alerts_resolved));
    json += StrFormat("  \"million_user_day\": %s,\n",
                      ReportJson(crowd).c_str());
    json += StrFormat(
        "  \"trace\": {\"started\": %lld, \"kept\": %lld, "
        "\"terminal_sheds\": %lld, \"shed_traces_kept\": %lld, "
        "\"deadline_overruns\": %lld, \"late_traces_kept\": %lld},\n",
        static_cast<long long>(crowd.traces_started),
        static_cast<long long>(crowd.traces_kept),
        static_cast<long long>(crowd.terminal_sheds),
        static_cast<long long>(crowd.shed_traces_kept),
        static_cast<long long>(crowd.deadline_overruns),
        static_cast<long long>(crowd.late_traces_kept));
    json += StrFormat(
        "  \"slo\": {\"alerts_fired\": %lld, \"alerts_resolved\": %lld},\n",
        static_cast<long long>(crowd.slo_alerts_fired),
        static_cast<long long>(crowd.slo_alerts_resolved));
    json += StrFormat(
        "  \"determinism\": {\"hash\": \"%016llx\", \"rerun_hash\": "
        "\"%016llx\", \"identical\": true},\n",
        static_cast<unsigned long long>(crowd.decision_hash),
        static_cast<unsigned long long>(rerun.decision_hash));
  }

  json += StrFormat(
      "  \"acceptance\": {\"measured_capacity_rps\": %.1f, "
      "\"goodput_at_10x_rps\": %.1f, \"goodput_ratio\": %.3f}\n}\n",
      measured_capacity, at_10x.goodput_rps,
      at_10x.goodput_rps / measured_capacity);

  std::FILE* out = std::fopen("BENCH_overload.json", "w");
  SIGCHECK(out != nullptr);
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote BENCH_overload.json\n");
  return 0;
}
