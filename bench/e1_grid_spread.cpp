// E1: Hyper-parameter sensitivity — "a model with randomly chosen
// hyper-parameters can be a hundred times worse (on hold-out metrics) than
// the best model" (§III-C of the paper).
//
// Runs a full grid (the cross-product Sigmund sweeps per retailer,
// including deliberately extreme corners) and prints the hold-out MAP@10
// distribution: best, quartiles, worst, and the best/worst ratio.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

using namespace sigmund;

int main() {
  data::RetailerWorld world = bench::MakeWorld(7, 400);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("E1 grid spread | items=%d holdout=%zu\n",
              world.data.num_items(), split.holdout.size());

  core::GridSpec spec;
  spec.factors = {2, 8, 32, 96};
  spec.learning_rates = {1.0, 0.05, 0.001};
  spec.lambdas_v = {1.0, 0.01, 0.0001};
  spec.lambdas_vc = {0.1, 0.001};
  spec.sweep_taxonomy = true;
  spec.sweep_brand = false;
  spec.num_epochs = 8;
  spec.max_configs = 60;
  std::vector<core::HyperParams> grid =
      core::BuildGrid(spec, world.data.catalog, 1);
  std::printf("configs: %zu\n", grid.size());

  std::vector<core::TrialResult> trials =
      core::RunGridSearch(world.data, split, grid, /*num_threads=*/1,
                          /*eval_sample_fraction=*/1.0);

  std::printf("\n%-6s %-8s %-8s %-8s %-6s %-4s %-10s\n", "rank", "map@10",
              "F", "lr", "l_v", "tax", "");
  for (size_t i = 0; i < trials.size(); ++i) {
    if (i < 5 || i >= trials.size() - 5) {
      const core::TrialResult& t = trials[i];
      std::printf("%-6zu %-8.4f %-8d %-8.3g %-6.3g %-4d %s\n", i + 1,
                  t.metrics.map_at_k, t.params.num_factors,
                  t.params.learning_rate, t.params.lambda_v,
                  t.params.use_taxonomy ? 1 : 0,
                  i == 0 ? "<- best" : (i == trials.size() - 1 ? "<- worst" : ""));
    } else if (i == 5) {
      std::printf("...\n");
    }
  }

  const double best = trials.front().metrics.map_at_k;
  const double worst = std::max(trials.back().metrics.map_at_k, 1e-6);
  const double median = trials[trials.size() / 2].metrics.map_at_k;
  std::printf("\nbest=%.4f median=%.4f worst=%.4f (floored at 1e-6)\n", best,
              median, trials.back().metrics.map_at_k);
  std::printf("best/worst ratio: %.0fx   best/median: %.1fx\n", best / worst,
              best / std::max(median, 1e-6));
  std::printf("paper: randomly chosen hyper-parameters can be ~100x worse "
              "than the best model\n");
  return 0;
}
