// E5: Pre-emptible resources and checkpointing — "the cost advantage of
// this approach over using regular VMs can be nearly 70%" (§II-B), with
// time-interval checkpointing controlling "the amount of work lost on
// pre-emption" (§IV-B3).
//
// Runs the same bag of training tasks on the cluster simulator as
// (a) regular VMs, (b) pre-emptible VMs with various checkpoint intervals,
// and prints cost, lost work, checkpoint I/O, and makespan.

#include <cstdio>
#include <vector>

#include "cluster/simulation.h"
#include "common/random.h"
#include "common/string_util.h"

using namespace sigmund;

int main() {
  // 64 model-training tasks, 20–120 simulated minutes each (heterogeneous
  // retailer sizes), on a 16-machine cell.
  Rng rng(5);
  std::vector<cluster::SimTask> tasks;
  double total_work = 0;
  for (int i = 0; i < 64; ++i) {
    double minutes = 20.0 + rng.UniformDouble() * 100.0;
    tasks.push_back({i, minutes * 60.0});
    total_work += minutes * 60.0;
  }
  cluster::Cell cell = cluster::Cell::Uniform("cell-a", 16, 4, 32);
  cluster::CostModel cost(/*regular $/cpu-hr=*/0.04,
                          /*preemptible discount=*/0.70);
  cluster::SimJobRunner runner(cell, cost);
  std::printf("E5 preemptible cost | %zu tasks, %.1f h total work, "
              "%d machines, preemption rate 1.0/vm-hour\n",
              tasks.size(), total_work / 3600.0,
              static_cast<int>(cell.machines.size()));

  cluster::SimJobConfig regular;
  regular.vm = {4, 32, cluster::VmPriority::kRegular};
  regular.checkpoint_interval_seconds = 0;
  cluster::SimJobStats reg = runner.Run(tasks, regular);

  std::printf("\n%-28s %-10s %-10s %-10s %-12s %-8s\n", "configuration",
              "cost($)", "saving", "lost(h)", "ckpt-writes", "mkspan(h)");
  std::printf("%-28s %-10.3f %-10s %-10.2f %-12d %-8.2f\n",
              "regular VMs", reg.cost_dollars, "--",
              reg.lost_work_seconds / 3600.0, 0,
              reg.makespan_seconds / 3600.0);

  for (double interval : {0.0, 1800.0, 600.0, 300.0, 60.0}) {
    cluster::SimJobConfig preemptible;
    preemptible.vm = {4, 32, cluster::VmPriority::kPreemptible};
    preemptible.preemption_rate_per_hour = 1.0;
    preemptible.checkpoint_interval_seconds = interval;
    preemptible.checkpoint_write_seconds = 2.0;
    preemptible.restart_overhead_seconds = 30.0;
    preemptible.seed = 17;
    cluster::SimJobStats pre = runner.Run(tasks, preemptible);
    std::string label =
        interval <= 0 ? "preemptible, no ckpt"
                      : StrFormat("preemptible, ckpt %4.0fs", interval);
    std::printf("%-28s %-10.3f %-10s %-10.2f %-12lld %-8.2f\n",
                label.c_str(), pre.cost_dollars,
                StrFormat("%.0f%%",
                          100.0 * (1.0 - pre.cost_dollars / reg.cost_dollars))
                    .c_str(),
                pre.lost_work_seconds / 3600.0,
                static_cast<long long>(pre.checkpoint_seconds /
                                       preemptible.checkpoint_write_seconds),
                pre.makespan_seconds / 3600.0);
  }
  std::printf(
      "\npaper: ~70%% cost advantage for preemptible resources (§II-B); "
      "checkpoint interval bounds lost work per preemption (§IV-B3)\n");
  return 0;
}
