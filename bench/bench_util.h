#ifndef SIGMUND_BENCH_BENCH_UTIL_H_
#define SIGMUND_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment benches. Each bench binary reproduces
// one table/figure/claim of the paper (see DESIGN.md §3 for the index and
// EXPERIMENTS.md for paper-vs-measured results).

#include <cstdio>

#include "common/logging.h"
#include "core/grid_search.h"
#include "data/world_generator.h"

namespace sigmund::bench {

// A mid-sized retailer with enough signal for stable metrics.
// `bundles_per_item` > 0 adds exact item-to-item browse links (non-low-rank
// structure that favors co-occurrence models on head items).
inline data::RetailerWorld MakeWorld(uint64_t seed, int items,
                                     double sessions_per_user = 4.0,
                                     int bundles_per_item = 0) {
  data::WorldConfig config;
  config.seed = seed;
  config.mean_sessions_per_user = sessions_per_user;
  config.bundles_per_item = bundles_per_item;
  data::WorldGenerator generator(config);
  return generator.GenerateRetailer(0, items);
}

// Trains one config on a prepared split, aborting the process on error
// (benches have no recovery path).
inline core::TrainOutput Train(const data::RetailerWorld& world,
                               const data::TrainTestSplit& split,
                               const core::HyperParams& params,
                               int num_threads = 1) {
  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params = params;
  request.num_threads = num_threads;
  StatusOr<core::TrainOutput> output = core::TrainOneModel(request);
  SIGCHECK(output.ok());
  return std::move(output).value();
}

inline core::HyperParams DefaultParams(int factors = 16, int epochs = 12) {
  core::HyperParams params;
  params.num_factors = factors;
  params.num_epochs = epochs;
  params.use_taxonomy = true;
  return params;
}

}  // namespace sigmund::bench

#endif  // SIGMUND_BENCH_BENCH_UTIL_H_
