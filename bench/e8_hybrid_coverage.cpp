// E8: Co-occurrence vs. factorization vs. hybrid (§III-E, §VII of the
// paper): "co-occurrence based recommendations work well with large
// amounts of data; more sophisticated techniques rarely outperform it ...
// we were able to empirically demonstrate the value of matrix-
// factorization-style approaches for the long tail ... [the hybrid]
// allows us to cover a much larger fraction of the inventory."
//
// Measures hold-out hit-rate@10 split by the popularity of the query item
// (head = top decile by views, tail = bottom half), plus inventory
// coverage, for all three recommenders.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/candidate_selector.h"
#include "core/hybrid.h"

using namespace sigmund;

namespace {

constexpr int kTopK = 10;

bool Contains(const std::vector<core::ScoredItem>& list,
              data::ItemIndex item) {
  for (const core::ScoredItem& entry : list) {
    if (entry.item == item) return true;
  }
  return false;
}

struct Buckets {
  int head_hits = 0, head_total = 0;
  int tail_hits = 0, tail_total = 0;
};

}  // namespace

int main() {
  // Dense head (plenty of traffic for popular items) plus exact bundle
  // links — the item-specific association structure that real co-browsing
  // exhibits and that a low-rank model cannot memorize.
  data::RetailerWorld world = bench::MakeWorld(61, 1000, 4.0,
                                               /*bundles_per_item=*/2);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("E8 hybrid head/tail | items=%d holdout=%zu\n",
              world.data.num_items(), split.holdout.size());

  core::TrainOutput trained =
      bench::Train(world, split, bench::DefaultParams(16, 12));
  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      split.train, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      split.train, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  core::InferenceEngine engine(&trained.model, &selector);
  core::HybridRecommender hybrid(&cooccurrence, &engine);
  core::HybridRecommender::Options hybrid_options;
  hybrid_options.top_k = kTopK;
  hybrid_options.min_pair_count = 3;
  core::InferenceEngine::Options mf_options;
  mf_options.top_k = kTopK;

  // Head/tail by query-item popularity in training.
  std::vector<int64_t> popularity(world.data.num_items(), 0);
  for (const auto& history : split.train) {
    for (const data::Interaction& event : history) ++popularity[event.item];
  }
  std::vector<int64_t> sorted = popularity;
  std::sort(sorted.begin(), sorted.end());
  int64_t head_threshold = sorted[sorted.size() * 9 / 10];
  int64_t tail_threshold = sorted[sorted.size() / 2];

  auto coocc_list = [&](data::ItemIndex query) {
    std::vector<core::ScoredItem> list;
    for (const auto& neighbor : cooccurrence.CoViewed(query)) {
      if (neighbor.count >= hybrid_options.min_pair_count) {
        list.push_back({neighbor.item, neighbor.score});
      }
      if (static_cast<int>(list.size()) >= kTopK) break;
    }
    return list;
  };

  Buckets coocc_buckets, mf_buckets, hybrid_buckets;
  for (const data::HoldoutExample& example : split.holdout) {
    const auto& history = split.train[example.user];
    if (history.empty()) continue;
    data::ItemIndex query = history.back().item;
    bool head = popularity[query] >= head_threshold;
    bool tail = popularity[query] <= tail_threshold;
    if (!head && !tail) continue;

    auto score = [&](Buckets* buckets,
                     const std::vector<core::ScoredItem>& list) {
      bool hit = Contains(list, example.held_out);
      if (head) {
        ++buckets->head_total;
        buckets->head_hits += hit;
      } else {
        ++buckets->tail_total;
        buckets->tail_hits += hit;
      }
    };
    score(&coocc_buckets, coocc_list(query));
    score(&mf_buckets, engine.RecommendForItem(query, mf_options).view_based);
    score(&hybrid_buckets, hybrid.ViewBased(query, hybrid_options));
  }

  // Coverage of full top-K lists across the inventory.
  auto coverage = [&](auto list_fn) {
    int covered = 0;
    for (data::ItemIndex i = 0; i < world.data.num_items(); ++i) {
      if (static_cast<int>(list_fn(i).size()) >= kTopK) ++covered;
    }
    return static_cast<double>(covered) / world.data.num_items();
  };
  double coocc_coverage = coverage(coocc_list);
  double mf_coverage = coverage([&](data::ItemIndex i) {
    return engine.RecommendForItem(i, mf_options).view_based;
  });
  double hybrid_coverage = coverage([&](data::ItemIndex i) {
    return hybrid.ViewBased(i, hybrid_options);
  });

  auto rate = [](int hits, int total) {
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  };
  std::printf("\n%-16s %-22s %-22s %-10s\n", "recommender",
              "head hit@10 (n)", "tail hit@10 (n)", "coverage");
  std::printf("%-16s %.3f (%d)%12s %.3f (%d)%12s %.3f\n", "co-occurrence",
              rate(coocc_buckets.head_hits, coocc_buckets.head_total),
              coocc_buckets.head_total, "",
              rate(coocc_buckets.tail_hits, coocc_buckets.tail_total),
              coocc_buckets.tail_total, "", coocc_coverage);
  std::printf("%-16s %.3f (%d)%12s %.3f (%d)%12s %.3f\n", "factorization",
              rate(mf_buckets.head_hits, mf_buckets.head_total),
              mf_buckets.head_total, "",
              rate(mf_buckets.tail_hits, mf_buckets.tail_total),
              mf_buckets.tail_total, "", mf_coverage);
  std::printf("%-16s %.3f (%d)%12s %.3f (%d)%12s %.3f\n", "hybrid",
              rate(hybrid_buckets.head_hits, hybrid_buckets.head_total),
              hybrid_buckets.head_total, "",
              rate(hybrid_buckets.tail_hits, hybrid_buckets.tail_total),
              hybrid_buckets.tail_total, "", hybrid_coverage);
  std::printf("\npaper: co-occurrence strong on the head; factorization "
              "wins the tail; the hybrid covers far more inventory (§VII)\n");
  return 0;
}
