// E4: Adagrad vs. plain SGD — "Empirically we found that Adagrad converges
// faster and is more reliable than the basic SGD, even for non-convex
// problems." (§III-C1 of the paper.)
//
// Same model, same data, Adagrad on/off, several seeds: prints the
// epoch-by-epoch hold-out MAP (mean over seeds), epochs-to-target, and the
// across-seed variance at the end (reliability).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace sigmund;

namespace {

constexpr int kEpochs = 12;
constexpr int kSeeds = 4;

std::vector<double> MapCurve(const data::RetailerWorld& world,
                             const data::TrainTestSplit& split,
                             core::HyperParams params, uint64_t seed) {
  params.seed = seed;
  params.num_epochs = kEpochs;
  core::TrainingData training_data(&split.train, world.data.num_items());
  std::vector<double> curve;
  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params = params;
  request.epoch_callback = [&](int, const core::BprModel& model,
                               const core::TrainStats&) {
    curve.push_back(core::Evaluator::Evaluate(model, training_data,
                                              split.holdout, {})
                        .map_at_k);
    return true;
  };
  StatusOr<core::TrainOutput> output = core::TrainOneModel(request);
  SIGCHECK(output.ok());
  return curve;
}

struct CurveStats {
  std::vector<double> mean = std::vector<double>(kEpochs, 0.0);
  double final_variance = 0.0;
};

CurveStats Sweep(const data::RetailerWorld& world,
                 const data::TrainTestSplit& split,
                 const core::HyperParams& params) {
  CurveStats stats;
  std::vector<double> finals;
  for (int s = 0; s < kSeeds; ++s) {
    std::vector<double> curve = MapCurve(world, split, params, 100 + s);
    for (int e = 0; e < kEpochs; ++e) stats.mean[e] += curve[e] / kSeeds;
    finals.push_back(curve.back());
  }
  double mean_final = 0;
  for (double f : finals) mean_final += f / kSeeds;
  for (double f : finals) {
    stats.final_variance += (f - mean_final) * (f - mean_final) / kSeeds;
  }
  return stats;
}

}  // namespace

int main() {
  data::RetailerWorld world = bench::MakeWorld(31, 400);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("E4 adagrad vs sgd | items=%d holdout=%zu seeds=%d\n",
              world.data.num_items(), split.holdout.size(), kSeeds);

  // Same base learning rate for both: Adagrad's selling point is that one
  // rate works across retailers/parameters, where raw SGD is sensitive.
  core::HyperParams adagrad = bench::DefaultParams(16, kEpochs);
  adagrad.use_adagrad = true;
  adagrad.learning_rate = 0.1;
  core::HyperParams sgd = adagrad;
  sgd.use_adagrad = false;

  CurveStats adagrad_stats = Sweep(world, split, adagrad);
  CurveStats sgd_stats = Sweep(world, split, sgd);

  std::printf("\n%-7s %-14s %-14s\n", "epoch", "adagrad(map)", "sgd(map)");
  for (int e = 0; e < kEpochs; ++e) {
    std::printf("%-7d %-14.4f %-14.4f\n", e + 1, adagrad_stats.mean[e],
                sgd_stats.mean[e]);
  }

  const double target =
      0.9 * std::max(adagrad_stats.mean.back(), sgd_stats.mean.back());
  auto epochs_to = [&](const std::vector<double>& curve) {
    for (int e = 0; e < kEpochs; ++e) {
      if (curve[e] >= target) return e + 1;
    }
    return -1;
  };
  std::printf("\nepochs to reach MAP %.4f: adagrad=%d sgd=%d\n", target,
              epochs_to(adagrad_stats.mean), epochs_to(sgd_stats.mean));
  std::printf("across-seed stddev of final MAP: adagrad=%.5f sgd=%.5f\n",
              std::sqrt(adagrad_stats.final_variance),
              std::sqrt(sgd_stats.final_variance));
  std::printf("paper: Adagrad converges faster and is more reliable than "
              "basic SGD (§III-C1)\n");
  return 0;
}
