// E18: offline vs. online metrics — "Offline metrics do not directly
// translate to improvements in online metrics (e.g., conversions on
// recommendations) ... we relied on a series of carefully structured
// online experiments to inform our design choices" (§V of the paper).
//
// Trains a spread of models, ranks them by offline hold-out MAP@10, then
// runs each as the treatment arm of a simulated A/B experiment against a
// common co-occurrence control and ranks them by online CTR. Reports both
// rankings, their rank correlation, and any order flips.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/ab_experiment.h"
#include "core/candidate_selector.h"
#include "core/inference.h"

using namespace sigmund;

namespace {

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  int concordant = 0, discordant = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      double x = (a[i] - a[j]) * (b[i] - b[j]);
      if (x > 0) ++concordant;
      if (x < 0) ++discordant;
    }
  }
  int total = concordant + discordant;
  return total > 0 ? static_cast<double>(concordant - discordant) / total
                   : 1.0;
}

}  // namespace

int main() {
  data::RetailerWorld world = bench::MakeWorld(151, 600, 4.0);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("E18 offline vs online | items=%d holdout=%zu\n",
              world.data.num_items(), split.holdout.size());

  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      split.train, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      split.train, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);

  // Control arm: co-occurrence top-10 (popularity backfill).
  std::vector<data::ItemIndex> global_top = cooccurrence.ItemsByPopularity();
  core::AbExperiment::Arm control{
      "cooccurrence", [&](data::UserIndex, data::ItemIndex query) {
        std::vector<data::ItemIndex> list;
        for (const auto& neighbor : cooccurrence.CoViewed(query)) {
          list.push_back(neighbor.item);
          if (list.size() >= 10) break;
        }
        for (data::ItemIndex item : global_top) {
          if (list.size() >= 10) break;
          if (item != query &&
              std::find(list.begin(), list.end(), item) == list.end()) {
            list.push_back(item);
          }
        }
        return list;
      }};

  // Treatments: BPR configs of varying quality.
  struct Variant {
    core::HyperParams params;
    double offline_map = 0.0;
    double online_ctr = 0.0;
    double lift = 0.0;
  };
  std::vector<Variant> variants;
  for (int factors : {4, 16}) {
    for (double lambda : {0.2, 0.01}) {
      Variant v;
      v.params = bench::DefaultParams(factors, 10);
      v.params.lambda_v = lambda;
      variants.push_back(v);
    }
  }

  std::printf("\n%-16s %-10s %-10s %-9s %-8s\n", "model", "map@10",
              "online-ctr", "lift", "z");
  std::vector<double> offline, online;
  for (Variant& v : variants) {
    core::TrainOutput trained = bench::Train(world, split, v.params);
    v.offline_map = trained.metrics.map_at_k;

    core::InferenceEngine engine(&trained.model, &selector);
    core::InferenceEngine::Options options;
    options.top_k = 10;
    core::AbExperiment::Arm treatment{
        "bpr", [&](data::UserIndex, data::ItemIndex query) {
          std::vector<data::ItemIndex> list;
          for (const core::ScoredItem& item :
               engine.RecommendForItem(query, options).view_based) {
            list.push_back(item.item);
          }
          return list;
        }};
    core::AbExperiment::Options ab_options;
    ab_options.rounds_per_user = 4;
    // Scarce clicks (realistic CTR regime); otherwise any 10-item list
    // saturates near P(click)=1 and arms become indistinguishable.
    ab_options.ctr.click_bias = 2.5;
    ab_options.ctr.position_discount = 0.7;
    core::AbExperiment::Outcome outcome = core::AbExperiment::Run(
        world, split.train, control, treatment, ab_options);
    v.online_ctr = outcome.treatment.Ctr();
    v.lift = outcome.RelativeLift();
    offline.push_back(v.offline_map);
    online.push_back(v.online_ctr);
    std::printf("F=%-3d lv=%-7.3g %-10.4f %-10.4f %+-8.1f%% %+.1f%s\n",
                v.params.num_factors, v.params.lambda_v, v.offline_map,
                v.online_ctr, 100.0 * v.lift, outcome.z_score,
                outcome.SignificantAt95() ? "*" : "");
  }

  double tau = KendallTau(offline, online);
  // Count order flips.
  int flips = 0;
  for (size_t i = 0; i < variants.size(); ++i) {
    for (size_t j = i + 1; j < variants.size(); ++j) {
      if ((offline[i] - offline[j]) * (online[i] - online[j]) < 0) ++flips;
    }
  }
  std::printf("\noffline-vs-online rank agreement: kendall-tau=%.2f, "
              "%d/%zu pairwise order flips\n",
              tau, flips, variants.size() * (variants.size() - 1) / 2);
  std::printf("paper (§V): offline metrics are directionally useful but do "
              "not directly translate to online metrics — hence structured "
              "online experiments\n");
  return 0;
}
