// E9: Hogwild multi-threaded training (§IV-B2 of the paper) — SGD
// throughput vs. thread count, and the observation that motivates the
// one-retailer-per-machine policy: model memory is independent of the
// number of training threads, so "requesting CPUs to run additional
// training threads helps us make more efficient use of the memory already
// requested".
//
// google-benchmark binary. On a single-core host the thread scaling is
// bounded by the hardware; the memory table is machine-independent.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/negative_sampler.h"
#include "core/trainer.h"

using namespace sigmund;

namespace {

struct TrainingFixture {
  data::RetailerWorld world;
  data::TrainTestSplit split;
  core::TrainingData training_data;
  core::UniformSampler sampler;

  TrainingFixture()
      : world(bench::MakeWorld(71, 600, 4.0)),
        split(data::SplitLeaveLastOut(world.data)),
        training_data(&split.train, world.data.num_items()) {}
};

TrainingFixture& Fixture() {
  static TrainingFixture* fixture = new TrainingFixture;
  return *fixture;
}

void BM_HogwildSgdSteps(benchmark::State& state) {
  TrainingFixture& f = Fixture();
  core::HyperParams params = bench::DefaultParams(16, 1);
  core::BprModel model(&f.world.data.catalog, params);
  Rng rng(3);
  model.InitRandom(&rng);
  core::BprTrainer trainer(&model, &f.training_data, &f.sampler);

  const int threads = static_cast<int>(state.range(0));
  const int64_t steps = 20000;
  for (auto _ : state) {
    core::BprTrainer::Options options;
    options.num_threads = threads;
    options.num_epochs = 1;
    options.steps_per_epoch = steps;
    trainer.Train(options);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps) * state.iterations(),
      benchmark::Counter::kIsRate);
  state.counters["model_MB"] =
      static_cast<double>(model.MemoryBytes()) / (1024.0 * 1024.0);
}
// UseRealTime: the SGD work runs on pool threads, so the main thread's
// CPU time is meaningless for throughput.
BENCHMARK(BM_HogwildSgdSteps)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ModelMemoryByFactors(benchmark::State& state) {
  TrainingFixture& f = Fixture();
  core::HyperParams params = bench::DefaultParams(
      static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    core::BprModel model(&f.world.data.catalog, params);
    benchmark::DoNotOptimize(model.MemoryBytes());
  }
  core::BprModel model(&f.world.data.catalog, params);
  state.counters["model_MB"] =
      static_cast<double>(model.MemoryBytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_ModelMemoryByFactors)->Arg(8)->Arg(32)->Arg(128)->Unit(
    benchmark::kMillisecond);

void BM_SingleSgdStep(benchmark::State& state) {
  TrainingFixture& f = Fixture();
  core::HyperParams params = bench::DefaultParams(
      static_cast<int>(state.range(0)), 1);
  core::BprModel model(&f.world.data.catalog, params);
  Rng init(3);
  model.InitRandom(&init);
  core::BprTrainer trainer(&model, &f.training_data, &f.sampler);
  Rng rng(9);
  for (auto _ : state) {
    core::TrainingData::Position pos = f.training_data.SamplePosition(&rng);
    core::Context context = f.training_data.ContextAt(pos, 25);
    if (context.empty()) continue;
    data::ItemIndex positive = f.training_data.EventAt(pos).item;
    data::ItemIndex negative = f.sampler.Sample(f.training_data, pos.user,
                                                nullptr, positive, &rng);
    if (negative == data::kInvalidItem) continue;
    benchmark::DoNotOptimize(trainer.Step(context, positive, negative, &rng));
  }
}
BENCHMARK(BM_SingleSgdStep)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
