// E7: LCA expansion radius — "Using a small value of k keeps the
// recommendations precise, but will decrease coverage for tail items ...
// Empirically we found that setting k = 2 provides a good trade-off
// between quality and coverage" for view-based candidates, and lca1 best
// for purchase-based (§III-D1 of the paper).
//
// For k = 1..4 we measure, over hold-out examples:
//   recall  — is the user's actual next item inside the candidate set of
//             their last-viewed item? (quality ceiling of the stage)
//   size    — mean candidates per item (cost)
//   density — recall per 100 candidates (precision of the stage)
//   coverage— fraction of items with a non-trivial candidate set

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/candidate_selector.h"
#include "core/cooccurrence.h"

using namespace sigmund;

int main() {
  data::RetailerWorld world = bench::MakeWorld(51, 800, 4.0);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      split.train, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      split.train, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  std::printf("E7 LCA trade-off | items=%d holdout=%zu\n",
              world.data.num_items(), split.holdout.size());

  std::printf("\nview-based candidates:\n");
  std::printf("%-4s %-10s %-10s %-14s %-10s\n", "k", "recall", "size",
              "recall/100c", "coverage");
  for (int k = 1; k <= 4; ++k) {
    core::CandidateSelector::Options options;
    options.view_lca_k = k;
    options.max_candidates = 100000;  // uncapped: measure the raw stage

    // Recall over hold-out transitions.
    int hits = 0, evaluated = 0;
    for (const data::HoldoutExample& example : split.holdout) {
      const auto& history = split.train[example.user];
      if (history.empty()) continue;
      data::ItemIndex query = history.back().item;
      auto candidates = selector.ViewBased(query, options);
      ++evaluated;
      if (std::binary_search(candidates.begin(), candidates.end(),
                             example.held_out)) {
        ++hits;
      }
    }

    // Mean size + coverage across the catalog.
    int64_t total_size = 0;
    int covered = 0;
    for (data::ItemIndex i = 0; i < world.data.num_items(); ++i) {
      size_t size = selector.ViewBased(i, options).size();
      total_size += static_cast<int64_t>(size);
      if (size >= 10) ++covered;
    }
    double recall = static_cast<double>(hits) / std::max(1, evaluated);
    double mean_size =
        static_cast<double>(total_size) / world.data.num_items();
    std::printf("%-4d %-10.3f %-10.0f %-14.3f %-10.3f\n", k, recall,
                mean_size, 100.0 * recall / std::max(mean_size, 1.0),
                static_cast<double>(covered) / world.data.num_items());
  }

  std::printf("\npurchase-based candidates (substitutes removed):\n");
  std::printf("%-4s %-10s %-10s\n", "k", "size", "coverage");
  for (int k = 1; k <= 3; ++k) {
    core::CandidateSelector::Options options;
    options.purchase_lca_k = k;
    options.max_candidates = 100000;
    int64_t total_size = 0;
    int covered = 0;
    for (data::ItemIndex i = 0; i < world.data.num_items(); ++i) {
      size_t size = selector.PurchaseBased(i, options).size();
      total_size += static_cast<int64_t>(size);
      if (size >= 10) ++covered;
    }
    std::printf("%-4d %-10.0f %-10.3f\n", k,
                static_cast<double>(total_size) / world.data.num_items(),
                static_cast<double>(covered) / world.data.num_items());
  }
  std::printf("\npaper: k=2 balances quality vs coverage for view-based; "
              "lca1 suffices for purchase-based (§III-D1)\n");
  return 0;
}
