// E2: Incremental (warm-start) training — "incremental runs require much
// fewer iterations to converge" (§III-C3 of the paper).
//
// Trains a model to convergence on day-1 data, advances the world by one
// day (new events + new cold items), and compares the epoch-by-epoch
// hold-out MAP of (a) warm-started incremental training vs (b) training
// from scratch, on the day-2 data.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace sigmund;

namespace {

// MAP@10 after each epoch for a training run.
std::vector<double> MapCurve(const data::RetailerWorld& world,
                             const data::TrainTestSplit& split,
                             const core::HyperParams& params,
                             const core::BprModel* warm_start, int epochs) {
  std::vector<double> curve;
  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params = params;
  request.params.num_epochs = epochs;
  request.warm_start = warm_start;

  core::TrainingData training_data(&split.train, world.data.num_items());
  request.epoch_callback = [&](int, const core::BprModel& model,
                               const core::TrainStats&) {
    core::MetricSet metrics = core::Evaluator::Evaluate(
        model, training_data, split.holdout, {});
    curve.push_back(metrics.map_at_k);
    return true;
  };
  StatusOr<core::TrainOutput> output = core::TrainOneModel(request);
  SIGCHECK(output.ok());
  return curve;
}

}  // namespace

int main() {
  data::WorldConfig config;
  config.seed = 13;
  config.mean_sessions_per_user = 4.0;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 500);

  // Day 1: converge a model.
  data::TrainTestSplit day1 = data::SplitLeaveLastOut(world.data);
  core::HyperParams params = bench::DefaultParams(16, 16);
  core::TrainOutput base = bench::Train(world, day1, params);
  std::printf("E2 incremental | day-1 model: %s\n",
              base.metrics.ToString().c_str());

  // Day 2 data arrives (plus cold items).
  data::AdvanceOneDay(generator, &world, /*new_items=*/15, 555);
  data::TrainTestSplit day2 = data::SplitLeaveLastOut(world.data);
  std::printf("day-2: items=%d interactions=%lld holdout=%zu\n",
              world.data.num_items(),
              static_cast<long long>(world.data.TotalInteractions()),
              day2.holdout.size());

  const int epochs = 12;
  std::vector<double> warm =
      MapCurve(world, day2, params, &base.model, epochs);
  std::vector<double> cold = MapCurve(world, day2, params, nullptr, epochs);

  const double target = 0.95 * cold.back();
  int warm_at = -1, cold_at = -1;
  std::printf("\n%-7s %-12s %-12s\n", "epoch", "warm(map)", "cold(map)");
  for (int e = 0; e < epochs; ++e) {
    std::printf("%-7d %-12.4f %-12.4f\n", e + 1, warm[e], cold[e]);
    if (warm_at < 0 && warm[e] >= target) warm_at = e + 1;
    if (cold_at < 0 && cold[e] >= target) cold_at = e + 1;
  }
  std::printf("\nepochs to reach 95%% of converged MAP (%.4f): warm=%d "
              "cold=%d  (speedup %.1fx)\n",
              target, warm_at, cold_at,
              warm_at > 0 ? static_cast<double>(cold_at) / warm_at : 0.0);
  std::printf("paper: incremental runs require much fewer iterations to "
              "converge (§III-C3)\n");
  return 0;
}
