// Ablations of Sigmund's modeling design choices (DESIGN.md §3):
//   A1 — user-context window size K and recency decay (Eq. 1, §III-B2;
//        the paper keeps "the sequence of the past K user actions
//        (usually about 25)" with decayed weights);
//   A2 — tier constraints search>view, cart>search, conversion>cart
//        (§III-B1) vs. plain positive-vs-unseen BPR;
//   A3 — the hierarchical additive taxonomy feature (§III-B4).

#include <cstdio>

#include "bench/bench_util.h"

using namespace sigmund;

namespace {

double MapFor(const data::RetailerWorld& world,
              const data::TrainTestSplit& split, core::HyperParams params) {
  double total = 0;
  const int kSeeds = 3;
  for (int s = 0; s < kSeeds; ++s) {
    params.seed = 500 + s;
    total += bench::Train(world, split, params).metrics.map_at_k;
  }
  return total / kSeeds;
}

}  // namespace

int main() {
  data::RetailerWorld world = bench::MakeWorld(141, 500, 4.0);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("Ablations | items=%d holdout=%zu (mean MAP@10 over 3 seeds)\n",
              world.data.num_items(), split.holdout.size());

  // --- A1a: context window K.
  std::printf("\nA1a context window K (decay 0.85):\n");
  std::printf("%-6s %-10s\n", "K", "map@10");
  for (int window : {1, 3, 10, 25}) {
    core::HyperParams params = bench::DefaultParams(16, 10);
    params.context_window = window;
    std::printf("%-6d %-10.4f\n", window, MapFor(world, split, params));
  }

  // --- A1b: recency decay.
  std::printf("\nA1b context decay (K=25):\n");
  std::printf("%-6s %-10s\n", "decay", "map@10");
  for (double decay : {0.3, 0.6, 0.85, 1.0}) {
    core::HyperParams params = bench::DefaultParams(16, 10);
    params.context_decay = decay;
    std::printf("%-6.2f %-10.4f\n", decay, MapFor(world, split, params));
  }

  // --- A2: tier constraints.
  std::printf("\nA2 tier-constraint fraction (search>view etc., §III-B1):\n");
  std::printf("%-10s %-10s\n", "fraction", "map@10");
  for (double fraction : {0.0, 0.1, 0.25, 0.5}) {
    core::HyperParams params = bench::DefaultParams(16, 10);
    params.tier_constraint_fraction = fraction;
    std::printf("%-10.2f %-10.4f\n", fraction, MapFor(world, split, params));
  }

  // --- A3: taxonomy feature.
  std::printf("\nA3 hierarchical additive taxonomy feature (§III-B4):\n");
  std::printf("%-10s %-10s\n", "taxonomy", "map@10");
  for (bool taxonomy : {false, true}) {
    core::HyperParams params = bench::DefaultParams(16, 10);
    params.use_taxonomy = taxonomy;
    std::printf("%-10s %-10.4f\n", taxonomy ? "on" : "off",
                MapFor(world, split, params));
  }
  std::printf("\nThese are the design choices §III-B commits to: context "
              "windows ~25 with decay, tier constraints, and taxonomy "
              "smoothing.\n");
  return 0;
}
