// Perf-trajectory gate (DESIGN.md §10). Scans a directory of committed
// baselines (bench/baselines/*.json), loads each baseline's results file
// from the results directory (where CI just ran the benchmarks), and
// fails — exit 1, one line per problem — when any gated metric drifts
// outside its tolerance band or disappears from the results.
//
//   check_trajectory [--quick|--full]
//       --baselines ../bench/baselines --results .
//
// --quick/--full selects which baselines apply (a baseline tagged
// "mode": "quick" only gates quick runs); without either flag every
// baseline is checked.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/trajectory.h"

using namespace sigmund::bench;

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "any";
  std::string baselines_dir = "bench/baselines";
  std::string results_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      mode = "quick";
    } else if (std::strcmp(argv[i], "--full") == 0) {
      mode = "full";
    } else if (std::strcmp(argv[i], "--baselines") == 0 && i + 1 < argc) {
      baselines_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--results") == 0 && i + 1 < argc) {
      results_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: check_trajectory [--quick|--full] "
                   "[--baselines DIR] [--results DIR]\n");
      return 2;
    }
  }

  std::vector<std::filesystem::path> baseline_files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(baselines_dir, ec)) {
    if (entry.path().extension() == ".json") {
      baseline_files.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "check_trajectory: cannot read baselines dir %s\n",
                 baselines_dir.c_str());
    return 2;
  }
  if (baseline_files.empty()) {
    std::fprintf(stderr, "check_trajectory: no baselines in %s\n",
                 baselines_dir.c_str());
    return 2;
  }
  std::sort(baseline_files.begin(), baseline_files.end());

  TrajectoryResult result;
  int baselines_checked = 0;
  int skipped = 0;
  for (const std::filesystem::path& file : baseline_files) {
    std::string text;
    if (!ReadFile(file.string(), &text)) {
      std::fprintf(stderr, "check_trajectory: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    Baseline baseline;
    std::string error;
    if (!ParseBaseline(text, &baseline, &error)) {
      std::fprintf(stderr, "check_trajectory: %s: %s\n",
                   file.string().c_str(), error.c_str());
      return 2;
    }
    if (!ModeMatches(baseline.mode, mode)) {
      ++skipped;
      continue;
    }
    ++baselines_checked;

    const std::string results_path =
        (std::filesystem::path(results_dir) / baseline.results_file)
            .string();
    std::string results_text;
    if (!ReadFile(results_path, &results_text)) {
      result.missing.push_back({baseline.bench, baseline.results_file,
                                "results file not found in " + results_dir});
      continue;
    }
    JsonValue results;
    if (!ParseJson(results_text, &results, &error)) {
      result.missing.push_back(
          {baseline.bench, baseline.results_file, "bad JSON: " + error});
      continue;
    }
    CheckTrajectory(baseline, results, &result);
  }

  for (const TrajectoryIssue& issue : result.missing) {
    std::printf("MISSING  %-16s %-40s %s\n", issue.bench.c_str(),
                issue.path.c_str(), issue.message.c_str());
  }
  for (const TrajectoryIssue& issue : result.violations) {
    std::printf("VIOLATION %-16s %-40s %s\n", issue.bench.c_str(),
                issue.path.c_str(), issue.message.c_str());
  }
  std::printf(
      "check_trajectory: %d baseline(s), %d metric(s) checked, %d skipped "
      "by mode, %zu violation(s), %zu missing\n",
      baselines_checked, result.metrics_checked, skipped,
      result.violations.size(), result.missing.size());
  return result.ok() ? 0 : 1;
}
