// E20: Rollback cost (safe-rollout ladder, DESIGN.md §7). Rolling a
// retailer back to a retained snapshot must be O(pointer flip) — no SFS
// I/O, no deserialization, independent of catalog size — so an operator
// (or the canary controller) can undo a bad batch in microseconds while
// it is actively serving. Contrast with what rollback would cost if it
// had to reload the previous batch from the shared filesystem.
//
// google-benchmark binary.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/inference.h"
#include "serving/replicated_store.h"
#include "serving/store.h"
#include "sfs/mem_filesystem.h"

using namespace sigmund;

namespace {

std::vector<core::ItemRecommendations> MakeRetailerRecs(int items,
                                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<core::ItemRecommendations> recs(items);
  for (int i = 0; i < items; ++i) {
    recs[i].query = i;
    for (int k = 0; k < 10; ++k) {
      recs[i].view_based.push_back(
          {static_cast<data::ItemIndex>(rng.Uniform(items)),
           rng.UniformDouble()});
      recs[i].purchase_based.push_back(
          {static_cast<data::ItemIndex>(rng.Uniform(items)),
           rng.UniformDouble()});
    }
  }
  return recs;
}

std::string SerializeBatch(
    const std::vector<core::ItemRecommendations>& batch) {
  std::string blob;
  for (const core::ItemRecommendations& recs : batch) {
    blob += recs.Serialize();
    blob += '\n';
  }
  return blob;
}

// Pointer-flip rollback: alternate the active version between the two
// retained snapshots. Catalog size is the arg — the flat line across
// 1k/10k/100k items is the point of the versioned store.
void BM_RollbackPointerFlip(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  serving::RecommendationStore store;
  store.LoadRetailer(0, MakeRetailerRecs(items, 1));
  store.LoadRetailer(0, MakeRetailerRecs(items, 2));
  int64_t target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.RollbackRetailer(0, target));
    target = 3 - target;  // 1 <-> 2
  }
  state.counters["items"] = static_cast<double>(items);
}
BENCHMARK(BM_RollbackPointerFlip)->Arg(1000)->Arg(10000)->Arg(100000);

// What rollback costs without retained versions: re-read + re-parse the
// previous batch from the (in-memory!) shared filesystem. Real flash or
// network storage only widens the gap.
void BM_RollbackViaReload(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  sfs::MemFileSystem fs;
  if (!fs.Write("v1", SerializeBatch(MakeRetailerRecs(items, 1))).ok()) {
    state.SkipWithError("setup write failed");
    return;
  }
  serving::RecommendationStore store;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.LoadRetailerFromFile(0, fs, "v1"));
  }
  state.counters["items"] = static_cast<double>(items);
}
BENCHMARK(BM_RollbackViaReload)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Group-wide rollback: one pointer flip per replica, still no I/O.
void BM_GroupRollback(benchmark::State& state) {
  serving::ReplicatedStoreGroup::Options options;
  options.num_replicas = static_cast<int>(state.range(0));
  serving::ReplicatedStoreGroup group(options);
  group.LoadRetailer(0, MakeRetailerRecs(10000, 1));
  group.LoadRetailer(0, MakeRetailerRecs(10000, 2));
  int64_t target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.RollbackRetailer(0, target));
    target = 3 - target;
  }
}
BENCHMARK(BM_GroupRollback)->Arg(1)->Arg(3)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
