// E6: Inference-job scheduling and scaling (§IV-C1 of the paper):
//  (a) greedy first-fit-decreasing bin-packing of retailers across cells,
//      weighted by inventory size, minimizes the total running time of the
//      inference job (vs. a naive partition);
//  (b) candidate selection makes per-retailer inference cost roughly
//      *linear* in the number of items, vs. quadratic for the naive
//      all-pairs affinity computation.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/simulation.h"
#include "core/candidate_selector.h"
#include "core/cooccurrence.h"
#include "core/inference.h"
#include "pipeline/binpack.h"

using namespace sigmund;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  // --- (a) Bin-packing retailers across cells.
  data::WorldConfig config;
  config.min_items = 50;
  config.max_items = 20000;
  config.seed = 3;
  data::WorldGenerator generator(config);
  Rng rng(11);
  std::vector<pipeline::PackItem> retailers;
  double total = 0;
  for (int r = 0; r < 200; ++r) {
    int items = generator.SampleCatalogSize(&rng);
    retailers.push_back({r, static_cast<double>(items)});
    total += items;
  }
  const int kCells = 6;
  auto ffd = pipeline::FirstFitDecreasing(retailers, kCells);
  auto rr = pipeline::RoundRobinPack(retailers, kCells);

  // Convert to makespan via the cluster simulator: each cell runs its
  // retailers' inference (1 second per 100 items) on 8 machines.
  auto cell_makespan = [](const std::vector<pipeline::PackItem>& bin) {
    std::vector<cluster::SimTask> tasks;
    for (const pipeline::PackItem& item : bin) {
      tasks.push_back({item.id, item.weight / 100.0});
    }
    cluster::Cell cell = cluster::Cell::Uniform("c", 8, 4, 32);
    cluster::SimJobRunner runner(cell, cluster::CostModel());
    cluster::SimJobConfig job;  // regular VMs for this comparison
    job.checkpoint_interval_seconds = 0;
    return runner.Run(tasks, job).makespan_seconds;
  };
  double ffd_makespan = 0, rr_makespan = 0;
  for (int c = 0; c < kCells; ++c) {
    ffd_makespan = std::max(ffd_makespan, cell_makespan(ffd[c]));
    rr_makespan = std::max(rr_makespan, cell_makespan(rr[c]));
  }
  std::printf("E6a bin-packing | %zu retailers, %.0f total items, %d cells "
              "x 8 machines\n",
              retailers.size(), total, kCells);
  std::printf("  first-fit-decreasing: makespan %.1fs (max cell weight "
              "%.0f items)\n",
              ffd_makespan, pipeline::MaxBinWeight(ffd));
  std::printf("  round-robin (naive):  makespan %.1fs (max cell weight "
              "%.0f items)\n",
              rr_makespan, pipeline::MaxBinWeight(rr));
  std::printf("  ideal (total/cells):  %.0f items per cell\n",
              total / kCells);

  // --- (b) Candidate selection vs. full scan.
  std::printf("\nE6b inference scaling | per-item candidate selection vs "
              "all-pairs scoring\n");
  std::printf("%-8s %-12s %-14s %-14s %-10s\n", "items", "cands/item",
              "selected(ms)", "fullscan(ms)", "speedup");
  for (int items : {500, 1000, 2000, 4000}) {
    // A real product taxonomy grows with the catalog; keep leaf-category
    // size roughly constant so candidate sets stay bounded.
    data::WorldConfig world_config;
    world_config.seed = 40 + items;
    world_config.mean_sessions_per_user = 3.0;
    world_config.taxonomy_depth = items <= 1000 ? 3 : (items <= 2000 ? 4 : 5);
    data::WorldGenerator world_generator(world_config);
    data::RetailerWorld world = world_generator.GenerateRetailer(0, items);
    data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
    core::HyperParams params = bench::DefaultParams(16, 3);
    core::TrainOutput trained = bench::Train(world, split, params);
    core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
        world.data.histories, world.data.num_items(), {});
    core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
        world.data.histories, world.data.catalog, {});
    core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                     &repurchase);
    core::InferenceEngine engine(&trained.model, &selector);

    core::InferenceEngine::Options options;
    options.top_k = 10;
    // Probe a fixed number of items so per-item cost is comparable.
    const int kProbe = 100;
    int64_t candidate_count = 0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kProbe; ++i) {
      core::ItemRecommendations recs = engine.RecommendForItem(i, options);
      candidate_count +=
          static_cast<int64_t>(selector.ViewBased(i, options.selector).size());
    }
    double selected_ms = Seconds(start) * 1000.0;

    start = std::chrono::steady_clock::now();
    for (int i = 0; i < kProbe; ++i) {
      engine.RecommendForItemFullScan(i, 10);
    }
    double full_ms = Seconds(start) * 1000.0;

    std::printf("%-8d %-12.0f %-14.1f %-14.1f %-10.1fx\n", items,
                static_cast<double>(candidate_count) / kProbe, selected_ms,
                full_ms, full_ms / std::max(selected_ms, 1e-9));
  }
  std::printf("\npaper: candidate selection limits candidates per item, so "
              "inference cost is ~linear in items; naive is quadratic "
              "(§IV-C1)\n");
  return 0;
}
