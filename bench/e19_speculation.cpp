// E19: Speculative backup attempts vs stragglers — the classic MapReduce
// tail-latency mitigation (Dean & Ghemawat §3.6) applied to the daily
// pipeline's map phases. One simulated machine is slow: the first attempt
// of the straggler task processes every record `skew`x slower than its
// peers. Retry-only has to ride the slow attempt to completion; with
// speculative backups the engine clones the slowest in-flight task once
// the phase is ~75% committed, and the (fast) backup commits first.
//
// Prints map-phase makespan for both modes across skew factors, plus the
// backup bookkeeping, and the makespan reduction speculation buys.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/mapreduce.h"

using namespace sigmund;
using mapreduce::Emitter;
using mapreduce::MapReduceJob;
using mapreduce::MapReduceSpec;
using mapreduce::Mapper;
using mapreduce::Record;

namespace {

constexpr int kNumTasks = 8;
constexpr int kRecordsPerTask = 8;
constexpr double kBaseMillisPerRecord = 2.0;

// Every record costs kBaseMillisPerRecord of wall time — except on the
// straggler machine: the *first* attempt of task 0 runs `skew`x slower.
// Any later attempt of task 0 (a retry or a speculative backup) lands on
// a healthy machine and runs at full speed.
class SlowMachineMapper : public Mapper {
 public:
  SlowMachineMapper(std::atomic<int>* task0_attempts, double skew)
      : task0_attempts_(task0_attempts), skew_(skew) {}

  Status Start(int task_id) override {
    if (task_id == 0) {
      straggling_ = task0_attempts_->fetch_add(1) == 0;
    }
    return OkStatus();
  }

  Status Map(const Record& input, const Emitter& emit) override {
    const double millis =
        kBaseMillisPerRecord * (straggling_ ? skew_ : 1.0);
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(millis * 1000.0)));
    emit(input);
    return OkStatus();
  }

 private:
  std::atomic<int>* task0_attempts_;
  const double skew_;
  bool straggling_ = false;
};

struct RunResult {
  double makespan_ms = 0.0;
  int64_t backup_attempts = 0;
  int64_t backups_won = 0;
  int64_t attempts_cancelled = 0;
};

RunResult RunOnce(bool speculate, double skew) {
  MapReduceSpec spec;
  spec.num_map_tasks = kNumTasks;
  spec.num_reduce_tasks = 0;  // map-only: isolate the map-phase makespan
  spec.max_parallel_tasks = kNumTasks;
  spec.speculative_backups = speculate;
  spec.speculation_commit_fraction = 0.75;
  std::atomic<int> task0_attempts{0};
  MapReduceJob job(
      spec,
      [&task0_attempts, skew] {
        return std::make_unique<SlowMachineMapper>(&task0_attempts, skew);
      },
      [] { return mapreduce::IdentityReducer(); });
  std::vector<Record> input;
  for (int i = 0; i < kNumTasks * kRecordsPerTask; ++i) {
    input.push_back({std::to_string(i), "v"});
  }
  auto start = std::chrono::steady_clock::now();
  auto out = job.Run(input);
  auto end = std::chrono::steady_clock::now();
  if (!out.ok() || out->size() != input.size()) {
    std::fprintf(stderr, "run failed or lost records\n");
    std::exit(1);
  }
  RunResult result;
  result.makespan_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.backup_attempts = job.stats().map_backup_attempts;
  result.backups_won = job.stats().map_backups_won;
  result.attempts_cancelled = job.stats().map_attempts_cancelled;
  return result;
}

}  // namespace

int main() {
  std::printf(
      "E19 speculative backups | %d map tasks x %d records, "
      "%.0fms/record, straggler = first attempt of task 0\n",
      kNumTasks, kRecordsPerTask, kBaseMillisPerRecord);
  std::printf("\n%-6s %-16s %-16s %-10s %-9s %-8s %-10s\n", "skew",
              "retry-only(ms)", "speculative(ms)", "reduction", "backups",
              "won", "cancelled");
  for (double skew : {5.0, 10.0, 20.0}) {
    RunResult retry_only = RunOnce(/*speculate=*/false, skew);
    RunResult speculative = RunOnce(/*speculate=*/true, skew);
    char reduction[16];
    std::snprintf(reduction, sizeof(reduction), "%.0f%%",
                  100.0 * (1.0 - speculative.makespan_ms /
                                     retry_only.makespan_ms));
    std::printf("%-6.0f %-16.1f %-16.1f %-10s %-9lld %-8lld %-10lld\n",
                skew, retry_only.makespan_ms, speculative.makespan_ms,
                reduction,
                static_cast<long long>(speculative.backup_attempts),
                static_cast<long long>(speculative.backups_won),
                static_cast<long long>(speculative.attempts_cancelled));
  }
  std::printf(
      "\nretry-only rides the slow attempt to completion; speculation "
      "clones the laggard once ~75%% of tasks commit and takes the "
      "first result (Dean & Ghemawat SS3.6)\n");
  return 0;
}
