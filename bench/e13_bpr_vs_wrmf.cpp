// E13: BPR vs. weighted least-squares (WR-MF) — "Although we chose BPR for
// its simplicity and extensibility with feature engineering, we can easily
// substitute it with the least-squares approach" (§VI of the paper,
// referring to Hu et al. [15]).
//
// Trains both solvers on the same retailers and compares hold-out quality,
// training wall time, and the cost of handling a brand-new user (BPR's
// context embedding is free; WR-MF needs a fold-in solve).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/wrmf.h"

using namespace sigmund;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  std::printf("E13 BPR vs WR-MF\n");
  std::printf("%-8s %-10s %-9s %-9s %-10s %-9s %-9s %-10s\n", "items",
              "solver", "map@10", "auc", "recall@10", "rank", "train(s)",
              "new-user");
  for (int items : {200, 600, 1200}) {
    data::RetailerWorld world = bench::MakeWorld(91 + items, items, 4.0);
    data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);

    // --- BPR (Sigmund's solver).
    auto start = std::chrono::steady_clock::now();
    core::TrainOutput bpr =
        bench::Train(world, split, bench::DefaultParams(16, 12));
    double bpr_seconds = Seconds(start);
    std::printf("%-8d %-10s %-9.4f %-9.4f %-10.4f %-9.1f %-9.2f %-10s\n",
                items, "bpr", bpr.metrics.map_at_k, bpr.metrics.auc,
                bpr.metrics.recall_at_k, bpr.metrics.mean_rank, bpr_seconds,
                "free*");

    // --- WR-MF (iALS).
    core::WrmfModel::Config config;
    config.num_factors = 16;
    config.iterations = 12;
    config.alpha = 20.0;
    start = std::chrono::steady_clock::now();
    core::WrmfModel wrmf =
        core::WrmfModel::Train(split.train, world.data.num_items(), config);
    double wrmf_seconds = Seconds(start);
    core::MetricSet metrics =
        wrmf.EvaluateHoldout(split.train, split.holdout, 10);

    // Fold-in latency for a new user.
    start = std::chrono::steady_clock::now();
    const int kFoldIns = 50;
    for (int n = 0; n < kFoldIns; ++n) {
      wrmf.FoldInUser(split.train[n % split.train.size()]);
    }
    double fold_in_ms = Seconds(start) * 1000.0 / kFoldIns;

    std::printf("%-8d %-10s %-9.4f %-9.4f %-10.4f %-9.1f %-9.2f %.2fms\n",
                items, "wrmf", metrics.map_at_k, metrics.auc,
                metrics.recall_at_k, metrics.mean_rank, wrmf_seconds,
                fold_in_ms);
  }
  std::printf(
      "\n* BPR represents users by their action context (Eq. 1), so a new\n"
      "  user needs no solve at all — one of the reasons Sigmund chose it\n"
      "  (§III-B2); quality is comparable, as §VI asserts.\n");
  return 0;
}
