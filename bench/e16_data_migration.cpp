// E16: data migration economics — "Since training using SGD iterates over
// the data multiple times, we simply migrate the training data to the data
// center where the computation is run. The cost of training is dominated
// by the CPU cost of making SGD steps, and the network cost of moving the
// data usually ends up producing a net benefit." (§IV-B1 of the paper.)
//
// Serializes real retailer shards, plans their placement across cells with
// spare pre-emptible capacity, and compares: (a) training at home on
// regular VMs (no movement) vs. (b) paying the network cost to move the
// shards and training on the cheap cells.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cost_model.h"
#include "pipeline/data_placement.h"
#include "sfs/mem_filesystem.h"

using namespace sigmund;

int main() {
  // A fleet of retailers with Pareto sizes.
  data::WorldConfig config;
  config.seed = 121;
  config.min_items = 50;
  config.max_items = 3000;
  config.num_retailers = 12;
  data::WorldGenerator generator(config);
  std::vector<data::RetailerWorld> worlds = generator.GenerateWorld();

  pipeline::RetailerRegistry registry;
  for (data::RetailerWorld& world : worlds) registry.Upsert(&world.data);

  sfs::MemFileSystem fs;
  pipeline::DataPlacementPlanner::Options options;
  options.cells = {"cheap-cell-1", "cheap-cell-2", "cheap-cell-3"};
  options.dollars_per_gb = 0.01;
  pipeline::DataPlacementPlanner planner(&fs, options);

  auto plan = planner.PlanPlacement(registry);
  sfs::FileTransferLedger ledger;
  SIGCHECK_OK(planner.Materialize(registry, plan, {}, &ledger));

  int64_t total_interactions = 0;
  for (const data::RetailerWorld& world : worlds) {
    total_interactions += world.data.TotalInteractions();
  }

  // Training compute: a full sweep (~100 configs x 20 epochs) over each
  // retailer's interactions, at ~3 us per SGD step on one core.
  const double sgd_steps = static_cast<double>(total_interactions) * 100 * 20;
  const double cpu_hours = sgd_steps * 3e-6 / 3600.0;
  cluster::CostModel cost(0.04, 0.70);
  const double regular_cost =
      cpu_hours * cost.PricePerCpuHour(cluster::VmPriority::kRegular);
  // Pre-emptible training redoes ~5% of work (checkpointed, from E5).
  const double preemptible_cost =
      cpu_hours * 1.05 *
      cost.PricePerCpuHour(cluster::VmPriority::kPreemptible);
  const double network_cost = planner.MigrationCost(ledger);

  std::printf("E16 data migration | %zu retailers, %lld interactions, "
              "%.2f MB shipped across cells\n",
              worlds.size(), static_cast<long long>(total_interactions),
              ledger.total_bytes() / (1024.0 * 1024.0));
  std::printf("per-cell SGD work: ");
  for (const auto& [cell, work] : plan.cell_work) {
    std::printf("%s=%lld ", cell.c_str(), static_cast<long long>(work));
  }
  std::printf("\n\n%-40s %12s\n", "option", "cost ($)");
  std::printf("%-40s %12.4f\n", "train at home (regular VMs, no move)",
              regular_cost);
  std::printf("%-40s %12.4f\n", "  = compute", regular_cost);
  std::printf("%-40s %12.4f\n",
              "migrate + train on preemptible cells",
              preemptible_cost + network_cost);
  std::printf("%-40s %12.4f\n", "  = compute (incl. 5% redone work)",
              preemptible_cost);
  std::printf("%-40s %12.6f\n", "  = network (data shards)", network_cost);
  std::printf("\nnet benefit of migrating: $%.4f (%.0f%% cheaper); network "
              "is %.3f%% of the migrated option\n",
              regular_cost - preemptible_cost - network_cost,
              100.0 * (1.0 - (preemptible_cost + network_cost) /
                                 regular_cost),
              100.0 * network_cost / (preemptible_cost + network_cost));
  std::printf("paper: \"the network cost of moving the data usually ends "
              "up producing a net benefit\" (§IV-B1)\n");
  return 0;
}
