#ifndef SIGMUND_BENCH_TRAJECTORY_H_
#define SIGMUND_BENCH_TRAJECTORY_H_

// Perf-trajectory gate (DESIGN.md §10): compares the BENCH_*.json files a
// benchmark run just produced against committed baselines with
// per-metric tolerance bands, so a PR that silently regresses goodput or
// inflates observability overhead fails CI instead of landing.
//
// A baseline is itself JSON (bench/baselines/*.json):
//
//   {
//     "bench": "e21_overload",
//     "mode": "quick",                       // quick | full | any
//     "results_file": "BENCH_overload.json",
//     "metrics": {
//       "acceptance.goodput_ratio": {"expect": 0.95,
//                                    "min_ratio": 0.9, "max_ratio": 1.2}
//     }
//   }
//
// A metric path is dotted; numeric segments index arrays
// ("curve.0.multiplier"). A metric violates its band when
// value < expect*min_ratio or value > expect*max_ratio; a missing results
// file or path is its own failure class so a renamed metric can't silently
// drop out of the gate. Deterministic SimClock metrics get tight bands;
// wall-clock ones get loose bands or are left out.

#include <string>
#include <utility>
#include <vector>

namespace sigmund::bench {

// A tiny recursive-descent JSON document — just enough to read benchmark
// result and baseline files. Numbers are doubles; object order is
// preserved. No dependency on anything outside the standard library.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_number() const { return type == Type::kNumber; }
  bool is_object() const { return type == Type::kObject; }
  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` into `*out`. On failure returns false and describes the
// problem (with byte offset) in `*error`.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Resolves a dotted path against a document: object segments are member
// names, all-digit segments index arrays. Returns nullptr when any
// segment is missing.
const JsonValue* FindPath(const JsonValue& root, const std::string& path);

// One gated metric: the committed expectation and the tolerated band
// around it, as ratios (min_ratio=0.9, max_ratio=1.15 tolerates -10%
// .. +15% drift before failing).
struct MetricBand {
  std::string path;
  double expect = 0.0;
  double min_ratio = 0.0;
  double max_ratio = 1e18;
};

// One committed baseline file.
struct Baseline {
  std::string bench;
  std::string mode = "any";  // which run shape this baseline gates
  std::string results_file;
  std::vector<MetricBand> metrics;
};

// Parses a baseline document. Returns false + error on malformed or
// incomplete input (missing bench/results_file/metrics).
bool ParseBaseline(const std::string& text, Baseline* out,
                   std::string* error);

struct TrajectoryIssue {
  std::string bench;
  std::string path;
  std::string message;
};

struct TrajectoryResult {
  int metrics_checked = 0;
  std::vector<TrajectoryIssue> violations;  // out-of-band values
  std::vector<TrajectoryIssue> missing;     // absent files/paths/numbers
  bool ok() const { return violations.empty() && missing.empty(); }
};

// Checks every metric of `baseline` against the parsed results document,
// appending to `result`.
void CheckTrajectory(const Baseline& baseline, const JsonValue& results,
                     TrajectoryResult* result);

// True when a baseline tagged `baseline_mode` applies to a run of
// `run_mode` ("quick"/"full"): "any" matches everything on either side.
bool ModeMatches(const std::string& baseline_mode,
                 const std::string& run_mode);

}  // namespace sigmund::bench

#endif  // SIGMUND_BENCH_TRAJECTORY_H_
