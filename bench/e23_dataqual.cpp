// E23: Data-plane sentry (DESIGN.md §12). Three questions about the feed
// validation layer that guards every retailer's daily retrain:
//
//  1. Detection — for each FeedCorruptor mode, poison day 1 of a seeded
//     world whose day 0 established the drift baseline, and count how
//     often the DataSentry quarantines. Acceptance: overall detection
//     rate >= 0.95 across modes and world sizes.
//  2. False quarantines — run clean multi-day worlds (several sizes, the
//     smallest far below the noise floor) through the sentry and count
//     quarantine verdicts. Acceptance: exactly zero.
//  3. Cost — wall-clock of BuildFeedProfile per million events, reported
//     for information (never gated: CI hardware jitter).
//
// Everything gated is a pure function of seeds, so a same-seed rerun must
// fingerprint-identical. Results land in BENCH_dataqual.json;
// bench/baselines/dataqual_quick.json gates detection and the
// zero-false-quarantine bar in CI via check_trajectory.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "data/world_generator.h"
#include "dataqual/corruptor.h"
#include "dataqual/feed_profile.h"
#include "dataqual/sentry.h"

using namespace sigmund;

namespace {

// The six real corruption modes (kNone excluded).
const dataqual::Corruption kModes[] = {
    dataqual::Corruption::kDuplicateEvents,
    dataqual::Corruption::kDropPartition,
    dataqual::Corruption::kBotFlood,
    dataqual::Corruption::kTimestampScramble,
    dataqual::Corruption::kCatalogTruncation,
    dataqual::Corruption::kActionFlip,
};
constexpr int kNumModes = 6;

struct DetectionResult {
  int64_t trials[kNumModes] = {};
  int64_t detected[kNumModes] = {};
  int64_t total_trials = 0;
  int64_t total_detected = 0;

  double Rate(int mode) const {
    return trials[mode] == 0
               ? 0.0
               : static_cast<double>(detected[mode]) /
                     static_cast<double>(trials[mode]);
  }
  double Overall() const {
    return total_trials == 0 ? 0.0
                             : static_cast<double>(total_detected) /
                                   static_cast<double>(total_trials);
  }
};

// One detection trial: day 0 of a fresh seeded world primes the sentry's
// last-good baseline, day 1 arrives poisoned by `mode`. Detected when the
// poisoned day quarantines; the clean day must never quarantine (that
// would be a false positive hiding inside the detection loop, so it
// aborts the bench).
bool RunDetectionTrial(dataqual::Corruption mode, uint64_t seed, int items) {
  data::WorldConfig config;
  config.seed = seed;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, items);

  dataqual::DataSentry sentry((dataqual::DataSentry::Options()));
  const dataqual::DataSentry::Observation day0 =
      sentry.Observe(dataqual::BuildFeedProfile(world.data));
  SIGCHECK(day0.verdict != dataqual::DataSentry::Verdict::kQuarantine);

  data::AdvanceOneDay(generator, &world, /*new_items=*/2, seed * 31 + 1);
  dataqual::FeedCorruptor::Options corruptor_options;
  corruptor_options.seed = seed;
  dataqual::FeedCorruptor corruptor(corruptor_options);
  const data::RetailerData poisoned =
      corruptor.Apply(world.data, mode, world.data.id, /*day=*/1);
  const dataqual::DataSentry::Observation day1 =
      sentry.Observe(dataqual::BuildFeedProfile(poisoned));
  return day1.verdict == dataqual::DataSentry::Verdict::kQuarantine;
}

DetectionResult RunDetection(const std::vector<int>& sizes, int seeds) {
  DetectionResult result;
  for (int m = 0; m < kNumModes; ++m) {
    for (int s = 0; s < seeds; ++s) {
      for (int items : sizes) {
        const bool hit =
            RunDetectionTrial(kModes[m], /*seed=*/9000 + s * 17, items);
        ++result.trials[m];
        ++result.total_trials;
        if (hit) {
          ++result.detected[m];
          ++result.total_detected;
        }
      }
    }
  }
  return result;
}

struct CleanResult {
  int64_t observations = 0;
  int64_t quarantines = 0;
  int64_t warns = 0;

  double FalseRate() const {
    return observations == 0 ? 0.0
                             : static_cast<double>(quarantines) /
                                   static_cast<double>(observations);
  }
};

// Clean worlds — including one far below the noise floor — evolved for
// `days` days each. Every observation must stay out of quarantine.
CleanResult RunCleanWorlds(const std::vector<int>& sizes, int days) {
  CleanResult result;
  for (size_t w = 0; w < sizes.size(); ++w) {
    data::WorldConfig config;
    config.seed = 300 + w;
    data::WorldGenerator generator(config);
    data::RetailerWorld world = generator.GenerateRetailer(
        static_cast<data::RetailerId>(w), sizes[w]);
    dataqual::DataSentry sentry((dataqual::DataSentry::Options()));
    for (int day = 0; day < days; ++day) {
      if (day > 0) {
        data::AdvanceOneDay(generator, &world, /*new_items=*/2,
                            /*seed=*/700 + day);
      }
      const dataqual::DataSentry::Observation obs =
          sentry.Observe(dataqual::BuildFeedProfile(world.data));
      ++result.observations;
      if (obs.verdict == dataqual::DataSentry::Verdict::kQuarantine) {
        ++result.quarantines;
      } else if (obs.verdict == dataqual::DataSentry::Verdict::kWarn) {
        ++result.warns;
      }
    }
  }
  return result;
}

struct CostResult {
  int64_t events_profiled = 0;
  double wall_micros = 0.0;
  double micros_per_million = 0.0;
  uint64_t profile_hash = 0;  // deterministic; only the timing is wall.
};

CostResult RunProfileCost(int items, int reps) {
  data::WorldConfig config;
  config.seed = 41;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, items);

  CostResult result;
  RealClock* wall = RealClock::Get();
  const int64_t t0 = wall->NowMicros();
  for (int r = 0; r < reps; ++r) {
    const dataqual::FeedProfile profile =
        dataqual::BuildFeedProfile(world.data);
    result.events_profiled += profile.events;
    result.profile_hash = Fnv1a64(profile.ToString(), result.profile_hash);
  }
  result.wall_micros = static_cast<double>(wall->NowMicros() - t0);
  result.micros_per_million =
      result.events_profiled == 0
          ? 0.0
          : result.wall_micros * 1e6 /
                static_cast<double>(result.events_profiled);
  return result;
}

// Fingerprint of everything gated: per-mode detection counts, the clean
// verdict tallies, and the profile content hash. Wall-clock excluded.
uint64_t Fingerprint(const DetectionResult& detection, const CleanResult& clean,
                     const CostResult& cost) {
  uint64_t h = kFnv64OffsetBasis;
  for (int m = 0; m < kNumModes; ++m) {
    h = Fnv1a64(StrFormat("%s|%lld|%lld", CorruptionName(kModes[m]),
                          static_cast<long long>(detection.trials[m]),
                          static_cast<long long>(detection.detected[m])),
                h);
  }
  h = Fnv1a64(StrFormat("%lld|%lld|%lld",
                        static_cast<long long>(clean.observations),
                        static_cast<long long>(clean.quarantines),
                        static_cast<long long>(clean.warns)),
              h);
  h = Fnv1a64Mix(h, cost.profile_hash);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Detection worlds sit above the noise floor (a quarantine is only
  // allowed there); the clean sweep adds a deliberately tiny world below
  // it to exercise the warn-capping path.
  const std::vector<int> detect_sizes =
      quick ? std::vector<int>{120, 260} : std::vector<int>{120, 260, 600};
  const std::vector<int> clean_sizes =
      quick ? std::vector<int>{12, 120, 300}
            : std::vector<int>{12, 120, 300, 900};
  const int detect_seeds = quick ? 2 : 4;
  const int clean_days = quick ? 5 : 8;
  const int cost_items = quick ? 400 : 1500;
  const int cost_reps = quick ? 20 : 50;

  std::printf("e23_dataqual: sentry detection / false-quarantine / cost (%s "
              "run)\n",
              quick ? "quick" : "full");

  auto run_all = [&](DetectionResult* detection, CleanResult* clean,
                     CostResult* cost) {
    *detection = RunDetection(detect_sizes, detect_seeds);
    *clean = RunCleanWorlds(clean_sizes, clean_days);
    *cost = RunProfileCost(cost_items, cost_reps);
  };
  DetectionResult detection;
  CleanResult clean;
  CostResult cost;
  run_all(&detection, &clean, &cost);

  for (int m = 0; m < kNumModes; ++m) {
    std::printf("detection %-20s %lld/%lld (%.3f)\n",
                CorruptionName(kModes[m]),
                static_cast<long long>(detection.detected[m]),
                static_cast<long long>(detection.trials[m]),
                detection.Rate(m));
  }
  std::printf("detection overall: %.3f (%lld/%lld)\n", detection.Overall(),
              static_cast<long long>(detection.total_detected),
              static_cast<long long>(detection.total_trials));
  std::printf("clean worlds: %lld observations, %lld quarantines, %lld "
              "warns (false-quarantine rate %.4f)\n",
              static_cast<long long>(clean.observations),
              static_cast<long long>(clean.quarantines),
              static_cast<long long>(clean.warns), clean.FalseRate());
  std::printf("profile cost: %lld events in %.0fus — %.0fus per million "
              "events (informational)\n",
              static_cast<long long>(cost.events_profiled), cost.wall_micros,
              cost.micros_per_million);

  // The acceptance bar, enforced in the binary as well as the baseline.
  SIGCHECK(detection.Overall() >= 0.95);
  SIGCHECK(clean.quarantines == 0);

  // Same-seed rerun must be byte-identical on every gated number.
  DetectionResult rerun_detection;
  CleanResult rerun_clean;
  CostResult rerun_cost;
  run_all(&rerun_detection, &rerun_clean, &rerun_cost);
  const uint64_t hash = Fingerprint(detection, clean, cost);
  const uint64_t rerun_hash =
      Fingerprint(rerun_detection, rerun_clean, rerun_cost);
  SIGCHECK(hash == rerun_hash);
  std::printf("determinism: %016llx == %016llx\n",
              static_cast<unsigned long long>(hash),
              static_cast<unsigned long long>(rerun_hash));

  std::string json = "{\n  \"bench\": \"e23_dataqual\",\n";
  json += StrFormat("  \"quick\": %s,\n", quick ? "true" : "false");
  json += "  \"detection\": {";
  for (int m = 0; m < kNumModes; ++m) {
    json += StrFormat("\"%s\": %.6f, ", CorruptionName(kModes[m]),
                      detection.Rate(m));
  }
  json += StrFormat("\"overall\": %.6f, \"trials\": %lld},\n",
                    detection.Overall(),
                    static_cast<long long>(detection.total_trials));
  json += StrFormat(
      "  \"false_quarantine\": {\"count\": %lld, \"rate\": %.6f, "
      "\"observations\": %lld, \"warns\": %lld},\n",
      static_cast<long long>(clean.quarantines), clean.FalseRate(),
      static_cast<long long>(clean.observations),
      static_cast<long long>(clean.warns));
  json += StrFormat(
      "  \"profile_cost_informational\": {\"events\": %lld, "
      "\"wall_micros\": %.0f, \"micros_per_million_events\": %.0f},\n",
      static_cast<long long>(cost.events_profiled), cost.wall_micros,
      cost.micros_per_million);
  json += StrFormat(
      "  \"determinism\": {\"hash\": \"%016llx\", \"rerun_hash\": "
      "\"%016llx\", \"identical\": true}\n}\n",
      static_cast<unsigned long long>(hash),
      static_cast<unsigned long long>(rerun_hash));

  std::FILE* out = std::fopen("BENCH_dataqual.json", "w");
  SIGCHECK(out != nullptr);
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("wrote BENCH_dataqual.json\n");
  return 0;
}
