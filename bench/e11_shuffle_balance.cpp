// E11: Random permutation of config records balances the training
// MapReduce — "The input config records are randomly permuted before being
// written ... We also rely on this randomization strategy to balance the
// work within a MapReduce job. Workers assigned small retailers process
// more training tasks, and those with larger retailers process fewer
// training tasks in a single job." (§IV-B1 of the paper.)
//
// Simulates a training job whose per-record cost is proportional to the
// retailer's interaction count, split contiguously into map tasks, under
// three input orders: sorted by retailer (adversarial-but-natural, as a
// sweep planner would naturally emit), random permutation (Sigmund), and
// the unreachable ideal (total/machines).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cluster/simulation.h"
#include "common/random.h"
#include "data/world_generator.h"
#include "mapreduce/mapreduce.h"

using namespace sigmund;

namespace {

// Makespan of list-scheduling the map-task chunks on `machines` machines.
double Makespan(const std::vector<double>& record_costs, int map_tasks,
                int machines) {
  auto splits = mapreduce::ComputeSplits(
      static_cast<int64_t>(record_costs.size()), map_tasks);
  std::vector<cluster::SimTask> tasks;
  for (size_t t = 0; t < splits.size(); ++t) {
    double cost = 0;
    for (int64_t i = splits[t].first; i < splits[t].second; ++i) {
      cost += record_costs[i];
    }
    tasks.push_back({static_cast<int64_t>(t), cost});
  }
  cluster::Cell cell = cluster::Cell::Uniform("c", machines, 4, 32);
  cluster::SimJobRunner runner(cell, cluster::CostModel());
  cluster::SimJobConfig config;
  config.checkpoint_interval_seconds = 0;
  return runner.Run(tasks, config).makespan_seconds;
}

}  // namespace

int main() {
  // 40 retailers x 12 configs each; config cost ~ retailer interactions.
  data::WorldConfig config;
  config.min_items = 50;
  config.max_items = 10000;
  data::WorldGenerator generator(config);
  Rng rng(7);
  std::vector<double> sorted_costs;
  for (int r = 0; r < 40; ++r) {
    int items = generator.SampleCatalogSize(&rng);
    double cost_per_config = items * 0.02;  // seconds, ~interactions
    for (int m = 0; m < 12; ++m) sorted_costs.push_back(cost_per_config);
  }
  double total = 0;
  for (double c : sorted_costs) total += c;

  std::vector<double> shuffled = sorted_costs;
  Rng shuffle_rng(42);
  shuffle_rng.Shuffle(&shuffled);

  const int kMachines = 8;
  std::printf("E11 shuffle balance | %zu config records, %.0fs total work, "
              "%d machines\n",
              sorted_costs.size(), total, kMachines);
  std::printf("\n%-10s %-24s %-24s %-10s\n", "map-tasks", "sorted-makespan(s)",
              "shuffled-makespan(s)", "ideal(s)");
  for (int map_tasks : {8, 16, 32, 64}) {
    double sorted_makespan = Makespan(sorted_costs, map_tasks, kMachines);
    double shuffled_makespan = Makespan(shuffled, map_tasks, kMachines);
    std::printf("%-10d %-24.0f %-24.0f %-10.0f\n", map_tasks,
                sorted_makespan, shuffled_makespan, total / kMachines);
  }
  std::printf("\npaper: random permutation spreads the heavy retailers "
              "across tasks; sorted input concentrates them in a few "
              "stragglers (§IV-B1)\n");
  return 0;
}
