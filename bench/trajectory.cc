#include "bench/trajectory.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace sigmund::bench {
namespace {

// Recursive-descent parser over a byte cursor. Accepts strict JSON plus
// the one extension benchmark files rely on: nothing. Keeps errors
// byte-addressed so a malformed baseline is easy to fix.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = StrFormat("%s at byte %zu", what.c_str(), pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeWord("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return true;
    }
    if (ConsumeWord("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return true;
    }
    if (ConsumeWord("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber(out);
    }
    return Fail(StrFormat("unexpected character '%c'", c));
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Benchmark files never emit non-ASCII; decode the BMP code
          // point as a single byte when it fits, '?' otherwise.
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return Fail("bad \\u escape");
          out->push_back(code < 128 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      pos_ = start;
      return Fail("bad number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool IsIndex(const std::string& segment) {
  if (segment.empty()) return false;
  for (char c : segment) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

double ReadRatio(const JsonValue& band, const char* key, double fallback) {
  const JsonValue* value = band.Find(key);
  return value != nullptr && value->is_number() ? value->number : fallback;
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

const JsonValue* FindPath(const JsonValue& root, const std::string& path) {
  const JsonValue* node = &root;
  size_t start = 0;
  while (start <= path.size()) {
    const size_t dot = path.find('.', start);
    const std::string segment =
        path.substr(start, dot == std::string::npos ? dot : dot - start);
    if (node->type == JsonValue::Type::kArray && IsIndex(segment)) {
      const size_t index = static_cast<size_t>(std::strtoul(
          segment.c_str(), nullptr, 10));
      if (index >= node->array.size()) return nullptr;
      node = &node->array[index];
    } else {
      node = node->Find(segment);
      if (node == nullptr) return nullptr;
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return node;
}

bool ParseBaseline(const std::string& text, Baseline* out,
                   std::string* error) {
  JsonValue doc;
  if (!ParseJson(text, &doc, error)) return false;
  const JsonValue* bench = doc.Find("bench");
  const JsonValue* results_file = doc.Find("results_file");
  const JsonValue* metrics = doc.Find("metrics");
  if (bench == nullptr || bench->type != JsonValue::Type::kString ||
      results_file == nullptr ||
      results_file->type != JsonValue::Type::kString) {
    if (error != nullptr) *error = "baseline needs bench + results_file";
    return false;
  }
  if (metrics == nullptr || !metrics->is_object() ||
      metrics->object.empty()) {
    if (error != nullptr) *error = "baseline needs non-empty metrics";
    return false;
  }
  out->bench = bench->string_value;
  out->results_file = results_file->string_value;
  const JsonValue* mode = doc.Find("mode");
  out->mode = mode != nullptr && mode->type == JsonValue::Type::kString
                  ? mode->string_value
                  : "any";
  out->metrics.clear();
  for (const auto& [path, band] : metrics->object) {
    const JsonValue* expect = band.Find("expect");
    if (expect == nullptr || !expect->is_number()) {
      if (error != nullptr) {
        *error = StrFormat("metric %s needs a numeric expect", path.c_str());
      }
      return false;
    }
    MetricBand metric;
    metric.path = path;
    metric.expect = expect->number;
    metric.min_ratio = ReadRatio(band, "min_ratio", 0.0);
    metric.max_ratio = ReadRatio(band, "max_ratio", 1e18);
    out->metrics.push_back(std::move(metric));
  }
  return true;
}

void CheckTrajectory(const Baseline& baseline, const JsonValue& results,
                     TrajectoryResult* result) {
  for (const MetricBand& metric : baseline.metrics) {
    ++result->metrics_checked;
    const JsonValue* value = FindPath(results, metric.path);
    if (value == nullptr || !value->is_number()) {
      result->missing.push_back(
          {baseline.bench, metric.path,
           value == nullptr ? "path missing from results"
                            : "value is not a number"});
      continue;
    }
    // Bands are ratios of the expectation's magnitude, so they behave
    // for the (rare) negative expectation too.
    const double scale = std::fabs(metric.expect);
    const double lo = metric.expect - (1.0 - metric.min_ratio) * scale;
    const double hi = metric.expect + (metric.max_ratio - 1.0) * scale;
    if (value->number < lo || value->number > hi) {
      result->violations.push_back(
          {baseline.bench, metric.path,
           StrFormat("value %.4f outside [%.4f, %.4f] (expect %.4f, "
                     "ratios %.2f..%.2f)",
                     value->number, lo, hi, metric.expect, metric.min_ratio,
                     metric.max_ratio)});
    }
  }
}

bool ModeMatches(const std::string& baseline_mode,
                 const std::string& run_mode) {
  return baseline_mode == "any" || run_mode == "any" ||
         baseline_mode == run_mode;
}

}  // namespace sigmund::bench
