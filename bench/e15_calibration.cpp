// E15: relevance calibration — the paper's future work (§VII): "combine
// the advantages of a BPR-style ranking objective with the ability to
// provide a relevance score that can be compared to a threshold" for
// display decisions.
//
// Fits Platt scaling on simulated click logs over BPR scores, then
// reports (a) a reliability table (predicted click probability vs.
// empirical CTR on held-out impressions) and (b) the display-threshold
// trade-off: how much impression volume is given up for how much CTR.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/candidate_selector.h"
#include "core/inference.h"
#include "data/ctr_simulator.h"

using namespace sigmund;

int main() {
  data::RetailerWorld world = bench::MakeWorld(111, 600, 4.0);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  core::TrainOutput trained =
      bench::Train(world, split, bench::DefaultParams(16, 12));
  std::printf("E15 calibration | model: %s\n",
              trained.metrics.ToString().c_str());

  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      split.train, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      split.train, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  core::InferenceEngine engine(&trained.model, &selector);
  data::CtrSimulator simulator(&world.truth, {});

  // Collect (score, clicked) impressions: each user's top-10 list plus an
  // equal volume of exploration impressions (random items), as a real
  // serving log would contain; every impression is scored in isolation
  // (position 0) so the calibrator learns P(click | score) without
  // position effects.
  std::vector<double> fit_scores, eval_scores;
  std::vector<bool> fit_clicked, eval_clicked;
  core::InferenceEngine::Options options;
  options.top_k = 10;
  Rng rng(7);
  std::vector<float> user_vec(trained.model.dim());
  for (data::UserIndex u = 0; u < world.data.num_users(); ++u) {
    if (split.train[u].size() < 2) continue;
    data::ItemIndex query = split.train[u].back().item;
    core::ItemRecommendations recs = engine.RecommendForItem(query, options);
    const bool fit_half = (u % 2) == 0;
    auto log_impression = [&](data::ItemIndex item, double score) {
      bool clicked = rng.Bernoulli(simulator.ClickProbability(u, item, 0));
      (fit_half ? fit_scores : eval_scores).push_back(score);
      (fit_half ? fit_clicked : eval_clicked).push_back(clicked);
    };
    for (const core::ScoredItem& item : recs.view_based) {
      log_impression(item.item, item.score);
    }
    // Exploration traffic.
    trained.model.UserEmbedding(
        core::Context{{query, data::ActionType::kView}}, user_vec.data());
    for (size_t n = 0; n < recs.view_based.size(); ++n) {
      data::ItemIndex random_item =
          static_cast<data::ItemIndex>(rng.Uniform(world.data.num_items()));
      log_impression(random_item,
                     trained.model.Score(user_vec.data(), random_item));
    }
  }
  StatusOr<core::ScoreCalibrator> calibrator =
      core::ScoreCalibrator::Fit(fit_scores, fit_clicked);
  SIGCHECK(calibrator.ok());
  std::printf("fitted sigmoid: P(click) = sigmoid(%.3f * score %+.3f) on "
              "%zu impressions\n",
              calibrator->slope(), calibrator->intercept(),
              fit_scores.size());

  // --- Reliability on the held-out half.
  std::printf("\nreliability (held-out impressions, %zu):\n",
              eval_scores.size());
  std::printf("%-18s %-12s %-12s %-8s\n", "predicted-p", "empirical",
              "impressions", "");
  constexpr int kBuckets = 6;
  std::vector<double> click_sum(kBuckets, 0), pred_sum(kBuckets, 0);
  std::vector<int64_t> count(kBuckets, 0);
  for (size_t n = 0; n < eval_scores.size(); ++n) {
    double p = calibrator->Probability(eval_scores[n]);
    int bucket = std::min(kBuckets - 1, static_cast<int>(p * kBuckets));
    pred_sum[bucket] += p;
    click_sum[bucket] += eval_clicked[n] ? 1.0 : 0.0;
    ++count[bucket];
  }
  for (int b = 0; b < kBuckets; ++b) {
    if (count[b] == 0) continue;
    std::printf("[%.2f, %.2f)%8s %-12.3f %-12lld\n",
                static_cast<double>(b) / kBuckets,
                static_cast<double>(b + 1) / kBuckets, "",
                click_sum[b] / count[b], static_cast<long long>(count[b]));
  }

  // --- Display-threshold trade-off.
  std::printf("\ndisplay threshold sweep (held-out):\n");
  std::printf("%-11s %-10s %-10s\n", "threshold", "shown", "ctr");
  for (double threshold : {0.0, 0.4, 0.5, 0.6, 0.7, 0.75}) {
    int64_t shown = 0, clicks = 0;
    for (size_t n = 0; n < eval_scores.size(); ++n) {
      if (!calibrator->ShouldDisplay(eval_scores[n], threshold)) continue;
      ++shown;
      clicks += eval_clicked[n] ? 1 : 0;
    }
    std::printf("%-11.1f %-10.3f %-10.3f\n", threshold,
                static_cast<double>(shown) / eval_scores.size(),
                shown > 0 ? static_cast<double>(clicks) / shown : 0.0);
  }
  std::printf("\npaper (§VII, future work): a threshold-comparable "
              "relevance score lets the server suppress weak "
              "recommendations instead of always showing top-K\n");
  return 0;
}
