// The serving path (§II-A): materialized recommendations behind a
// two-tier (memory + flash) store, fronted by the request handler that
// routes by purchase stage and shopping-funnel stage and applies a
// calibrated display threshold.

#include <cstdio>

#include "common/logging.h"
#include "core/candidate_selector.h"
#include "core/grid_search.h"
#include "data/world_generator.h"
#include "serving/admission.h"
#include "serving/frontend.h"
#include "serving/loadgen.h"
#include "serving/tiered_store.h"
#include "sfs/mem_filesystem.h"

using namespace sigmund;  // example code; library code never does this

namespace {

void Show(const char* label,
          const StatusOr<serving::RecommendationResponse>& response) {
  if (!response.ok()) {
    std::printf("%-28s %s\n", label, response.status().ToString().c_str());
    return;
  }
  std::printf("%-28s funnel=%-5s post_purchase=%d suppressed=%d ->", label,
              core::FunnelStageName(response->funnel),
              response->post_purchase ? 1 : 0,
              response->suppressed_by_threshold);
  for (const core::ScoredItem& item : response->items) {
    std::printf(" %d", item.item);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // --- Offline: train one retailer and materialize recommendations with
  // the late-funnel variant included.
  data::WorldConfig config;
  config.seed = 21;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 300);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);

  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params.num_factors = 16;
  request.params.num_epochs = 10;
  StatusOr<core::TrainOutput> trained = core::TrainOneModel(request);
  SIGCHECK(trained.ok());

  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      world.data.histories, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      world.data.histories, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  core::InferenceEngine engine(&trained->model, &selector);
  core::InferenceEngine::Options options;
  options.top_k = 5;
  options.materialize_late_funnel = true;
  std::vector<core::ItemRecommendations> recs =
      engine.MaterializeAll(options);

  // --- Serving: load the in-memory store (frontend source of truth) and
  // the two-tier store (capacity planning view).
  serving::RecommendationStore store;
  {
    std::vector<core::ItemRecommendations> copy = recs;
    store.LoadRetailer(0, std::move(copy));
  }
  sfs::MemFileSystem flash;
  serving::TieredStore tiered(&flash, {});
  SIGCHECK_OK(tiered.LoadRetailer(0, recs, world.data.ItemPopularity()));
  auto footprint = tiered.RetailerFootprint(0);
  SIGCHECK(footprint.ok());
  std::printf("tiered store: %lld items pinned hot, %lld on flash\n",
              static_cast<long long>(footprint->hot_items),
              static_cast<long long>(footprint->flash_items));

  // Calibrate display decisions on the model's own score scale.
  std::vector<double> scores = {-1.0, -0.5, 0.5, 1.0, 1.5, 2.0};
  std::vector<bool> clicked = {false, false, true, true, true, true};
  StatusOr<core::ScoreCalibrator> calibrator =
      core::ScoreCalibrator::Fit(scores, clicked);
  SIGCHECK(calibrator.ok());
  serving::Frontend frontend(&store, &*calibrator);

  // --- Requests across the shopping journey for item 3's shopper.
  serving::RecommendationRequest req;
  req.retailer = 0;
  req.max_results = 5;

  req.context = {{3, data::ActionType::kView}};
  Show("early browse:", frontend.Handle(req));

  req.context = {{3, data::ActionType::kView},
                 {8, data::ActionType::kView},
                 {3, data::ActionType::kView}};
  Show("late funnel (repeat views):", frontend.Handle(req));

  req.context = {{3, data::ActionType::kConversion}};
  Show("post purchase:", frontend.Handle(req));

  // Threshold at the calibrated probability of the 3rd-ranked item: the
  // tail of the list is suppressed, the confident head survives.
  req.context = {{3, data::ActionType::kView}};
  StatusOr<serving::RecommendationResponse> unthresholded =
      frontend.Handle(req);
  SIGCHECK(unthresholded.ok() && unthresholded->items.size() >= 3);
  std::printf("calibrated click probabilities:");
  for (const core::ScoredItem& item : unthresholded->items) {
    std::printf(" %d:%.2f", item.item, calibrator->Probability(item.score));
  }
  std::printf("\n");
  req.display_threshold =
      calibrator->Probability(unthresholded->items[2].score) - 1e-9;
  Show("thresholded (keep top-3 p):", frontend.Handle(req));

  // Tiered lookups: hot vs. cold.
  auto pop = world.data.ItemPopularity();
  data::ItemIndex hot = 0, cold = 0;
  for (data::ItemIndex i = 1; i < world.data.num_items(); ++i) {
    if (pop[i] > pop[hot]) hot = i;
    if (pop[i] < pop[cold]) cold = i;
  }
  SIGCHECK(tiered.Lookup(0, hot, serving::RecommendationKind::kViewBased).ok());
  SIGCHECK(
      tiered.Lookup(0, cold, serving::RecommendationKind::kViewBased).ok());
  auto stats = tiered.stats();
  std::printf("tiered lookups: memory_hits=%lld flash_reads=%lld "
              "(simulated flash time %lldus)\n",
              static_cast<long long>(stats.memory_hits),
              static_cast<long long>(stats.flash_reads),
              static_cast<long long>(stats.simulated_flash_micros));

  // --- Overload: the same frontend behind an admission controller
  // (DESIGN.md §8). With the only two slots taken, a request sheds with
  // kResourceExhausted; under sustained pressure the brownout ladder
  // serves the cached last-known-good list without touching the store.
  SimClock clock;
  serving::AdmissionController::Options admission_options;
  admission_options.limiter.initial_limit = 2;
  admission_options.limiter.min_limit = 2;
  admission_options.limiter.max_limit = 2;
  admission_options.pressure_alpha = 0.02;  // slow EWMA: pressure lingers
  serving::AdmissionController admission(admission_options, nullptr, &clock);
  serving::Frontend::Options overload_options;
  overload_options.admission = &admission;
  overload_options.brownout_max_results = 2;
  serving::Frontend protected_frontend(&store, &*calibrator, nullptr, &clock,
                                       overload_options);
  req.display_threshold = 0.0;
  Show("admitted (plane idle):", protected_frontend.Handle(req));
  admission.Offer(0, serving::RequestPriority::kUserFacing, 0, false);
  admission.Offer(0, serving::RequestPriority::kUserFacing, 0, false);
  Show("shed (plane full):", protected_frontend.Handle(req));
  for (int i = 0; i < 500; ++i) {  // sustained saturation -> pressure ~1
    admission.Offer(0, serving::RequestPriority::kUserFacing, 0, false);
  }
  admission.Release(1000);  // one slot free, pressure still ~1: brownout
  StatusOr<serving::RecommendationResponse> browned =
      protected_frontend.Handle(req);
  SIGCHECK(browned.ok() && browned->brownout_rung == 3);
  Show("brownout rung 3 (LKG):", browned);

  // The goodput story at a glance: 3x capacity offered, admission keeps
  // the plane out of congestion collapse (full curve: bench/e21_overload).
  serving::LoadGenOptions load;
  load.seed = 21;
  load.duration_seconds = 2.0;
  load.open_rps = 24000.0;
  load.probe_rps = 50.0;
  load.admission.queue_capacity = 64;
  load.admission.limiter.max_limit = 2048;
  serving::LoadGenReport report = serving::RunLoadGenerator(load);
  std::printf(
      "overload (3x capacity): offered=%.0f rps goodput=%.0f rps p99=%.1fms "
      "shed(user)=%lld shed(probe)=%lld\n",
      report.offered_rps, report.goodput_rps,
      report.p99_latency_micros / 1000.0,
      static_cast<long long>(
          report.priorities[static_cast<int>(
                                serving::RequestPriority::kUserFacing)]
              .shed),
      static_cast<long long>(
          report.priorities[static_cast<int>(
                                serving::RequestPriority::kHealthProbe)]
              .shed));
  return 0;
}
