// Head/tail hybrid: co-occurrence for popular items, factorization for
// the long tail (§III-E, §VII of the paper).
//
// Prints, for the most- and least-popular items, what each recommender
// produces, and the inventory coverage of pure co-occurrence vs. the
// hybrid.

#include <cstdio>

#include "core/candidate_selector.h"
#include "common/logging.h"
#include "core/grid_search.h"
#include "core/hybrid.h"
#include "data/world_generator.h"

using namespace sigmund;  // example code; library code never does this

namespace {

void PrintList(const char* label, const std::vector<core::ScoredItem>& list) {
  std::printf("  %-14s", label);
  if (list.empty()) std::printf(" (nothing)");
  for (const core::ScoredItem& item : list) {
    std::printf(" %d(%.2f)", item.item, item.score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  data::WorldConfig config;
  config.seed = 17;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 600);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);

  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params.num_factors = 16;
  request.params.num_epochs = 12;
  StatusOr<core::TrainOutput> trained = core::TrainOneModel(request);
  SIGCHECK(trained.ok());

  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      world.data.histories, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      world.data.histories, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  core::InferenceEngine engine(&trained->model, &selector);
  core::HybridRecommender hybrid(&cooccurrence, &engine);

  core::HybridRecommender::Options options;
  options.top_k = 5;
  options.min_pair_count = 3;

  auto by_popularity = cooccurrence.ItemsByPopularity();
  data::ItemIndex head = by_popularity.front();
  data::ItemIndex tail = by_popularity.back();

  std::printf("HEAD item %d (%lld views):\n", head,
              static_cast<long long>(cooccurrence.view_counts()[head]));
  std::vector<core::ScoredItem> head_coocc;
  for (const auto& n : cooccurrence.CoViewed(head)) {
    if (n.count >= options.min_pair_count) {
      head_coocc.push_back({n.item, n.score});
    }
    if (head_coocc.size() >= 5) break;
  }
  PrintList("co-occurrence:", head_coocc);
  core::InferenceEngine::Options inference;
  inference.top_k = 5;
  PrintList("factorization:",
            engine.RecommendForItem(head, inference).view_based);
  PrintList("hybrid:", hybrid.ViewBased(head, options));

  std::printf("\nTAIL item %d (%lld views):\n", tail,
              static_cast<long long>(cooccurrence.view_counts()[tail]));
  std::vector<core::ScoredItem> tail_coocc;
  for (const auto& n : cooccurrence.CoViewed(tail)) {
    if (n.count >= options.min_pair_count) {
      tail_coocc.push_back({n.item, n.score});
    }
  }
  PrintList("co-occurrence:", tail_coocc);
  PrintList("factorization:",
            engine.RecommendForItem(tail, inference).view_based);
  PrintList("hybrid:", hybrid.ViewBased(tail, options));

  // Inventory coverage: fraction of items with a full top-5 list.
  std::vector<std::vector<core::ScoredItem>> coocc_lists, hybrid_lists;
  for (data::ItemIndex i = 0; i < world.data.num_items(); ++i) {
    std::vector<core::ScoredItem> coocc;
    for (const auto& n : cooccurrence.CoViewed(i)) {
      if (n.count >= options.min_pair_count) coocc.push_back({n.item, n.score});
      if (static_cast<int>(coocc.size()) >= options.top_k) break;
    }
    coocc_lists.push_back(std::move(coocc));
    hybrid_lists.push_back(hybrid.ViewBased(i, options));
  }
  std::printf("\ncoverage (full top-5 lists): co-occurrence %.1f%% vs "
              "hybrid %.1f%%\n",
              100.0 * core::HybridRecommender::Coverage(coocc_lists, 5),
              100.0 * core::HybridRecommender::Coverage(hybrid_lists, 5));
  std::printf("-> \"using co-occurrence for the popular items, and "
              "augmenting ... from factorization ... covers a much larger "
              "fraction of the inventory\" (§VII)\n");
  return 0;
}
