// Cold start: how taxonomy features place brand-new items sensibly.
//
// The paper (§III-B4) uses a hierarchical additive item model so "the item
// embedding for an iPhone 6 needs to be similar to the embedding for an
// iPhone 6s, and for the upcoming iPhone 7s". We demonstrate exactly that:
// after training, we add items the model has never seen an interaction
// for, and compare how a taxonomy-aware model vs. a plain matrix
// factorization scores them against user contexts that like the item's
// category.

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "core/grid_search.h"
#include "data/world_generator.h"

using namespace sigmund;  // example code; library code never does this

namespace {

// Mean score margin of a category's cold item over a random cold item,
// across users whose history concentrates in that category.
double ColdItemAdvantage(const core::BprModel& model,
                         const data::RetailerWorld& world,
                         const data::TrainTestSplit& split,
                         data::ItemIndex cold_item, Rng* rng) {
  const data::Catalog& catalog = world.data.catalog;
  data::CategoryId category = catalog.item(cold_item).category;
  std::vector<float> user_vec(model.dim());
  double margin = 0.0;
  int n = 0;
  for (data::UserIndex u = 0; u < world.data.num_users(); ++u) {
    const auto& history = split.train[u];
    if (history.size() < 3) continue;
    // Does this user's history concentrate in the cold item's category?
    int in_category = 0;
    core::Context context;
    for (const data::Interaction& event : history) {
      if (catalog.item(event.item).category == category) ++in_category;
      context.push_back({event.item, event.action});
    }
    if (in_category * 2 < static_cast<int>(history.size())) continue;
    model.UserEmbedding(context, user_vec.data());
    data::ItemIndex random_item =
        static_cast<data::ItemIndex>(rng->Uniform(world.data.num_items()));
    margin += model.Score(user_vec.data(), cold_item) -
              model.Score(user_vec.data(), random_item);
    ++n;
  }
  return n > 0 ? margin / n : 0.0;
}

}  // namespace

int main() {
  data::WorldConfig config;
  config.seed = 11;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 400);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);

  // Train twice: with and without taxonomy features.
  auto train = [&](bool use_taxonomy) {
    core::TrainRequest request;
    request.catalog = &world.data.catalog;
    request.train_histories = &split.train;
    request.holdout = &split.holdout;
    request.params.num_factors = 16;
    request.params.use_taxonomy = use_taxonomy;
    request.params.num_epochs = 12;
    StatusOr<core::TrainOutput> output = core::TrainOneModel(request);
    SIGCHECK(output.ok());
    return std::move(output).value();
  };
  core::TrainOutput with_taxonomy = train(true);
  core::TrainOutput without_taxonomy = train(false);
  std::printf("with taxonomy:    %s\n",
              with_taxonomy.metrics.ToString().c_str());
  std::printf("without taxonomy: %s\n",
              without_taxonomy.metrics.ToString().c_str());

  // Introduce 10 brand-new items (zero interactions) into the catalog.
  Rng rng(5);
  data::AdvanceOneDay(generator, &world, /*new_items=*/10, /*seed=*/99);
  // Grow both models for the new catalog; new rows are random (no
  // training on them!), so only shared structure can place them.
  Rng grow_rng(7);
  with_taxonomy.model.ResizeForCatalog(&grow_rng);
  without_taxonomy.model.ResizeForCatalog(&grow_rng);

  std::printf("\ncold-item advantage (score margin for category fans over "
              "random items):\n");
  double tax_total = 0, plain_total = 0;
  for (data::ItemIndex cold = 400; cold < 410; ++cold) {
    double tax =
        ColdItemAdvantage(with_taxonomy.model, world, split, cold, &rng);
    double plain =
        ColdItemAdvantage(without_taxonomy.model, world, split, cold, &rng);
    tax_total += tax;
    plain_total += plain;
    std::printf("  new item %d (category %d): taxonomy %+.3f | plain %+.3f\n",
                cold, world.data.catalog.item(cold).category, tax, plain);
  }
  std::printf("mean: taxonomy %+.3f | plain %+.3f\n", tax_total / 10,
              plain_total / 10);
  std::printf("-> the hierarchical additive model gives unseen items a "
              "useful prior from their category; plain MF cannot.\n");
  return 0;
}
