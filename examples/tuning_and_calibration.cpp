// Advanced model management: budget-aware hyper-parameter tuning,
// the least-squares alternative solver, and calibrated display decisions.
//
// Exercises the three "beyond the paper's deployed system" APIs that the
// paper itself points to: successive halving (its Vizier discussion,
// §III-C1), WR-MF (its §VI substitutability remark) and score calibration
// (its §VII future work).

#include <cstdio>

#include "common/logging.h"
#include "core/calibration.h"
#include "core/tuner.h"
#include "core/wrmf.h"
#include "data/ctr_simulator.h"
#include "data/world_generator.h"

using namespace sigmund;  // example code; library code never does this

int main() {
  data::WorldConfig config;
  config.seed = 77;
  data::WorldGenerator generator(config);
  data::RetailerWorld world = generator.GenerateRetailer(0, 400);
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);

  // --- 1. Find good hyper-parameters cheaply with successive halving.
  core::GridSpec space;
  space.factors = {8, 16, 32};
  space.learning_rates = {0.2, 0.05};
  space.lambdas_v = {0.1, 0.01};
  space.lambdas_vc = {0.01};
  space.sweep_taxonomy = false;
  core::TunerOptions tuner_options;
  tuner_options.initial_configs = 12;
  tuner_options.eta = 3;
  tuner_options.epochs_per_rung = 2;
  core::TunerOutcome tuned =
      core::SuccessiveHalving(world.data, split, space, tuner_options);
  const core::TrialResult& best = tuned.leaderboard.front();
  std::printf("tuner: best config F=%d lr=%.3g lv=%.3g -> MAP %.4f "
              "(%d rungs, %lld SGD steps)\n",
              best.params.num_factors, best.params.learning_rate,
              best.params.lambda_v, best.metrics.map_at_k, tuned.rungs,
              static_cast<long long>(tuned.total_sgd_steps));

  // --- 2. Cross-check against the least-squares solver (§VI).
  core::WrmfModel::Config wrmf_config;
  wrmf_config.num_factors = best.params.num_factors;
  wrmf_config.iterations = 10;
  core::WrmfModel wrmf =
      core::WrmfModel::Train(split.train, world.data.num_items(), wrmf_config);
  core::MetricSet wrmf_metrics =
      wrmf.EvaluateHoldout(split.train, split.holdout, 10);
  std::printf("wrmf:  same factors via ALS -> MAP %.4f (fold-in for new "
              "users, no context embedding)\n",
              wrmf_metrics.map_at_k);

  // --- 3. Train the winner fully and calibrate its scores for display
  //        decisions (§VII future work).
  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params = best.params;
  request.params.num_epochs = 12;
  StatusOr<core::TrainOutput> trained = core::TrainOneModel(request);
  SIGCHECK(trained.ok());

  data::CtrSimulator simulator(&world.truth, {});
  Rng rng(5);
  std::vector<double> scores;
  std::vector<bool> clicked;
  std::vector<float> user_vec(trained->model.dim());
  for (data::UserIndex u = 0; u < world.data.num_users(); ++u) {
    if (split.train[u].empty()) continue;
    core::Context context = {{split.train[u].back().item,
                              data::ActionType::kView}};
    trained->model.UserEmbedding(context, user_vec.data());
    for (int n = 0; n < 4; ++n) {
      data::ItemIndex item =
          static_cast<data::ItemIndex>(rng.Uniform(world.data.num_items()));
      scores.push_back(trained->model.Score(user_vec.data(), item));
      clicked.push_back(
          rng.Bernoulli(simulator.ClickProbability(u, item, 0)));
    }
  }
  StatusOr<core::ScoreCalibrator> calibrator =
      core::ScoreCalibrator::Fit(scores, clicked);
  SIGCHECK(calibrator.ok());
  std::printf("calibrator: P(click) = sigmoid(%.3f * score %+.3f)\n",
              calibrator->slope(), calibrator->intercept());
  for (double score : {-1.0, 0.0, 1.0, 2.0}) {
    std::printf("  score %+.1f -> P(click) %.3f -> %s at threshold 0.5\n",
                score, calibrator->Probability(score),
                calibrator->ShouldDisplay(score, 0.5) ? "display"
                                                      : "suppress");
  }
  return 0;
}
