// Daily multi-tenant service: the whole Sigmund pipeline over three days.
//
// Day 1: first start — full hyper-parameter sweep for every retailer,
//        training MapReduce on (simulated) pre-emptible machines with
//        time-interval checkpointing, model selection by MAP@10,
//        inference MapReduce with bin-packed cells, serving-store load.
// Day 2: new interaction data + catalog churn arrive, one retailer signs
//        up — incremental sweep (top-3 warm-started per old retailer,
//        full grid for the new one).
// Day 3: heavy preemption weather; the pipeline still completes thanks to
//        checkpoints and MapReduce retries.
// Day 4: chaos storm — the shared filesystem itself starts failing
//        (transient errors, torn writes) on top of task kills; retries,
//        checksummed I/O, and corruption-tolerant recovery absorb it all.
// Day 5: churn storm — training machines run under revocable leases with
//        aggressive eviction schedules and a per-model deadline; grace-
//        window checkpoints, priority escalation, and the degradation
//        ladder keep every retailer servable.
// Day 6/7: safe rollout — the serving plane becomes three replicated
//        store copies with staggered cutover, and each new batch must
//        pass a CTR canary against live simulated traffic before it owns
//        100% of a retailer (rollback is a pointer flip).
// Day 8/9/10: poisoned feed — the data-plane sentry watches every feed.
//        Day 8 establishes per-retailer baselines; day 9 one retailer's
//        feed arrives bot-flooded and is quarantined (no retrain, no
//        index rebuild, serving continues from last-known-good); day 10's
//        clean feed releases the quarantine and training resumes
//        warm-started.
// Day 11/12: crash and resume — the run ledger journals every durable
//        transition. Day 11 completes cleanly and snapshots control
//        state; on day 12 the coordinator is killed mid-rollout, a fresh
//        process replays the journal, skips the committed stages, and
//        finishes the day.

#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "common/crash_point.h"
#include "data/world_generator.h"
#include "dataqual/corruptor.h"
#include "pipeline/service.h"
#include "sfs/fault_injection.h"
#include "sfs/mem_filesystem.h"

using namespace sigmund;  // example code; library code never does this

namespace {

void ShowSample(const pipeline::SigmundService& service,
                data::RetailerId retailer) {
  auto recs = service.store().ServeContext(
      retailer, {{/*item=*/1, data::ActionType::kView}});
  if (!recs.ok()) {
    std::printf("  retailer %d: %s\n", retailer,
                recs.status().ToString().c_str());
    return;
  }
  std::printf("  retailer %d, context [view item 1] ->", retailer);
  for (const core::ScoredItem& item : *recs) {
    std::printf(" %d", item.item);
  }
  std::printf("\n");
}

// Prints the day's latency digest (p50/p95/p99 per histogram) and writes
// the machine-readable run profile next to the report.
void EmitObservability(const pipeline::SigmundService& service,
                       const pipeline::DailyReport& report, int day) {
  std::printf("%s", service.metrics()->Snapshot().SummaryText().c_str());
  const std::string path =
      "run_profile_day" + std::to_string(day) + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << report.profile_json;
  if (out.good()) {
    std::printf("  profile -> %s (%zu bytes)\n", path.c_str(),
                report.profile_json.size());
  }
}

}  // namespace

int main() {
  data::WorldConfig world_config;
  world_config.seed = 7;
  data::WorldGenerator generator(world_config);
  data::RetailerWorld small = generator.GenerateRetailer(0, 80);
  data::RetailerWorld medium = generator.GenerateRetailer(1, 300);
  data::RetailerWorld large = generator.GenerateRetailer(2, 900);

  sfs::MemFileSystem fs;
  pipeline::SigmundService::Options options;
  options.sweep.grid.factors = {8, 16};
  options.sweep.grid.lambdas_v = {0.1, 0.01};
  options.sweep.grid.lambdas_vc = {0.01};
  options.sweep.grid.num_epochs = 8;
  options.sweep.incremental_top_k = 3;
  options.training.num_map_tasks = 8;
  options.training.max_parallel_tasks = 2;
  options.training.checkpoint_interval_seconds = 120.0;
  options.training.simulated_seconds_per_step = 1e-2;
  options.inference.num_cells = 2;
  options.inference.inference.top_k = 5;

  pipeline::SigmundService service(&fs, options);
  service.UpsertRetailer(&small.data);
  service.UpsertRetailer(&medium.data);
  service.UpsertRetailer(&large.data);

  // --- Day 1: full sweep.
  StatusOr<pipeline::DailyReport> day1 = service.RunDaily();
  if (!day1.ok()) {
    std::printf("day 1 failed: %s\n", day1.status().ToString().c_str());
    return 1;
  }
  std::printf("day 1: %s\n", day1->ToString().c_str());
  EmitObservability(service, *day1, 1);
  ShowSample(service, 0);
  ShowSample(service, 2);

  // --- Day 2: data arrives, catalogs churn, a new retailer signs up.
  data::AdvanceOneDay(generator, &small, /*new_items=*/4, 101);
  data::AdvanceOneDay(generator, &medium, 10, 102);
  data::AdvanceOneDay(generator, &large, 25, 103);
  data::RetailerWorld newcomer = generator.GenerateRetailer(3, 60);
  service.UpsertRetailer(&small.data);
  service.UpsertRetailer(&medium.data);
  service.UpsertRetailer(&large.data);
  service.UpsertRetailer(&newcomer.data);

  StatusOr<pipeline::DailyReport> day2 = service.RunDaily();
  if (!day2.ok()) {
    std::printf("day 2 failed: %s\n", day2.status().ToString().c_str());
    return 1;
  }
  std::printf("day 2: %s\n", day2->ToString().c_str());
  EmitObservability(service, *day2, 2);
  ShowSample(service, 3);

  // --- Day 3: preemption storm.
  pipeline::SigmundService::Options stormy = options;
  // (options are fixed at construction; model the storm via the same
  // service by noting day-3 numbers below come from a service configured
  // with preemption injection.)
  stormy.training.preemption_prob_per_epoch = 0.25;
  stormy.training.map_task_failure_prob = 0.2;
  stormy.training.max_attempts_per_task = 30;
  stormy.training.simulated_seconds_per_step = 1.0;
  stormy.training.checkpoint_interval_seconds = 30.0;
  pipeline::SigmundService stormy_service(&fs, stormy);
  stormy_service.UpsertRetailer(&small.data);
  stormy_service.UpsertRetailer(&medium.data);
  stormy_service.UpsertRetailer(&large.data);
  stormy_service.UpsertRetailer(&newcomer.data);
  StatusOr<pipeline::DailyReport> day3 = stormy_service.RunDaily();
  if (!day3.ok()) {
    std::printf("day 3 failed: %s\n", day3.status().ToString().c_str());
    return 1;
  }
  std::printf("day 3 (preemption storm): %s\n", day3->ToString().c_str());
  EmitObservability(stormy_service, *day3, 3);
  std::printf("  -> survived %lld preemptions + %lld task failures; all "
              "models delivered\n",
              static_cast<long long>(day3->preemptions),
              static_cast<long long>(day3->map_failures));

  // --- Day 4: chaos storm. The shared filesystem starts failing too:
  // 5% of every operation returns a transient error and 5% of writes are
  // torn (report success, persist garbage). Retry-with-backoff masks the
  // former; checksummed frames with read-back verification catch and heal
  // the latter.
  sfs::FaultProfile chaos_profile;
  chaos_profile.read_error_prob = 0.05;
  chaos_profile.write_error_prob = 0.05;
  chaos_profile.rename_error_prob = 0.05;
  chaos_profile.delete_error_prob = 0.05;
  chaos_profile.list_error_prob = 0.05;
  chaos_profile.torn_write_prob = 0.05;
  sfs::FaultInjectingFileSystem chaos_fs(&fs, chaos_profile);

  pipeline::SigmundService::Options chaos = stormy;
  chaos.training.reduce_task_failure_prob = 0.2;
  RetryPolicy generous;
  generous.max_attempts = 10;
  chaos.sfs_retry = generous;
  chaos.training.sfs_retry = generous;
  chaos.inference.sfs_retry = generous;
  chaos.injected_faults = &chaos_fs.counters();
  pipeline::SigmundService chaos_service(&chaos_fs, chaos);
  // Count each injected fault live, per operation, in the service's
  // registry (the service's end-of-run mirror would catch them anyway;
  // live wiring adds the per-op breakdown).
  chaos_fs.SetMetrics(chaos_service.metrics());
  chaos_service.UpsertRetailer(&small.data);
  chaos_service.UpsertRetailer(&medium.data);
  chaos_service.UpsertRetailer(&large.data);
  chaos_service.UpsertRetailer(&newcomer.data);
  StatusOr<pipeline::DailyReport> day4 = chaos_service.RunDaily();
  if (!day4.ok()) {
    std::printf("day 4 failed: %s\n", day4.status().ToString().c_str());
    return 1;
  }
  std::printf("day 4 (chaos storm): %s\n", day4->ToString().c_str());
  EmitObservability(chaos_service, *day4, 4);
  std::printf("  -> %lld injected storage faults masked by %lld retries; "
              "%lld corrupt writes healed\n",
              static_cast<long long>(day4->faults_injected),
              static_cast<long long>(day4->sfs_retries),
              static_cast<long long>(day4->corruptions_healed));
  ShowSample(chaos_service, 2);

  // --- Day 5: churn storm. Training machines are revocable leases now:
  // an exponential schedule (mean inter-eviction 2 simulated minutes)
  // revokes them mid-training, each revocation grants a grace window for
  // one final checkpoint, twice-evicted tasks escalate to regular
  // priority, and a tight per-model deadline pushes slow models onto the
  // degradation ladder instead of blowing the daily window.
  pipeline::SigmundService::Options churny = stormy;
  churny.training.preemption_prob_per_epoch = 0.0;
  churny.training.map_task_failure_prob = 0.0;
  churny.training.churn.preemption_rate_per_hour = 30.0;
  churny.training.churn.eviction_grace_seconds = 1e6;
  churny.training.churn.escalate_after_evictions = 2;
  churny.training.per_model_deadline_seconds = 4000.0;
  // (Speculative inference backups stay off here: which attempt commits
  // first is thread-timing dependent, and this example's output is meant
  // to be byte-identical run to run. chaos_test covers speculation.)
  pipeline::SigmundService churny_service(&fs, churny);
  churny_service.UpsertRetailer(&small.data);
  churny_service.UpsertRetailer(&medium.data);
  churny_service.UpsertRetailer(&large.data);
  churny_service.UpsertRetailer(&newcomer.data);
  StatusOr<pipeline::DailyReport> day5 = churny_service.RunDaily();
  if (!day5.ok()) {
    std::printf("day 5 failed: %s\n", day5.status().ToString().c_str());
    return 1;
  }
  std::printf("day 5 (churn storm): %s\n", day5->ToString().c_str());
  EmitObservability(churny_service, *day5, 5);
  std::printf("  -> %lld evictions (%lld grace checkpoints, %lld hard), "
              "%lld tasks escalated to regular priority, %d retailers "
              "degraded but still serving\n",
              static_cast<long long>(day5->evictions),
              static_cast<long long>(day5->eviction_grace_checkpoints),
              static_cast<long long>(day5->hard_evictions),
              static_cast<long long>(day5->priority_escalations),
              day5->degraded_retailers);
  ShowSample(churny_service, 2);

  // --- Days 6/7: safe rollout. Serving moves to a 3-replica store group
  // and every staged batch is canaried on simulated live traffic (clicks
  // from the ground-truth oracle) before promotion. Day 6 establishes the
  // first batches (nothing to canary against); day 7's batches must each
  // hold >= 80% of control CTR or they are rolled back on the spot.
  std::vector<data::RetailerWorld*> worlds = {&small, &medium, &large,
                                              &newcomer};
  pipeline::SigmundService::Options rollout = options;
  rollout.serving.num_replicas = 3;
  rollout.serving.store.retained_versions = 3;
  rollout.canary.enabled = true;
  rollout.canary.canary_fraction = 0.2;
  rollout.canary.oracle = [&worlds](data::RetailerId id) {
    return &worlds[id]->truth;
  };
  pipeline::SigmundService rollout_service(&fs, rollout);
  for (data::RetailerWorld* world : worlds) {
    rollout_service.UpsertRetailer(&world->data);
  }
  StatusOr<pipeline::DailyReport> day6 = rollout_service.RunDaily();
  if (!day6.ok()) {
    std::printf("day 6 failed: %s\n", day6.status().ToString().c_str());
    return 1;
  }
  std::printf("day 6 (replicated serving): %s\n", day6->ToString().c_str());
  StatusOr<pipeline::DailyReport> day7 = rollout_service.RunDaily();
  if (!day7.ok()) {
    std::printf("day 7 failed: %s\n", day7.status().ToString().c_str());
    return 1;
  }
  std::printf("day 7 (canaried rollout): %s\n", day7->ToString().c_str());
  std::printf("  -> canary verdicts: %lld promoted, %lld rolled back; "
              "%lld follower cutovers; rollback window: retailer 0 retains"
              " versions",
              static_cast<long long>(day7->canary_promotions),
              static_cast<long long>(day7->canary_rollbacks),
              static_cast<long long>(day7->replica_cutovers));
  for (int64_t version : rollout_service.store().RetainedVersions(0)) {
    std::printf(" v%lld", static_cast<long long>(version));
  }
  std::printf(" (active v%lld)\n",
              static_cast<long long>(
                  rollout_service.store().RetailerVersion(0)));
  ShowSample(rollout_service, 0);

  // --- Days 8/9/10: poisoned feed. The data-plane sentry (DESIGN.md §12)
  // profiles every retailer's feed before any training happens. Day 8 is
  // clean and establishes each retailer's last-good baseline. On day 9
  // the medium retailer's feed arrives bot-flooded — one scraper user
  // owning half the events — and is quarantined: no retrain, no
  // retrieval-index rebuild, the last-known-good batch keeps serving.
  // Day 10's clean feed auto-releases the quarantine and training
  // resumes warm-started from the pre-poison checkpoint.
  pipeline::SigmundService::Options guarded = options;
  guarded.dataqual.enabled = true;
  pipeline::SigmundService dq_service(&fs, guarded);
  for (data::RetailerWorld* world : worlds) {
    dq_service.UpsertRetailer(&world->data);
  }
  StatusOr<pipeline::DailyReport> day8 = dq_service.RunDaily();
  if (!day8.ok()) {
    std::printf("day 8 failed: %s\n", day8.status().ToString().c_str());
    return 1;
  }
  std::printf("day 8 (sentry baselines): %s\n", day8->ToString().c_str());

  data::AdvanceOneDay(generator, &small, 2, 901);
  data::AdvanceOneDay(generator, &medium, 5, 902);
  data::AdvanceOneDay(generator, &large, 12, 903);
  data::AdvanceOneDay(generator, &newcomer, 2, 904);
  dataqual::FeedCorruptor::Options corruptor_options;
  corruptor_options.seed = 99;
  dataqual::FeedCorruptor corruptor(corruptor_options);
  data::RetailerData poisoned = corruptor.Apply(
      medium.data, dataqual::Corruption::kBotFlood, medium.data.id, /*day=*/9);
  for (data::RetailerWorld* world : worlds) {
    dq_service.UpsertRetailer(world == &medium ? &poisoned : &world->data);
  }
  const int64_t pre_poison_version =
      dq_service.store().RetailerVersion(medium.data.id);
  StatusOr<pipeline::DailyReport> day9 = dq_service.RunDaily();
  if (!day9.ok()) {
    std::printf("day 9 failed: %s\n", day9.status().ToString().c_str());
    return 1;
  }
  std::printf("day 9 (poisoned feed): %s\n", day9->ToString().c_str());
  std::printf("  -> retailer %d quarantined (bot flood): %lld feed "
              "quarantine(s), still serving last-known-good v%lld "
              "(unchanged: %s)\n",
              medium.data.id,
              static_cast<long long>(day9->feed_quarantines),
              static_cast<long long>(
                  dq_service.store().RetailerVersion(medium.data.id)),
              dq_service.store().RetailerVersion(medium.data.id) ==
                      pre_poison_version
                  ? "yes"
                  : "NO");
  ShowSample(dq_service, medium.data.id);

  data::AdvanceOneDay(generator, &small, 2, 905);
  data::AdvanceOneDay(generator, &medium, 5, 906);
  data::AdvanceOneDay(generator, &large, 12, 907);
  data::AdvanceOneDay(generator, &newcomer, 2, 908);
  for (data::RetailerWorld* world : worlds) {
    dq_service.UpsertRetailer(&world->data);
  }
  StatusOr<pipeline::DailyReport> day10 = dq_service.RunDaily();
  if (!day10.ok()) {
    std::printf("day 10 failed: %s\n", day10.status().ToString().c_str());
    return 1;
  }
  std::printf("day 10 (quarantine released): %s\n", day10->ToString().c_str());
  std::printf("  -> %lld release(s); retailer %d retrained warm-started "
              "(%lld models this day, %lld full-grid sign-ups) and now "
              "serves v%lld\n",
              static_cast<long long>(day10->quarantine_releases),
              medium.data.id,
              static_cast<long long>(day10->models_trained),
              static_cast<long long>(day10->new_retailers),
              static_cast<long long>(
                  dq_service.store().RetailerVersion(medium.data.id)));
  ShowSample(dq_service, medium.data.id);

  // --- Days 11/12: crash and resume (DESIGN.md §13). The run ledger
  // journals every stage commit and per-retailer rollout intent, and the
  // day boundary snapshots control state. Day 11 runs clean under the
  // ledger; on day 12 the coordinator "process" dies mid-rollout (a
  // CrashInjector throws at the batch.staged kill-point), its in-memory
  // state is abandoned, and a fresh service recovers from the surviving
  // filesystem: committed stages are skipped, the half-staged version is
  // rehydrated, and the day finishes as if nothing happened.
  CrashInjector injector;
  pipeline::SigmundService::Options durable = options;
  durable.ledger.enabled = true;
  durable.crash = &injector;
  auto boot_durable = [&] {
    auto booted =
        std::make_unique<pipeline::SigmundService>(&fs, durable);
    StatusOr<pipeline::SigmundService::RecoveryReport> recovered =
        booted->RecoverDay();
    if (!recovered.ok()) {
      std::printf("recovery failed: %s\n",
                  recovered.status().ToString().c_str());
      return std::unique_ptr<pipeline::SigmundService>();
    }
    if (recovered->resumed) {
      std::printf("  -> recovered mid-flight day %d: %lld ledger entries "
                  "replayed, %lld versions rehydrated, %lld tmp partials "
                  "swept, %lld orphaned versions removed\n",
                  recovered->day,
                  static_cast<long long>(recovered->ledger_entries),
                  static_cast<long long>(recovered->versions_rehydrated),
                  static_cast<long long>(recovered->tmp_files_swept),
                  static_cast<long long>(recovered->orphan_versions_deleted));
    }
    for (data::RetailerWorld* world : worlds) {
      booted->UpsertRetailer(&world->data);
    }
    return booted;
  };
  std::unique_ptr<pipeline::SigmundService> durable_service = boot_durable();
  if (durable_service == nullptr) return 1;
  StatusOr<pipeline::DailyReport> day11 = durable_service->RunDaily();
  if (!day11.ok()) {
    std::printf("day 11 failed: %s\n", day11.status().ToString().c_str());
    return 1;
  }
  std::printf("day 11 (ledgered run): %s\n", day11->ToString().c_str());

  data::AdvanceOneDay(generator, &small, 2, 909);
  data::AdvanceOneDay(generator, &medium, 5, 910);
  data::AdvanceOneDay(generator, &large, 12, 911);
  data::AdvanceOneDay(generator, &newcomer, 2, 912);
  for (data::RetailerWorld* world : worlds) {
    durable_service->UpsertRetailer(&world->data);
  }
  injector.ResetCounts();  // day 11's hits don't count against the arm
  injector.ArmAt("batch.staged");
  StatusOr<pipeline::DailyReport> day12 = OkStatus();
  bool crashed = false;
  try {
    day12 = durable_service->RunDaily();
  } catch (const CrashException& e) {
    crashed = true;
    std::printf("day 12: coordinator killed at kill-point \"%s\" — "
                "training done, first batch staged but not activated\n",
                e.point.c_str());
    durable_service = boot_durable();
    if (durable_service == nullptr) return 1;
    day12 = durable_service->RunDaily();
  }
  if (!day12.ok()) {
    std::printf("day 12 failed: %s\n", day12.status().ToString().c_str());
    return 1;
  }
  std::printf("day 12 (crash + resume%s): %s\n",
              crashed ? "" : " — crash point not reached?",
              day12->ToString().c_str());
  ShowSample(*durable_service, 0);

  // Full trace of the chaos day, span by span.
  std::printf("\nday 4 trace:\n%s",
              chaos_service.tracer()->DumpTree().c_str());
  return 0;
}
