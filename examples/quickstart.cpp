// Quickstart: train one retailer's BPR recommendation model and query it.
//
// This walks the core API end to end on a single retailer:
//   1. generate a synthetic retailer (stand-in for real shopping logs),
//   2. hold out each user's last interaction,
//   3. train a BPR model with taxonomy features (Hogwild SGD + Adagrad),
//   4. evaluate MAP@10 / AUC on the hold-out set,
//   5. materialize recommendations for one item, before and after the
//      purchase decision (Fig. 1 of the paper).

#include <cstdio>

#include "core/candidate_selector.h"
#include "core/evaluator.h"
#include "core/grid_search.h"
#include "core/inference.h"
#include "data/world_generator.h"

using namespace sigmund;  // example code; library code never does this

int main() {
  // --- 1. A retailer with ~500 items and funnel-structured user sessions.
  data::WorldConfig world_config;
  world_config.seed = 42;
  data::WorldGenerator generator(world_config);
  data::RetailerWorld world = generator.GenerateRetailer(/*id=*/0, 500);
  std::printf("retailer: %d items, %d users, %lld interactions\n",
              world.data.num_items(), world.data.num_users(),
              static_cast<long long>(world.data.TotalInteractions()));

  // --- 2. Leave-last-out hold-out split.
  data::TrainTestSplit split = data::SplitLeaveLastOut(world.data);
  std::printf("holdout: %zu examples\n", split.holdout.size());

  // --- 3. Train one configuration.
  core::TrainRequest request;
  request.catalog = &world.data.catalog;
  request.train_histories = &split.train;
  request.holdout = &split.holdout;
  request.params.num_factors = 16;
  request.params.use_taxonomy = true;
  request.params.num_epochs = 15;
  request.num_threads = 2;  // Hogwild

  StatusOr<core::TrainOutput> output = core::TrainOneModel(request);
  if (!output.ok()) {
    std::printf("training failed: %s\n", output.status().ToString().c_str());
    return 1;
  }
  std::printf("trained: %s\n", output->metrics.ToString().c_str());

  // --- 4. Candidate selection + inference for one item.
  core::CooccurrenceModel cooccurrence = core::CooccurrenceModel::Build(
      world.data.histories, world.data.num_items(), {});
  core::RepurchaseEstimator repurchase = core::RepurchaseEstimator::Build(
      world.data.histories, world.data.catalog, {});
  core::CandidateSelector selector(&world.data.catalog, &cooccurrence,
                                   &repurchase);
  core::InferenceEngine engine(&output->model, &selector);

  core::InferenceEngine::Options options;
  options.top_k = 5;
  const data::ItemIndex query = 0;
  core::ItemRecommendations recs = engine.RecommendForItem(query, options);

  std::printf("\nitem %d (category %d) — before purchase (substitutes):\n",
              query, world.data.catalog.item(query).category);
  for (const core::ScoredItem& item : recs.view_based) {
    std::printf("  item %4d  score %+.3f  lca-distance %d\n", item.item,
                item.score, world.data.catalog.LcaDistance(query, item.item));
  }
  std::printf("item %d — after purchase (accessories/complements):\n", query);
  for (const core::ScoredItem& item : recs.purchase_based) {
    std::printf("  item %4d  score %+.3f  lca-distance %d\n", item.item,
                item.score, world.data.catalog.LcaDistance(query, item.item));
  }
  return 0;
}
